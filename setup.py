"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that environments without the ``wheel`` package (which PEP 660
editable installs require) can still do a development install via
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
