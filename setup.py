"""Development-install configuration for the reproduction package.

Install in editable mode with ``pip install -e .`` (or, in environments
without the ``wheel`` package that PEP 660 editable installs require,
``pip install -e . --no-build-isolation``).

The core package is dependency-free by design: the default ``python``
execution backend and every figure pipeline run on the standard library
alone.  The optional ``numpy`` extra enables the vectorized execution
backend (``REPRO_BACKEND=numpy``), which is bit-identical to the default
backend and only changes wall-clock time::

    pip install -e ".[numpy]"
"""

from setuptools import find_packages, setup

setup(
    name="repro-bp-isolation",
    description="Reproduction of branch-predictor isolation experiments",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=[],
    extras_require={
        "numpy": ["numpy"],
    },
)
