#!/bin/sh
# Content digest of the CI result store (or "empty" when absent) — the shard
# jobs compare before/after snapshots to save the actions/cache blob only
# when a run actually changed the store.  Reads the same REPRO_STORE_DIR the
# jobs configure, so the store location has one source of truth.
set -eu
store_dir="${REPRO_STORE_DIR:-.repro-store}"
if [ ! -d "$store_dir" ]; then
    echo "empty"
    exit 0
fi
find "$store_dir" -type f -print0 | sort -z | xargs -0 sha256sum | sha256sum | cut -d' ' -f1
