"""Benchmark regenerating Table 2 (core configurations)."""

from conftest import run_once, save_result

from repro.experiments import table2_configs


def test_table2_core_configurations(benchmark, scale):
    result = run_once(benchmark, table2_configs.run, scale)
    save_result(result)
    assert any("Issue width" in str(row[0]) for row in result.rows)
