"""Benchmark regenerating Figure 1 (Complete-Flush overhead, single-threaded core)."""

from conftest import run_once, save_result

from repro.experiments import fig1_flush_single


def test_figure1_flush_overhead_single_thread(benchmark, scale):
    result = run_once(benchmark, fig1_flush_single.run, scale)
    save_result(result)
    averages = result.figure.averages()
    # Shape: flushing less often never costs more on average.
    assert averages["flush-12M"] <= averages["flush-4M"] + 0.01
    # Overheads are small positive numbers (inflated by scaling, but bounded).
    assert all(value < 0.25 for value in averages.values())
