"""Benchmark quantifying side-channel leakage per mechanism (Table 1 backing).

The paper's Table 1 gives qualitative Defend / Mitigate / No-Protection
verdicts; this benchmark measures the mutual information between a one-bit
victim secret and the attacker's observation through the PHT direction
channel and the BTB occupancy channel, for the main mechanisms, in both the
time-shared and SMT scenarios.
"""

from conftest import run_once, save_result

from repro.experiments.base import ExperimentResult
from repro.security.leakage import leakage_report

_MECHANISMS = ("baseline", "complete_flush", "precise_flush", "xor_bp",
               "noisy_xor_bp")


def _run(trials: int = 300):
    rows = []
    for smt in (False, True):
        report = leakage_report(_MECHANISMS, trials=trials, smt=smt)
        for mechanism, channels in report.items():
            rows.append([
                "SMT" if smt else "single",
                mechanism,
                f"{channels['pht_direction'].mutual_information_bits:.3f}",
                f"{channels['btb_occupancy'].mutual_information_bits:.3f}",
            ])
    return ExperimentResult(
        name="Leakage quantification",
        description="mutual information (bits/trial) through the PHT and BTB "
                    "channels",
        headers=["scenario", "mechanism", "PHT MI", "BTB MI"],
        rows=rows,
        paper_claim="Table 1: XOR-based isolation defends or mitigates every "
                    "attack class on single-threaded cores and most on SMT.",
        notes="Extension: quantitative backing for the qualitative Table 1 "
              "verdicts.")


def test_leakage_quantification(benchmark, scale):
    result = run_once(benchmark, _run)
    save_result(result)
    values = {(row[0], row[1]): (float(row[2]), float(row[3]))
              for row in result.rows}
    # Shape: the unprotected predictor leaks close to the full secret bit...
    assert values[("single", "baseline")][0] > 0.5
    assert values[("single", "baseline")][1] > 0.2
    # ...and Noisy-XOR-BP reduces both channels to near zero in the
    # time-shared scenario.
    assert values[("single", "noisy_xor_bp")][0] < 0.1
    assert values[("single", "noisy_xor_bp")][1] < 0.1
