"""Benchmark regenerating Figure 8 (XOR-PHT / Noisy-XOR-PHT overhead)."""

from conftest import run_once, save_result

from repro.experiments import fig8_xor_pht


def test_figure8_xor_pht_overhead(benchmark, scale):
    result = run_once(benchmark, fig8_xor_pht.run, scale)
    save_result(result)
    figure = result.figure
    # Shape: case1 (gcc+calculix) is among the costliest cases.
    case_index = figure.categories.index("case1")
    series = figure.series["XOR-PHT-8M"]
    assert series[case_index] >= sorted(series)[len(series) // 2]
    # Overheads remain bounded.
    assert all(value < 0.35 for value in figure.averages().values())
