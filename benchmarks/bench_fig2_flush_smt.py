"""Benchmark regenerating Figure 2 (Complete-Flush overhead on SMT-2 / SMT-4)."""

from conftest import run_once, save_result

from repro.experiments import fig2_flush_smt


def test_figure2_flush_overhead_smt(benchmark, scale):
    result = run_once(benchmark, fig2_flush_smt.run, scale)
    save_result(result)
    smt2, smt4 = result.figure.series["Complete Flush"]
    # Shape: SMT flushing is costly and gets worse with more threads.
    assert smt2 > 0.0
    assert smt4 > smt2 * 0.6
