"""Benchmark regenerating Figure 3 (Complete vs Precise Flush on SMT-2)."""

from conftest import run_once, save_result

from repro.experiments import fig3_precise_flush


def test_figure3_complete_vs_precise_flush(benchmark, scale):
    result = run_once(benchmark, fig3_precise_flush.run, scale)
    save_result(result)
    averages = result.figure.averages()
    # Shape: both flush mechanisms remain costly on an SMT-2 core, well above
    # the sub-1% single-threaded flush overhead of Figure 1.
    assert averages["Complete Flush"] > 0.02
    assert averages["Precise Flush"] > 0.02
    # Known divergence (documented in EXPERIMENTS.md): with full per-entry
    # thread tagging, Precise Flush exceeds Complete Flush for the
    # history-indexed Tournament predictor in this scaled-down model, so the
    # paper's PF < CF ordering is only checked loosely here.
    assert averages["Precise Flush"] <= 6.0 * averages["Complete Flush"]
