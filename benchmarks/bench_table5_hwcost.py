"""Benchmark regenerating Table 5 (area and timing overhead)."""

from conftest import run_once, save_result

from repro.experiments import table5_hwcost


def test_table5_hardware_cost(benchmark, scale):
    result = run_once(benchmark, table5_hwcost.run, scale)
    save_result(result)
    timings = [float(row[1].rstrip("%")) for row in result.rows]
    areas = [float(row[3].rstrip("%")) for row in result.rows]
    assert all(t < 3.0 for t in timings)
    assert all(a < 0.5 for a in areas)
    # BTB timing overhead grows with size; BTB area overhead shrinks.
    assert timings[0] < timings[2]
    assert areas[0] > areas[2]
