"""Engine throughput benchmark: branches per second across engines/presets.

Two measurement groups, both on the default single-thread case (Table 3
case1, gcc+calculix, FPGA-prototype core):

* **Engine comparison** (TAGE, baseline preset) under three configurations:

  - ``seed_scalar`` — the per-record reference loop with the storage-layer
    fast paths disabled, i.e. every table access goes through the
    ``TableIsolation`` virtual dispatch exactly as in the seed engine;
  - ``scalar`` — the same per-record loop with this repo's storage fast
    paths active (what ``engine="scalar"`` runs today);
  - ``batched`` — the chunked-trace fast engine (the default).

* **Preset sweep** (batched engine): presets × predictors, so the perf
  trajectory tracks the paper's encoded mechanisms — which ride the fused
  XOR fast paths — and not just the baseline.

* **Backend sweep** (batched engine, larger budget): the ``python``
  reference backend versus the ``numpy`` vectorized backend on the TAGE
  presets the numpy window kernels target.  Skipped (and recorded as
  unavailable) when numpy is not importable.

Every swept configuration is asserted to actually run on its intended fast
path (monomorphic passthrough or fused-XOR), and every numpy arm is
asserted to really receive the vectorized window kernels; a silent
fallback to the generic dispatch or the reference backend fails the
benchmark rather than quietly reporting wrong numbers.

Writes ``BENCH_engine.json`` at the repository root.  Run with::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

CI runs the reduced-scale smoke mode, which measures one encoded preset and
verifies the fast path without touching ``BENCH_engine.json``::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --smoke --preset noisy_xor_bp --backend numpy
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.core.registry import resolve_preset  # noqa: E402
from repro.cpu.config import fpga_prototype  # noqa: E402
from repro.cpu.core import SingleThreadCore  # noqa: E402
from repro.experiments.executor import ENGINE_VERSION  # noqa: E402
from repro.experiments.runner import build_bpu  # noqa: E402
from repro.experiments.scaling import ExperimentScale  # noqa: E402
from repro.workloads.pairs import SINGLE_THREAD_PAIRS, make_pair_workloads  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
OUTPUT = os.path.join(REPO_ROOT, "BENCH_engine.json")

PAIR = SINGLE_THREAD_PAIRS[0]
SCALE = ExperimentScale()
REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))

#: Preset sweep: baseline (passthrough fast path), the paper's headline
#: full-BP XOR mechanisms (fused-XOR fast path on every structure) and the
#: BTB-heavy presets (fused-XOR packed BTB, passthrough direction tables).
SWEEP_PRESETS = ("baseline", "xor_bp", "noisy_xor_bp", "xor_btb",
                 "noisy_xor_btb")
SWEEP_PREDICTORS = ("tage", "gshare")

#: Backend sweep: the presets whose hot loop the numpy window kernels
#: target (TAGE table walk, passthrough and fused-XOR arms).  Measured at
#: a larger branch budget than the other groups — the backend gap is a few
#: tens of percent, which the default budget cannot resolve reliably.
BACKEND_PRESETS = ("baseline", "xor_bp", "noisy_xor_bp")
BACKEND_SCALE = ExperimentScale(st_target_branches=60_000,
                                st_warmup_branches=5_000)

try:
    import numpy  # noqa: F401
    _HAS_NUMPY = True
except ImportError:
    _HAS_NUMPY = False


def _build_core(preset: str = "baseline", predictor: str = "tage",
                scale: ExperimentScale = SCALE,
                backend: str = "python") -> SingleThreadCore:
    config = fpga_prototype(predictor)
    workloads = make_pair_workloads(PAIR, seed=scale.seed)
    bpu = build_bpu(config, preset, seed=scale.seed + 1)
    return SingleThreadCore(config, bpu, workloads,
                            time_scale=scale.time_scale,
                            syscall_time_scale=scale.syscall_time_scale,
                            backend=backend)


def _disable_fast_paths(core: SingleThreadCore) -> None:
    """Force every storage access through the isolation virtual dispatch.

    This reverts the monomorphic fast paths added on top of the seed engine,
    so the scalar loop measured afterwards is a faithful stand-in for the
    seed per-record engine (slightly optimistic: it still benefits from
    ``slots`` dataclasses, which makes the reported speedup conservative).
    """
    core.bpu.force_generic_dispatch()


def assert_fast_path(core: SingleThreadCore, preset: str) -> None:
    """Fail loudly unless the intended monomorphic fast paths are active.

    Expectations are derived per structure from the preset's protection
    config: an XOR-mechanism structure must ride the fused-XOR fast path,
    anything else the passthrough one.  On top of the storage flags, the
    packed-BTB probe kernel and the gshare/TAGE execute kernels must report
    the matching specialisation arm.  Guards the benchmark and the CI smoke
    step against silent fallbacks to the generic dispatch.
    """
    bpu = core.bpu
    config = resolve_preset(preset)
    want_pht_xor = config.pht_mechanism in ("xor", "noisy_xor")
    want_btb_xor = config.btb_mechanism in ("xor", "noisy_xor")
    for table in bpu.direction.tables():
        active = table._xor_fast if want_pht_xor else table._fast
        if not active:
            raise AssertionError(
                f"{preset}: table {table.name!r} is not on the "
                f"{'fused-XOR' if want_pht_xor else 'passthrough'} fast path")
    btb_active = bpu.btb._xor_fast if want_btb_xor else bpu.btb._fast
    if not btb_active:
        raise AssertionError(f"{preset}: BTB is not on the fast path")
    btb_arm = bpu.btb.exec_conditional_kernel(0).arm
    want_arm = "fused-xor" if want_btb_xor else "passthrough"
    if btb_arm != want_arm:
        raise AssertionError(
            f"{preset}: packed-BTB probe kernel runs the {btb_arm!r} arm, "
            f"expected {want_arm!r}")
    exec_kernel = getattr(bpu.direction, "exec_kernel", None)
    if exec_kernel is not None:
        dir_arm = getattr(exec_kernel(0), "arm", None)
        want_arm = "fused-xor" if want_pht_xor else "passthrough"
        if dir_arm != want_arm:
            raise AssertionError(
                f"{preset}: {bpu.direction.name} kernel runs the "
                f"{dir_arm!r} arm, expected {want_arm!r}")
    build_masks = getattr(bpu.direction, "_build_kernel_masks", None)
    if build_masks is not None:
        bundle = build_masks(0)
        if bundle is False:
            raise AssertionError(
                f"{preset}: TAGE kernel fell back to generic dispatch")
        if bool(bundle[0]) != want_pht_xor:
            raise AssertionError(
                f"{preset}: TAGE kernel compiled the wrong arm "
                f"(encoded={bool(bundle[0])}, expected {want_pht_xor})")


def assert_backend_kernels(core: SingleThreadCore, preset: str,
                           backend: str) -> None:
    """Fail loudly unless the numpy backend hands out vectorized kernels.

    The numpy arms are only a benchmark of the vectorized window kernels
    if those kernels really reach the engine: each one must report
    ``backend == "numpy"`` while preserving the reference kernel's
    dispatch arm.
    """
    if backend != "numpy":
        return
    bpu = core.bpu
    base = bpu.direction.exec_kernel(0)
    kernel = core.backend.direction_kernel_fetch(bpu.direction)(0)
    if getattr(kernel, "backend", None) != "numpy":
        raise AssertionError(
            f"{preset}: {bpu.direction.name} fell back to the reference "
            f"kernel under the numpy backend")
    if kernel.arm != base.arm:
        raise AssertionError(
            f"{preset}: numpy {bpu.direction.name} kernel runs the "
            f"{kernel.arm!r} arm, reference runs {base.arm!r}")
    probe = core.backend.conditional_kernel_fetch(bpu.btb)(0)
    if getattr(probe, "backend", None) != "numpy":
        raise AssertionError(
            f"{preset}: BTB probe fell back to the reference kernel "
            f"under the numpy backend")


def _measure(engine: str, *, preset: str = "baseline", predictor: str = "tage",
             seed_equivalent: bool = False, repeats: int = REPEATS,
             scale: ExperimentScale = SCALE, check_fast_path: bool = False,
             backend: str = "python") -> dict:
    best = 0.0
    branches = 0
    for _ in range(repeats):
        core = _build_core(preset, predictor, scale, backend)
        if seed_equivalent:
            _disable_fast_paths(core)
        elif check_fast_path:
            assert_fast_path(core, preset)
            assert_backend_kernels(core, preset, backend)
        start = time.perf_counter()
        result = core.run(target_branches=scale.st_target_branches,
                          warmup_branches=scale.st_warmup_branches,
                          engine=engine)
        elapsed = time.perf_counter() - start
        branches = sum(t.branches for t in result.threads.values())
        best = max(best, branches / elapsed)
        if check_fast_path and not seed_equivalent:
            # Re-check after the run: switches re-randomise masks mid-run
            # and must land back on the fast path, not the generic one.
            assert_fast_path(core, preset)
            assert_backend_kernels(core, preset, backend)
    return {"branches_per_second": round(best, 1),
            "branches_simulated": branches}


def run_smoke(preset: str, repeats: int, backend: str) -> None:
    """Reduced-scale CI smoke: measure one preset, verify its fast path."""
    scale = ExperimentScale(st_target_branches=4_000, st_warmup_branches=1_000)
    entry = _measure("batched", preset=preset, repeats=repeats, scale=scale,
                     check_fast_path=True, backend=backend)
    print(f"smoke {preset} ({backend} backend): "
          f"{entry['branches_per_second']:,.0f} branches/s "
          f"({entry['branches_simulated']} branches), fast path verified")


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale fast-path smoke (no JSON output)")
    parser.add_argument("--preset", default="noisy_xor_bp",
                        help="preset used by --smoke (default: noisy_xor_bp)")
    parser.add_argument("--backend", default="python",
                        help="execution backend used by --smoke "
                             "(default: python)")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args(argv)

    if args.smoke:
        run_smoke(args.preset, args.repeats, args.backend)
        return {}

    print(f"case={PAIR.case} ({PAIR.label()}), config=fpga_prototype, "
          f"engine={ENGINE_VERSION}, repeats={args.repeats}")
    engines = {}
    for label, engine, seed_equivalent in (
            ("seed_scalar", "scalar", True),
            ("scalar", "scalar", False),
            ("batched", "batched", False)):
        engines[label] = _measure(engine, seed_equivalent=seed_equivalent,
                                  repeats=args.repeats,
                                  check_fast_path=not seed_equivalent)
        print(f"  {label:12s} {engines[label]['branches_per_second']:>12,.0f} "
              "branches/s")

    presets = {}
    for predictor in SWEEP_PREDICTORS:
        presets[predictor] = {}
        for preset in SWEEP_PRESETS:
            entry = _measure("batched", preset=preset, predictor=predictor,
                             repeats=args.repeats, check_fast_path=True)
            presets[predictor][preset] = entry
            print(f"  {predictor:7s}/{preset:12s} "
                  f"{entry['branches_per_second']:>12,.0f} branches/s")

    backends = {}
    if _HAS_NUMPY:
        for preset in BACKEND_PRESETS:
            row = {}
            for backend in ("python", "numpy"):
                row[backend] = _measure(
                    "batched", preset=preset, repeats=args.repeats,
                    scale=BACKEND_SCALE, check_fast_path=True,
                    backend=backend)
            row["speedup_numpy_vs_python"] = round(
                row["numpy"]["branches_per_second"]
                / row["python"]["branches_per_second"], 2)
            backends[preset] = row
            print(f"  tage/{preset:12s} numpy "
                  f"{row['speedup_numpy_vs_python']:.2f}x vs python "
                  f"({row['numpy']['branches_per_second']:,.0f} vs "
                  f"{row['python']['branches_per_second']:,.0f} branches/s)")
    else:
        print("  numpy unavailable; backend sweep skipped")

    batched = engines["batched"]["branches_per_second"]
    payload = {
        "benchmark": "engine_throughput",
        "engine_version": ENGINE_VERSION,
        "case": PAIR.case,
        "pair": PAIR.label(),
        "preset": "baseline",
        "config": "fpga_prototype",
        "target_branches": SCALE.st_target_branches,
        "warmup_branches": SCALE.st_warmup_branches,
        "engines": engines,
        "presets": presets,
        "backends": backends if _HAS_NUMPY else "numpy unavailable",
        "backend_target_branches": BACKEND_SCALE.st_target_branches,
        "speedup_batched_vs_seed_scalar": round(
            batched / engines["seed_scalar"]["branches_per_second"], 2),
        "speedup_batched_vs_scalar": round(
            batched / engines["scalar"]["branches_per_second"], 2),
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"speedup vs seed scalar loop: "
          f"{payload['speedup_batched_vs_seed_scalar']}x")
    print(f"wrote {OUTPUT}")
    return payload


if __name__ == "__main__":
    main()
