"""Engine throughput benchmark: scalar vs. batched branches per second.

Measures the simulation throughput of the default single-thread case
(Table 3 case1, gcc+calculix, FPGA-prototype TAGE core, baseline preset)
under three engine configurations:

* ``seed_scalar`` — the per-record reference loop with the storage-layer
  fast paths disabled, i.e. every table access goes through the
  ``TableIsolation`` virtual dispatch exactly as in the seed engine;
* ``scalar`` — the same per-record loop with this repo's storage fast paths
  active (what ``engine="scalar"`` runs today);
* ``batched`` — the chunked-trace fast engine (the default).

Writes ``BENCH_engine.json`` at the repository root, seeding the
``BENCH_*`` performance trajectory.  Run with::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.cpu.config import fpga_prototype  # noqa: E402
from repro.cpu.core import SingleThreadCore  # noqa: E402
from repro.experiments.runner import build_bpu  # noqa: E402
from repro.experiments.scaling import ExperimentScale  # noqa: E402
from repro.workloads.pairs import SINGLE_THREAD_PAIRS, make_pair_workloads  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
OUTPUT = os.path.join(REPO_ROOT, "BENCH_engine.json")

PAIR = SINGLE_THREAD_PAIRS[0]
PRESET = "baseline"
SCALE = ExperimentScale()
REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))


def _build_core() -> SingleThreadCore:
    config = fpga_prototype()
    workloads = make_pair_workloads(PAIR, seed=SCALE.seed)
    bpu = build_bpu(config, PRESET, seed=SCALE.seed + 1)
    return SingleThreadCore(config, bpu, workloads,
                            time_scale=SCALE.time_scale,
                            syscall_time_scale=SCALE.syscall_time_scale)


def _disable_fast_paths(core: SingleThreadCore) -> None:
    """Force every storage access through the isolation virtual dispatch.

    This reverts the monomorphic fast paths added on top of the seed engine,
    so the scalar loop measured afterwards is a faithful stand-in for the
    seed per-record engine (slightly optimistic: it still benefits from
    ``slots`` dataclasses, which makes the reported speedup conservative).
    """
    for table in core.bpu.direction.tables():
        table._fast = False
    core.bpu.btb._fast = False


def _measure(engine: str, seed_equivalent: bool = False) -> dict:
    best = 0.0
    branches = 0
    for _ in range(REPEATS):
        core = _build_core()
        if seed_equivalent:
            _disable_fast_paths(core)
        start = time.perf_counter()
        result = core.run(target_branches=SCALE.st_target_branches,
                          warmup_branches=SCALE.st_warmup_branches,
                          engine=engine)
        elapsed = time.perf_counter() - start
        branches = sum(t.branches for t in result.threads.values())
        best = max(best, branches / elapsed)
    return {"branches_per_second": round(best, 1),
            "branches_simulated": branches}


def main() -> dict:
    print(f"case={PAIR.case} ({PAIR.label()}), preset={PRESET}, "
          f"predictor={fpga_prototype().predictor}, repeats={REPEATS}")
    engines = {}
    for label, engine, seed_equivalent in (
            ("seed_scalar", "scalar", True),
            ("scalar", "scalar", False),
            ("batched", "batched", False)):
        engines[label] = _measure(engine, seed_equivalent)
        print(f"  {label:12s} {engines[label]['branches_per_second']:>12,.0f} "
              "branches/s")

    batched = engines["batched"]["branches_per_second"]
    payload = {
        "benchmark": "engine_throughput",
        "case": PAIR.case,
        "pair": PAIR.label(),
        "preset": PRESET,
        "config": "fpga_prototype",
        "target_branches": SCALE.st_target_branches,
        "warmup_branches": SCALE.st_warmup_branches,
        "engines": engines,
        "speedup_batched_vs_seed_scalar": round(
            batched / engines["seed_scalar"]["branches_per_second"], 2),
        "speedup_batched_vs_scalar": round(
            batched / engines["scalar"]["branches_per_second"], 2),
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"speedup vs seed scalar loop: "
          f"{payload['speedup_batched_vs_seed_scalar']}x")
    print(f"wrote {OUTPUT}")
    return payload


if __name__ == "__main__":
    main()
