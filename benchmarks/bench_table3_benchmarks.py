"""Benchmark regenerating Table 3 (benchmark pair sets)."""

from conftest import run_once, save_result

from repro.experiments import table3_benchmarks


def test_table3_benchmark_sets(benchmark, scale):
    result = run_once(benchmark, table3_benchmarks.run, scale)
    save_result(result)
    assert len(result.rows) == 12
