"""Benchmark regenerating Table 1 (security comparison matrix)."""

from conftest import run_once, save_result

from repro.experiments import table1_security


def test_table1_security_matrix(benchmark, scale):
    result = run_once(benchmark, table1_security.run, scale)
    save_result(result)
    assert len(result.rows) == 9
    # Every mechanism defends reuse attacks on the single-threaded core.
    single_reuse_column = 2
    assert all(row[single_reuse_column].startswith("Defend") for row in result.rows)
