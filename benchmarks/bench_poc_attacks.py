"""Benchmark regenerating the Section 5.5 proof-of-concept attack experiment."""

from conftest import run_once, save_result

from repro.experiments import poc_attacks


def test_poc_attack_defense(benchmark, scale):
    result = run_once(benchmark, poc_attacks.run, scale)
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    baseline_btb = float(rows["baseline"][1].rstrip("%"))
    protected_btb = float(rows["noisy_xor_bp"][1].rstrip("%"))
    baseline_pht = float(rows["baseline"][3].rstrip("%"))
    protected_pht_iterations = float(rows["noisy_xor_bp"][5].rstrip("%"))
    # Paper: 96.5% / 97.2% baseline, below 1% with XOR isolation.
    assert baseline_btb > 90.0
    assert protected_btb < 3.0
    assert baseline_pht > 90.0
    assert protected_pht_iterations < 1.0
