"""Benchmark regenerating Table 4 (privilege switches per million cycles)."""

from conftest import run_once, save_result

from repro.experiments import table4_privilege


def test_table4_privilege_switch_rates(benchmark, scale):
    result = run_once(benchmark, table4_privilege.run, scale)
    save_result(result)
    rates = {row[0]: float(row[2]) for row in result.rows}
    # Shape: case2 (milc+povray) has the highest rate, as in the paper.
    assert rates["case2"] == max(rates.values())
    # Rates are within a factor of ~2 of the paper's per-case values.
    paper = table4_privilege.PAPER_PRIVILEGE_SWITCH_RATES
    close = sum(0.4 * paper[c] <= rates[c] <= 2.5 * paper[c] for c in rates)
    assert close >= 8
