"""Benchmark regenerating Figure 9 (combined XOR-BP / Noisy-XOR-BP overhead)."""

from conftest import run_once, save_result

from repro.experiments import fig9_xor_bp


def test_figure9_xor_bp_overhead(benchmark, scale):
    result = run_once(benchmark, fig9_xor_bp.run, scale)
    save_result(result)
    figure = result.figure
    averages = figure.averages()
    # Shape: the overhead is insensitive to the timer period (privilege
    # switches dominate): the spread across 4M/8M/12M is small.
    xor_bp = [averages["XOR-BP-4M"], averages["XOR-BP-8M"], averages["XOR-BP-12M"]]
    assert max(xor_bp) - min(xor_bp) < 0.08
    # Shape: case1 is the costliest case for the combined mechanism.
    case_index = figure.categories.index("case1")
    series = figure.series["Noisy-XOR-BP-8M"]
    assert series[case_index] >= sorted(series)[len(series) * 2 // 3]
