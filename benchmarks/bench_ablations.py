"""Benchmarks for the ablation studies (encoder choice, key refresh, PHT granularity)."""

from conftest import run_once, save_result

from repro.experiments import ablations


def test_ablation_content_encoder(benchmark, scale):
    result = run_once(benchmark, ablations.encoder_ablation, scale)
    save_result(result)
    overheads = [abs(float(row[1].rstrip("%"))) for row in result.rows]
    # All encoders land in the same overhead band.
    assert max(overheads) - min(overheads) < 6.0


def test_ablation_key_refresh_policy(benchmark, scale):
    result = run_once(benchmark, ablations.key_refresh_ablation, scale)
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    weak = rows["context switches only"]
    strong = rows["context + privilege switches (paper)"]
    assert float(weak[2].rstrip("%")) > 50.0
    assert float(strong[2].rstrip("%")) < 5.0


def test_ablation_pht_granularity(benchmark, scale):
    result = run_once(benchmark, ablations.pht_granularity_ablation, scale)
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    naive = float(rows["XOR-PHT (2-bit words, fixed key)"][2].rstrip("%"))
    enhanced = float(rows["Noisy-XOR-PHT"][2].rstrip("%"))
    assert naive > enhanced
