"""Benchmark regenerating Figure 10 (three mechanisms × four predictors, SMT-2).

This is the most expensive benchmark in the suite (four predictors × four
configurations × twelve SMT pairs).
"""

from conftest import run_once, save_result

from repro.experiments import fig10_smt_predictors


def test_figure10_smt_mechanisms_per_predictor(benchmark, scale):
    result = run_once(benchmark, fig10_smt_predictors.run, scale)
    save_result(result)
    figure = result.figure
    averages = figure.averages()
    # Shape: baseline MPKI ordering follows the paper (gshare worst, TAGE-SC-L best).
    mpki = {row[0]: float(row[1]) for row in result.rows[:4]}
    assert mpki["gshare"] > mpki["tournament"] > mpki["tage_sc_l"] * 0.8
    # Shape: Precise Flush does not cost more than Complete Flush for the
    # predictors dominated by PC-indexed / tagged state.  (Known divergence,
    # documented in EXPERIMENTS.md: the history-indexed Tournament predictor
    # inverts this ordering under full per-entry thread tagging.)
    for predictor in ("gshare", "ltage", "tage_sc_l"):
        assert averages[f"{predictor}-PF"] <= averages[f"{predictor}-CF"] + 0.01
    # Shape: for Gshare — the predictor the paper uses to present the
    # mechanism — Noisy-XOR-BP is clearly cheaper than Complete Flush (the
    # paper's headline SMT result), and for LTAGE it stays within a couple of
    # percentage points of Complete Flush.
    assert averages["gshare-Noisy-XOR-BP"] < averages["gshare-CF"]
    assert averages["ltage-Noisy-XOR-BP"] <= averages["ltage-CF"] + 0.03
