"""Benchmarks for the sensitivity-study extensions (DESIGN.md section 6).

These go beyond the paper's figures: a wider context-switch-interval sweep, a
misprediction-penalty sweep, and the SMT-4 comparison the paper only shows
for Complete Flush.
"""

from conftest import run_once, save_result

from repro.experiments import sensitivity


def test_switch_interval_sensitivity(benchmark, scale):
    result = run_once(benchmark, sensitivity.switch_interval_sensitivity, scale)
    save_result(result)
    figure = result.figure
    # Shape: the overhead stays bounded at every interval (absolute values are
    # inflated by the scaled-down simulation, as in Figures 8 and 9) and does
    # not grow as the timer period lengthens from 2M to 24M cycles.
    for values in figure.series.values():
        assert all(value < 0.20 for value in values)
    per_interval_means = [sum(figure.series[case][i] for case in figure.series)
                          / len(figure.series)
                          for i in range(len(figure.categories))]
    assert per_interval_means[-1] <= per_interval_means[0] + 0.01


def test_mispredict_penalty_sensitivity(benchmark, scale):
    result = run_once(benchmark, sensitivity.mispredict_penalty_sensitivity, scale)
    save_result(result)
    values = result.figure.series["noisy_xor_bp"]
    # Shape: a deeper pipeline (larger penalty) never makes protection cheaper
    # by more than noise.
    assert values[-1] >= values[0] - 0.02


def test_smt4_noisy_xor(benchmark, scale):
    result = run_once(benchmark, sensitivity.smt4_noisy_xor, scale)
    save_result(result)
    averages = result.figure.averages()
    # Shape: Noisy-XOR-BP does not cost more than Precise Flush on SMT-4
    # (Precise Flush partitions the shared tables between four threads).
    assert averages["noisy_xor_bp"] <= averages["precise_flush"] + 0.02
