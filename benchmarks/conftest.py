"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures by calling the
corresponding driver in :mod:`repro.experiments` exactly once (these are
long-running simulations, not micro-benchmarks, so ``pedantic`` with a single
round is used), stores the rendered artefact under ``benchmarks/results/`` and
performs light shape checks.

Run with ``pytest benchmarks/ --benchmark-only``.  The ``REPRO_SCALE``
environment variable scales the simulated trace lengths (e.g. ``0.5`` for a
quick pass, ``4`` for a higher-fidelity overnight run).
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
try:  # pragma: no cover
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def save_result(result) -> str:
    """Render an ExperimentResult and store it under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = result.render()
    filename = result.name.lower().replace(" ", "_").replace("(", "").replace(")", "")
    path = os.path.join(RESULTS_DIR, f"{filename}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def scale():
    """The experiment scale shared by every benchmark in the session."""
    from repro.experiments import default_scale
    return default_scale()
