"""Benchmark regenerating Figure 7 (XOR-BTB / Noisy-XOR-BTB overhead)."""

from conftest import run_once, save_result

from repro.experiments import fig7_xor_btb


def test_figure7_xor_btb_overhead(benchmark, scale):
    result = run_once(benchmark, fig7_xor_btb.run, scale)
    save_result(result)
    figure = result.figure
    averages = figure.averages()
    # Shape: index randomisation adds essentially nothing over content encoding.
    for label in ("4M", "8M", "12M"):
        assert abs(averages[f"Noisy-XOR-BTB-{label}"]
                   - averages[f"XOR-BTB-{label}"]) < 0.03
    # Shape: case6 (gobmk+libquantum) is among the costliest cases.
    case_index = figure.categories.index("case6")
    series = figure.series["XOR-BTB-8M"]
    assert series[case_index] >= sorted(series)[len(series) // 2]
