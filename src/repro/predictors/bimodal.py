"""Bimodal direction predictor (per-PC 2-bit counters).

The bimodal table is both the simplest standalone predictor and the base
component of the TAGE family.  It is indexed purely by branch-address bits,
so it is the structure the BranchScope attack targets: the attacker and the
victim branch that share an index share a counter.
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPrediction, DirectionPredictor
from .counters import counter_is_taken, saturating_update
from .table import PackedCounterTable, PredictorTable, TableIsolation

__all__ = ["BimodalPredictor"]


class BimodalPredictor(DirectionPredictor):
    """A table of saturating counters indexed by branch PC bits.

    Args:
        n_entries: number of counters (power of two).
        counter_bits: width of each counter (2 in a classic PHT).
        isolation: isolation policy applied to the table.
        word_bits: physical word width used for Enhanced-XOR-PHT style packing.
    """

    name = "bimodal"

    def __init__(self, n_entries: int = 4096, counter_bits: int = 2, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self._counter_bits = counter_bits
        weak_not_taken = (1 << (counter_bits - 1)) - 1
        self._pht = PackedCounterTable(
            n_entries, counter_bits, word_bits=word_bits,
            reset_value=weak_not_taken, name="bimodal_pht", isolation=isolation)
        self._index_mask = n_entries - 1

    def index_of(self, pc: int) -> int:
        """Logical table index for a branch PC (before any index encoding)."""
        return (pc >> 2) & self._index_mask

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        index = self.index_of(pc)
        counter = self._pht.read(index, thread_id)
        return DirectionPrediction(
            taken=counter_is_taken(counter, self._counter_bits),
            meta={"index": index, "counter": counter})

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        index = self.index_of(pc)
        counter = self._pht.read(index, thread_id)
        self._pht.write(index, saturating_update(counter, taken, self._counter_bits),
                        thread_id)

    def tables(self) -> List[PredictorTable]:
        return [self._pht.word_table]

    @property
    def pht(self) -> PackedCounterTable:
        """The underlying counter table (exposed for attacks and tests)."""
        return self._pht

    def flush(self) -> None:
        self._pht.flush()

    def flush_thread(self, thread_id: int) -> None:
        self._pht.flush_thread(thread_id)
