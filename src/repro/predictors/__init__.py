"""Branch-predictor substrate.

This subpackage implements the prediction structures the paper builds on:
pattern history tables (Gshare, Tournament), the TAGE family (TAGE, LTAGE,
TAGE-SC-L) with loop predictor and statistical corrector, the set-associative
BTB and the return address stack.  Every table routes its accesses through
:class:`repro.predictors.table.PredictorTable`, the attachment point for the
isolation mechanisms defined in :mod:`repro.core`.
"""

from .base import DirectionPrediction, DirectionPredictor, Flushable, PredictorStats
from .bimodal import BimodalPredictor
from .btb import BranchTargetBuffer, BTBEntry, BTBResult
from .counters import (
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
    SaturatingCounter,
    counter_is_taken,
    counter_strength,
    saturating_update,
    signed_saturating_update,
)
from .gshare import GsharePredictor
from .history import GlobalHistory, LocalHistoryTable, PathHistory, fold_history
from .ittage import IttagePrediction, IttagePredictor
from .loop import LoopPredictor
from .ltage import LTagePredictor
from .perceptron import PerceptronPredictor
from .ras import ReturnAddressStack
from .statistical_corrector import StatisticalCorrector
from .table import IdentityIsolation, PackedCounterTable, PredictorTable, TableIsolation
from .tage import TageConfig, TagePredictor, geometric_history_lengths
from .tage_sc_l import TageScLPredictor
from .tournament import TournamentPredictor

__all__ = [
    "DirectionPrediction",
    "DirectionPredictor",
    "Flushable",
    "PredictorStats",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BTBEntry",
    "BTBResult",
    "SaturatingCounter",
    "saturating_update",
    "signed_saturating_update",
    "counter_is_taken",
    "counter_strength",
    "STRONG_NOT_TAKEN",
    "WEAK_NOT_TAKEN",
    "WEAK_TAKEN",
    "STRONG_TAKEN",
    "GsharePredictor",
    "GlobalHistory",
    "PathHistory",
    "LocalHistoryTable",
    "fold_history",
    "IttagePrediction",
    "IttagePredictor",
    "LoopPredictor",
    "LTagePredictor",
    "PerceptronPredictor",
    "ReturnAddressStack",
    "StatisticalCorrector",
    "IdentityIsolation",
    "PackedCounterTable",
    "PredictorTable",
    "TableIsolation",
    "TageConfig",
    "TagePredictor",
    "TageScLPredictor",
    "geometric_history_lengths",
    "TournamentPredictor",
    "DIRECTION_PREDICTORS",
    "make_direction_predictor",
]

#: Registry of direction predictors evaluated in the paper's SMT study.
DIRECTION_PREDICTORS = {
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "tournament": TournamentPredictor,
    "tage": TagePredictor,
    "ltage": LTagePredictor,
    "tage_sc_l": TageScLPredictor,
    "perceptron": PerceptronPredictor,
}


def make_direction_predictor(name, isolation=None, **kwargs):
    """Construct a direction predictor by name.

    Args:
        name: one of ``bimodal``, ``gshare``, ``tournament``, ``tage``,
            ``ltage``, ``tage_sc_l``.
        isolation: isolation policy to attach to all tables.
        **kwargs: forwarded to the predictor constructor.

    Returns:
        A :class:`repro.predictors.base.DirectionPredictor` instance.

    Raises:
        KeyError: when ``name`` is not a known predictor.
    """
    key = name.lower().replace("-", "_")
    if key not in DIRECTION_PREDICTORS:
        raise KeyError(f"unknown direction predictor: {name!r}")
    return DIRECTION_PREDICTORS[key](isolation=isolation, **kwargs)
