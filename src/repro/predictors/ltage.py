"""LTAGE: TAGE augmented with a loop predictor.

LTAGE (Seznec, CBP-2) is one of the four predictors evaluated in the paper's
SMT study (Table 2 lists a 32 KB LTAGE).  The loop predictor overrides TAGE
whenever it has a confident entry for the branch.
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPrediction, DirectionPredictor
from .loop import LoopPredictor
from .table import PredictorTable, TableIsolation
from .tage import TageConfig, TagePredictor

__all__ = ["LTagePredictor"]


class LTagePredictor(DirectionPredictor):
    """TAGE + loop predictor.

    Args:
        tage_config: sizing of the TAGE component.
        loop_entries: number of loop-table entries.
        isolation: isolation policy applied to every table.
        word_bits: physical word width used for base-PHT packing.
    """

    name = "ltage"

    def __init__(self, tage_config: Optional[TageConfig] = None,
                 loop_entries: int = 256, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self._tage = TagePredictor(tage_config, isolation=isolation,
                                   word_bits=word_bits)
        self._loop = LoopPredictor(loop_entries, isolation=isolation)

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        tage_pred = self._tage.lookup(pc, thread_id)
        loop_pred = self._loop.lookup(pc, thread_id)
        if loop_pred.valid:
            taken = loop_pred.taken
        else:
            taken = tage_pred.taken
        return DirectionPrediction(taken=taken, meta={
            "tage": tage_pred,
            "loop_valid": loop_pred.valid,
            "loop_taken": loop_pred.taken,
        })

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        if prediction is None or "tage" not in prediction.meta:
            prediction = self.lookup(pc, thread_id)
        self._loop.update(pc, taken, thread_id)
        self._tage.update(pc, taken, prediction.meta["tage"], thread_id)

    def tables(self) -> List[PredictorTable]:
        return self._tage.tables() + [self._loop.table]

    @property
    def tage(self) -> TagePredictor:
        """The TAGE component."""
        return self._tage

    @property
    def loop(self) -> LoopPredictor:
        """The loop-predictor component."""
        return self._loop

    def flush(self) -> None:
        self._tage.flush()
        self._loop.flush()

    def flush_thread(self, thread_id: int) -> None:
        self._tage.flush_thread(thread_id)
        self._loop.flush_thread(thread_id)
