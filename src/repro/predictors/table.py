"""Predictor storage arrays and the isolation attachment point.

Every history table in this package (PHTs, TAGE tagged tables, choosers,
statistical-corrector tables, BTB ways) stores its state in a
:class:`PredictorTable`.  The table routes *every* index computation and
*every* content read/write through an attached :class:`TableIsolation`
policy.  This is the single mechanism by which the paper's defenses are
applied:

* **XOR-BP** (content encoding) encodes values on write and decodes on read
  with a thread-private content key;
* **Noisy-XOR-BP** (index encoding) additionally remaps the index with a
  thread-private index key;
* **Complete Flush / Precise Flush** leave reads and writes untouched but
  flush registered tables on context/privilege switches.

Keeping the policy at the storage layer means the predictor algorithms
(Gshare, Tournament, TAGE, ...) are written once and are oblivious to which
isolation mechanism is active — mirroring the paper's claim that the scheme
is "versatile to accommodate multiple branch predictors".

Two monomorphic fast paths avoid the virtual dispatch on the simulation hot
path:

* the *passthrough* fast path (baseline and flush policies: identity
  transforms, no owner tracking) reads and writes storage directly;
* the *fused-XOR* fast path (plain-XOR content/index encoding, the paper's
  headline XOR-BP / Noisy-XOR-BP mechanisms) applies thread-private
  encode/decode masks inline.  The masks are precomputed per (thread, table)
  and re-randomised only at context/privilege-switch time — hoisted out of
  the per-branch loop — via the mask-cache registration protocol on
  :class:`repro.core.isolation.XorContentIsolation`.

Tables can also share one flat storage list (``storage``/``storage_offset``),
which lets multi-table predictors such as TAGE keep every tagged entry in a
single packed buffer with precomputed per-table strides while each table view
retains the full read/write/flush API.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

__all__ = ["TableIsolation", "IdentityIsolation", "PredictorTable",
           "PackedCounterTable", "is_passthrough_isolation",
           "supports_fused_xor", "ROW_DIVERSIFIER"]

_NO_OWNER = -1

#: Multiplier of the per-row key diffusion used by row-diversified content
#: encoding (must match ``XorContentIsolation._content_key``).
ROW_DIVERSIFIER = 0x45D9F3B


class TableIsolation:
    """Interface for isolation policies attached to predictor storage.

    The default implementation is the identity transform (no isolation).
    Concrete mechanisms live in :mod:`repro.core.isolation`; they override the
    methods below and are notified about context/privilege switches by the
    secure-predictor wrappers in :mod:`repro.core.secure`.
    """

    #: Whether tables should track the owning hardware thread of each entry.
    #: Precise Flush needs this; everything else does not.  When owners are
    #: tracked, entries are also *visible only to their owner* (the paper's
    #: footnote to Table 1: with thread IDs attached, branches in different
    #: hardware threads cannot use each other's history).
    tracks_owner: bool = False

    #: True when the policy is a plain-XOR encoder whose per-(thread, table)
    #: masks can be precomputed and fused into storage accesses (the
    #: monomorphic fused-XOR fast path).  Set by
    #: :class:`repro.core.isolation.XorContentIsolation`.
    supports_fused_xor: bool = False

    def map_index(self, index: int, index_bits: int, thread_id: int, table: object) -> int:
        """Map a logical table index to a physical one (index encoding)."""
        return index

    def encode(self, value: int, width_bits: int, thread_id: int, table: object,
               row: int) -> int:
        """Encode a value before it is written to storage (content encoding)."""
        return value

    def decode(self, value: int, width_bits: int, thread_id: int, table: object,
               row: int) -> int:
        """Decode a value after it is read from storage."""
        return value

    def register_flushable(self, flushable: object) -> None:
        """Register a structure exposing ``flush()``/``flush_thread()``.

        Flush-based mechanisms keep a list of registered structures and flush
        them on switches; encoding-based mechanisms ignore the registration.
        """

    # -- switch notifications -------------------------------------------------
    def on_context_switch(self, thread_id: int) -> None:
        """Called when the OS switches the software context on ``thread_id``."""

    def on_privilege_switch(self, thread_id: int, privilege: int) -> None:
        """Called when ``thread_id`` changes privilege level."""


class IdentityIsolation(TableIsolation):
    """Explicit no-op isolation (the paper's *Baseline* configuration)."""

    name = "baseline"


_IDENTITY = IdentityIsolation()


def is_passthrough_isolation(isolation: TableIsolation) -> bool:
    """True when a policy leaves indices, contents and ownership untouched.

    Baseline and flush-based policies inherit the identity ``map_index`` /
    ``encode`` / ``decode`` from :class:`TableIsolation` and do not track
    entry owners, so storage accesses can skip the virtual-dispatch
    indirection entirely (the monomorphic fast path used by the batched
    simulation engine).  Encoding policies override the hooks and Precise
    Flush tracks owners, which disables the fast path.
    """
    cls = type(isolation)
    return (cls.map_index is TableIsolation.map_index
            and cls.encode is TableIsolation.encode
            and cls.decode is TableIsolation.decode
            and not isolation.tracks_owner)


def supports_fused_xor(isolation: TableIsolation) -> bool:
    """True when storage can fuse the policy's XOR masks inline.

    Plain-XOR content (and, for Noisy-XOR, index) encoding commutes into a
    precomputed per-(thread, table) mask, so the storage layer can decode and
    encode without any virtual dispatch.  Policies using non-XOR encoders
    (S-box, shift-XOR ablations) or owner tracking must keep the generic
    dispatch path.
    """
    return bool(getattr(isolation, "supports_fused_xor", False)
                and not isolation.tracks_owner)


def _require_power_of_two(n: int, what: str) -> None:
    if n < 1 or n & (n - 1):
        raise ValueError(f"{what} must be a positive power of two, got {n}")


class PredictorTable:
    """A direct-mapped array of fixed-width unsigned words.

    Args:
        n_entries: number of rows; must be a power of two.
        entry_bits: width of each stored word in bits.
        reset_value: value every row takes on reset/flush.
        name: human-readable name (used by per-table key derivation).
        isolation: the isolation policy; defaults to the identity policy.
        storage: optional shared flat storage list.  When given, this table
            occupies rows ``[storage_offset, storage_offset + n_entries)`` of
            it; multiple views may share one list (TAGE keeps all tagged
            tables in a single packed buffer this way).
        storage_offset: first row of this table inside ``storage``.
    """

    def __init__(self, n_entries: int, entry_bits: int, *, reset_value: int = 0,
                 name: str = "table", isolation: Optional[TableIsolation] = None,
                 storage: Optional[List[int]] = None,
                 storage_offset: int = 0) -> None:
        _require_power_of_two(n_entries, "n_entries")
        if entry_bits < 1:
            raise ValueError("entry_bits must be positive")
        max_value = (1 << entry_bits) - 1
        if not 0 <= reset_value <= max_value:
            raise ValueError("reset_value does not fit in entry_bits")
        self._n_entries = n_entries
        self._entry_bits = entry_bits
        self._index_bits = n_entries.bit_length() - 1
        self._index_mask = n_entries - 1
        self._value_mask = max_value
        self._reset_value = reset_value
        self.name = name
        if storage is None:
            self._offset = 0
            self._data: List[int] = [reset_value] * n_entries
        else:
            if storage_offset < 0 or storage_offset + n_entries > len(storage):
                raise ValueError("storage slice out of range")
            self._offset = storage_offset
            self._data = storage
            storage[storage_offset:storage_offset + n_entries] = \
                [reset_value] * n_entries
        self._owner: List[int] = [_NO_OWNER] * n_entries
        self._row_keys: Optional[List[int]] = None
        self._attach_isolation(isolation if isolation is not None else _IDENTITY)

    def _attach_isolation(self, isolation: TableIsolation) -> None:
        self._isolation = isolation
        self._fast = is_passthrough_isolation(isolation)
        self._xor_fast = (not self._fast) and supports_fused_xor(isolation)
        # Per-thread (index_key, content_key, row_keys) decode masks of the
        # fused-XOR fast path.  A fresh dict per attachment so that a
        # previously attached policy invalidating its registered caches can
        # never clear the new policy's masks.
        self._xor_masks: dict = {}
        if self._xor_fast:
            isolation.register_fast_mask_cache(self, self._xor_masks,
                                               self._build_xor_masks)
        isolation.register_flushable(self)

    # -- geometry -------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Number of rows."""
        return self._n_entries

    @property
    def entry_bits(self) -> int:
        """Width of each row in bits."""
        return self._entry_bits

    @property
    def index_bits(self) -> int:
        """Number of index bits (log2 of the row count)."""
        return self._index_bits

    @property
    def storage_bits(self) -> int:
        """Total storage in bits (used by the hardware cost model)."""
        return self._n_entries * self._entry_bits

    @property
    def isolation(self) -> TableIsolation:
        """The attached isolation policy."""
        return self._isolation

    def set_isolation(self, isolation: TableIsolation) -> None:
        """Attach a different isolation policy (contents are reset)."""
        self._attach_isolation(isolation)
        self.flush()

    # -- fused-XOR mask maintenance -------------------------------------------
    def row_diversifier_keys(self) -> List[int]:
        """Per-row content-key diffusion values (thread-independent).

        Row-diversified content encoding XORs ``(row * ROW_DIVERSIFIER)``
        (width-masked) into the content key; a non-diversified policy uses a
        zero vector.  Cached, since the vector only depends on the table
        geometry and the policy's ``row_diversified`` flag.
        """
        if self._row_keys is None:
            if getattr(self._isolation, "_row_diversified", False):
                mask = self._value_mask
                self._row_keys = [(row * ROW_DIVERSIFIER) & mask
                                  for row in range(self._n_entries)]
            else:
                self._row_keys = [0] * self._n_entries
        return self._row_keys

    def _build_xor_masks(self, thread_id: int) -> tuple:
        """(Re)compute this table's fused-XOR masks for one hardware thread."""
        isolation = self._isolation
        masks = (isolation.fused_index_key(thread_id, self._index_bits, self),
                 isolation.fused_content_key(thread_id, self._entry_bits, self),
                 self.row_diversifier_keys())
        self._xor_masks[thread_id] = masks
        return masks

    # -- access ---------------------------------------------------------------
    def physical_index(self, index: int, thread_id: int = 0) -> int:
        """Return the physical row selected for a logical index."""
        mapped = self._isolation.map_index(index & self._index_mask, self._index_bits,
                                           thread_id, self)
        return mapped & self._index_mask

    def read(self, index: int, thread_id: int = 0) -> int:
        """Read and decode the word at a logical index.

        Under an owner-tracking policy (Precise Flush), entries written by a
        different hardware thread read as the reset value: the thread-ID tag
        makes them invisible to other threads.
        """
        if self._fast:
            # Identity/flush policies: no index mapping, no decoding, no
            # owner check — stored words are already masked.
            return self._data[self._offset + (index & self._index_mask)]
        if self._xor_fast:
            # Fused-XOR fast path: precomputed thread-private masks replace
            # the virtual encode/decode dispatch (bit-identical to it).
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, content_key, row_keys = masks
            row = (index ^ index_key) & self._index_mask
            return self._data[self._offset + row] ^ content_key ^ row_keys[row]
        row = self.physical_index(index, thread_id)
        if self._isolation.tracks_owner:
            owner = self._owner[row]
            if owner != _NO_OWNER and owner != thread_id:
                return self._reset_value
        raw = self._data[self._offset + row]
        value = self._isolation.decode(raw, self._entry_bits, thread_id, self, row)
        return value & self._value_mask

    def write(self, index: int, value: int, thread_id: int = 0) -> None:
        """Encode and write a word at a logical index."""
        if self._fast:
            self._data[self._offset + (index & self._index_mask)] = \
                value & self._value_mask
            return
        if self._xor_fast:
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, content_key, row_keys = masks
            row = (index ^ index_key) & self._index_mask
            self._data[self._offset + row] = \
                (value & self._value_mask) ^ content_key ^ row_keys[row]
            return
        row = self.physical_index(index, thread_id)
        encoded = self._isolation.encode(value & self._value_mask, self._entry_bits,
                                         thread_id, self, row)
        self._data[self._offset + row] = encoded & self._value_mask
        if self._isolation.tracks_owner:
            self._owner[row] = thread_id

    def read_raw(self, row: int) -> int:
        """Read the stored (still encoded) word at a *physical* row.

        This bypasses the isolation policy entirely.  It exists for tests and
        for the attack framework, which models an adversary that can observe
        side effects of the physical storage but not the decoded contents.
        """
        return self._data[self._offset + (row & self._index_mask)]

    def write_raw(self, row: int, value: int) -> None:
        """Write a raw (pre-encoded) word at a physical row (tests only)."""
        self._data[self._offset + (row & self._index_mask)] = value & self._value_mask

    def owner_of(self, row: int) -> int:
        """Owning hardware thread of a physical row, or ``-1`` if untracked."""
        return self._owner[row & self._index_mask]

    # -- flush support --------------------------------------------------------
    def flush(self) -> None:
        """Reset every row (Complete Flush).

        Rows are reset in place so that shared flat storage (and any direct
        references the fused kernels hold to it) stays valid.
        """
        self._data[self._offset:self._offset + self._n_entries] = \
            [self._reset_value] * self._n_entries
        self._owner[:] = [_NO_OWNER] * self._n_entries

    def flush_thread(self, thread_id: int) -> None:
        """Reset only rows owned by ``thread_id`` (Precise Flush).

        When owners are not tracked this degenerates to a complete flush,
        which is the conservative behaviour.
        """
        if not self._isolation.tracks_owner:
            self.flush()
            return
        data = self._data
        offset = self._offset
        for row, owner in enumerate(self._owner):
            if owner == thread_id:
                data[offset + row] = self._reset_value
                self._owner[row] = _NO_OWNER

    def rows(self) -> Iterable[int]:
        """Iterate over raw stored words (for tests and entropy analysis)."""
        return iter(self._data[self._offset:self._offset + self._n_entries])

    def __len__(self) -> int:
        return self._n_entries


class PackedCounterTable:
    """A table of small saturating counters packed into wide physical words.

    This models the paper's **Enhanced-XOR-PHT** observation (Section 5.2,
    Figure 5): a 4K-entry, 2-bit PHT can be viewed as a 256-entry array of
    32-bit words, and content encoding can be applied to the whole word with a
    wide key rather than to each 2-bit counter with a 2-bit key.  Logically
    the structure still behaves as ``n_counters`` independent counters; the
    packing only changes the granularity at which the isolation policy's
    encode/decode runs — and therefore the obfuscation strength.

    All storage access (including both monomorphic fast paths) is delegated
    to the underlying :class:`PredictorTable`, so there is a single packed
    implementation of the isolation dispatch for every direction table; this
    class only translates counter indices to (word, slot) coordinates.  The
    fused predictor kernels bypass these wrappers and drive the word table
    directly.

    Args:
        n_counters: number of logical counters; power of two.
        counter_bits: width of each logical counter.
        word_bits: width of each physical word; multiple of ``counter_bits``.
        reset_value: initial value of every counter.
        name: table name.
        isolation: isolation policy (applied at word granularity).
    """

    def __init__(self, n_counters: int, counter_bits: int = 2, *, word_bits: int = 32,
                 reset_value: int = 1, name: str = "pht",
                 isolation: Optional[TableIsolation] = None) -> None:
        _require_power_of_two(n_counters, "n_counters")
        if word_bits % counter_bits:
            raise ValueError("word_bits must be a multiple of counter_bits")
        self._counters_per_word = word_bits // counter_bits
        if self._counters_per_word > n_counters:
            # Degenerate tiny tables: fall back to one counter per word.
            self._counters_per_word = 1
            word_bits = counter_bits
        self._n_counters = n_counters
        self._counter_bits = counter_bits
        self._counter_mask = (1 << counter_bits) - 1
        self._word_bits = word_bits
        n_words = n_counters // self._counters_per_word
        packed_reset = 0
        for slot in range(self._counters_per_word):
            packed_reset |= (reset_value & self._counter_mask) << (slot * counter_bits)
        self._words = PredictorTable(n_words, word_bits, reset_value=packed_reset,
                                     name=name, isolation=isolation)
        self._reset_counter = reset_value & self._counter_mask

    # -- geometry -------------------------------------------------------------
    @property
    def n_counters(self) -> int:
        """Number of logical counters."""
        return self._n_counters

    @property
    def counter_bits(self) -> int:
        """Width of each logical counter."""
        return self._counter_bits

    @property
    def counters_per_word(self) -> int:
        """Number of counters packed in each physical word."""
        return self._counters_per_word

    @property
    def word_table(self) -> PredictorTable:
        """The underlying physical word array."""
        return self._words

    @property
    def storage_bits(self) -> int:
        """Total storage in bits."""
        return self._words.storage_bits

    def set_isolation(self, isolation: TableIsolation) -> None:
        """Attach a different isolation policy (contents are reset)."""
        self._words.set_isolation(isolation)

    # -- access ---------------------------------------------------------------
    def read(self, index: int, thread_id: int = 0) -> int:
        """Read the logical counter at ``index``."""
        index &= self._n_counters - 1
        word = self._words.read(index // self._counters_per_word, thread_id)
        return (word >> ((index % self._counters_per_word) * self._counter_bits)) \
            & self._counter_mask

    def write(self, index: int, value: int, thread_id: int = 0) -> None:
        """Write the logical counter at ``index`` (read-modify-write the word)."""
        index &= self._n_counters - 1
        word_index = index // self._counters_per_word
        word = self._words.read(word_index, thread_id)
        shift = (index % self._counters_per_word) * self._counter_bits
        word &= ~(self._counter_mask << shift)
        word |= (value & self._counter_mask) << shift
        self._words.write(word_index, word, thread_id)

    def flush(self) -> None:
        """Reset every counter."""
        self._words.flush()

    def flush_thread(self, thread_id: int) -> None:
        """Reset counters in words owned by ``thread_id``."""
        self._words.flush_thread(thread_id)

    def __len__(self) -> int:
        return self._n_counters
