"""Alpha-21264-style Tournament direction predictor.

The Tournament predictor combines a two-level *local* predictor (per-branch
pattern history feeding a table of counters) with a *global* predictor indexed
by the recent path/global history, and a *chooser* that learns, per history
pattern, which of the two components to trust.

Sizing follows the paper's Figure 6(a): a 2048-entry, 11-bit local history
table, a 2048-entry local prediction table, an 8192-entry global prediction
table and an 8192-entry choice table, both indexed by the global (path)
history.  All second-level tables are built on
:class:`repro.predictors.table.PackedCounterTable` so that content and index
encoding apply uniformly, as shown in the figure.
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPrediction, DirectionPredictor
from .counters import counter_is_taken, saturating_update
from .history import GlobalHistory, LocalHistoryTable, PathHistory
from .table import PackedCounterTable, PredictorTable, TableIsolation

__all__ = ["TournamentPredictor"]


class TournamentPredictor(DirectionPredictor):
    """Local/global/chooser hybrid predictor.

    Args:
        local_history_entries: rows in the first-level local history table.
        local_history_bits: pattern length kept per static branch.
        local_entries: counters in the local prediction table.
        global_entries: counters in the global prediction table.
        choice_entries: counters in the chooser table.
        global_history_bits: length of the global history register.
        isolation: isolation policy applied to all second-level tables.
        word_bits: physical word width for Enhanced-XOR-PHT style packing.
    """

    name = "tournament"

    def __init__(self,
                 local_history_entries: int = 2048,
                 local_history_bits: int = 11,
                 local_entries: int = 2048,
                 global_entries: int = 8192,
                 choice_entries: int = 8192,
                 global_history_bits: int = 13, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self._local_history = LocalHistoryTable(local_history_entries, local_history_bits)
        self._local_pht = PackedCounterTable(local_entries, 2, word_bits=word_bits,
                                             reset_value=1, name="tournament_local",
                                             isolation=isolation)
        self._global_pht = PackedCounterTable(global_entries, 2, word_bits=word_bits,
                                              reset_value=1, name="tournament_global",
                                              isolation=isolation)
        self._choice_pht = PackedCounterTable(choice_entries, 2, word_bits=word_bits,
                                              reset_value=1, name="tournament_choice",
                                              isolation=isolation)
        self._local_mask = local_entries - 1
        self._global_mask = global_entries - 1
        self._choice_mask = choice_entries - 1
        self._ghr = GlobalHistory(global_history_bits)
        # The paper describes the second level as "indexed by the path (or
        # global) history of the last 12 branches" (Figure 6a); hashing the
        # outcome history with the path history keeps outcome correlation
        # while decorrelating different programs' footprints.
        self._path = PathHistory(24, pc_bits_per_branch=2)
        if isolation is not None:
            isolation.register_flushable(self._local_history)

    # -- index computation ----------------------------------------------------
    def _local_index(self, pc: int) -> int:
        # Second level of the local component: indexed by the branch's pattern
        # history, as in the Alpha 21264 and gem5's TournamentBP.
        return self._local_history.read(pc) & self._local_mask

    def _global_index(self, thread_id: int) -> int:
        history = self._ghr.folded(self._global_mask.bit_length(), thread_id)
        path = self._path.folded(self._global_mask.bit_length(), thread_id)
        return (history ^ path) & self._global_mask

    def _choice_index(self, thread_id: int) -> int:
        history = self._ghr.folded(self._choice_mask.bit_length(), thread_id)
        path = self._path.folded(self._choice_mask.bit_length(), thread_id)
        return (history ^ path) & self._choice_mask

    # -- prediction protocol --------------------------------------------------
    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        local_index = self._local_index(pc)
        global_index = self._global_index(thread_id)
        choice_index = self._choice_index(thread_id)
        local_counter = self._local_pht.read(local_index, thread_id)
        global_counter = self._global_pht.read(global_index, thread_id)
        choice_counter = self._choice_pht.read(choice_index, thread_id)
        local_taken = counter_is_taken(local_counter)
        global_taken = counter_is_taken(global_counter)
        use_global = counter_is_taken(choice_counter)
        taken = global_taken if use_global else local_taken
        return DirectionPrediction(taken=taken, meta={
            "local_index": local_index,
            "global_index": global_index,
            "choice_index": choice_index,
            "local_taken": local_taken,
            "global_taken": global_taken,
            "use_global": use_global,
        })

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        if prediction is None or "local_index" not in prediction.meta:
            prediction = self.lookup(pc, thread_id)
        meta = prediction.meta
        local_index = meta["local_index"]
        global_index = meta["global_index"]
        choice_index = meta["choice_index"]
        local_correct = meta["local_taken"] == taken
        global_correct = meta["global_taken"] == taken

        # Train the chooser only when the components disagree.
        if local_correct != global_correct:
            choice = self._choice_pht.read(choice_index, thread_id)
            self._choice_pht.write(choice_index,
                                   saturating_update(choice, global_correct),
                                   thread_id)

        local_counter = self._local_pht.read(local_index, thread_id)
        self._local_pht.write(local_index, saturating_update(local_counter, taken),
                              thread_id)
        global_counter = self._global_pht.read(global_index, thread_id)
        self._global_pht.write(global_index, saturating_update(global_counter, taken),
                               thread_id)

        self._local_history.push(pc, taken)
        self._ghr.push(taken, thread_id)
        self._path.push(pc, thread_id)

    # -- structure access -----------------------------------------------------
    def tables(self) -> List[PredictorTable]:
        return [self._local_pht.word_table, self._global_pht.word_table,
                self._choice_pht.word_table]

    @property
    def local_history(self) -> LocalHistoryTable:
        """First-level local history table."""
        return self._local_history

    @property
    def local_pht(self) -> PackedCounterTable:
        """Second-level local prediction table."""
        return self._local_pht

    @property
    def global_pht(self) -> PackedCounterTable:
        """Global prediction table."""
        return self._global_pht

    @property
    def choice_pht(self) -> PackedCounterTable:
        """Chooser table."""
        return self._choice_pht

    def flush(self) -> None:
        self._local_pht.flush()
        self._global_pht.flush()
        self._choice_pht.flush()
        self._local_history.flush()
        self._ghr.clear()
        self._path.clear()

    def flush_thread(self, thread_id: int) -> None:
        self._local_pht.flush_thread(thread_id)
        self._global_pht.flush_thread(thread_id)
        self._choice_pht.flush_thread(thread_id)
        self._ghr.clear(thread_id)
        self._path.clear(thread_id)
