"""ITTAGE-style indirect-branch target predictor.

The paper protects the BTB, which in commercial cores is backed up for
indirect branches by a history-tagged target predictor (ITTAGE, the indirect
cousin of TAGE).  Because Spectre-V2-style malicious training specifically
targets indirect-branch prediction, a reproduction that lets downstream users
study the mechanism on a modern front end needs this structure too.  Like
every other predictor in the package it stores all state in
:class:`repro.predictors.table.PredictorTable`, so XOR-BP / Noisy-XOR-BP (or
any flush mechanism) attach without modification — tags, targets and
confidence counters are all encoded with the thread-private content key, and
the table index is remapped by the index key.

The implementation follows the textbook ITTAGE organisation: a set of tagged
tables indexed by the branch PC hashed with geometrically increasing global
history lengths; the longest matching history provides the target, and a
small confidence counter arbitrates against the alternate prediction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .history import GlobalHistory, fold_history
from .table import PredictorTable, TableIsolation
from .tage import geometric_history_lengths

__all__ = ["IttagePrediction", "IttagePredictor"]

_CONFIDENCE_BITS = 2
_USEFUL_BITS = 1


@dataclass
class IttagePrediction:
    """Result of an ITTAGE lookup.

    Attributes:
        target: predicted target address, or ``None`` when no component hit.
        provider: index of the providing table (-1 when none hit).
        confidence: provider's confidence counter value.
        meta: bookkeeping carried from ``lookup`` to ``update``.
    """

    target: Optional[int]
    provider: int = -1
    confidence: int = 0
    meta: Dict[str, object] = None


class IttagePredictor:
    """Tagged geometric-history indirect-target predictor.

    Args:
        n_tables: number of tagged components.
        table_entries: entries per component (power of two).
        tag_bits: tag width per entry.
        target_bits: stored target width per entry.
        min_history: shortest history length.
        max_history: longest history length.
        isolation: isolation policy applied to every component table.
        seed: seed of the allocation-tie-breaking RNG (kept deterministic).
    """

    name = "ittage"

    def __init__(self, n_tables: int = 4, table_entries: int = 512,
                 tag_bits: int = 9, target_bits: int = 30,
                 min_history: int = 4, max_history: int = 64, *,
                 isolation: Optional[TableIsolation] = None,
                 seed: int = 0x17A6E) -> None:
        if n_tables < 1:
            raise ValueError("need at least one tagged table")
        self._n_tables = n_tables
        self._tag_bits = tag_bits
        self._target_bits = target_bits
        self._index_bits = table_entries.bit_length() - 1
        self._index_mask = table_entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._target_mask = (1 << target_bits) - 1
        self._entry_bits = tag_bits + target_bits + _CONFIDENCE_BITS + _USEFUL_BITS
        self._history_lengths = geometric_history_lengths(n_tables, min_history,
                                                          max_history)
        self._ghr = GlobalHistory(max_history)
        self._rng = random.Random(seed)
        self._tables: List[PredictorTable] = [
            PredictorTable(table_entries, self._entry_bits, reset_value=0,
                           name=f"ittage_t{i}", isolation=isolation)
            for i in range(n_tables)
        ]

    # -- geometry --------------------------------------------------------------
    @property
    def history_lengths(self) -> List[int]:
        """Global-history length used by each component."""
        return list(self._history_lengths)

    @property
    def storage_bits(self) -> int:
        """Total table storage in bits."""
        return sum(table.storage_bits for table in self._tables)

    def tables(self) -> List[PredictorTable]:
        """All component tables (for cost models and isolation tests)."""
        return list(self._tables)

    @property
    def global_history(self) -> GlobalHistory:
        """The per-thread global history register."""
        return self._ghr

    # -- entry packing ---------------------------------------------------------
    def _pack(self, tag: int, target: int, confidence: int, useful: int) -> int:
        word = tag & self._tag_mask
        word |= (target & self._target_mask) << self._tag_bits
        word |= (confidence & ((1 << _CONFIDENCE_BITS) - 1)) \
            << (self._tag_bits + self._target_bits)
        word |= (useful & 1) << (self._tag_bits + self._target_bits + _CONFIDENCE_BITS)
        return word

    def _unpack(self, word: int) -> Dict[str, int]:
        tag = word & self._tag_mask
        target = (word >> self._tag_bits) & self._target_mask
        confidence = (word >> (self._tag_bits + self._target_bits)) \
            & ((1 << _CONFIDENCE_BITS) - 1)
        useful = (word >> (self._tag_bits + self._target_bits + _CONFIDENCE_BITS)) & 1
        return {"tag": tag, "target": target, "confidence": confidence,
                "useful": useful}

    # -- indexing --------------------------------------------------------------
    def _index_of(self, pc: int, component: int, thread_id: int) -> int:
        length = self._history_lengths[component]
        history = fold_history(self._ghr.low_bits(length, thread_id), length,
                               self._index_bits)
        return ((pc >> 2) ^ history ^ (component * 0x55)) & self._index_mask

    def _tag_of(self, pc: int, component: int, thread_id: int) -> int:
        length = self._history_lengths[component]
        history = fold_history(self._ghr.low_bits(length, thread_id), length,
                               self._tag_bits)
        tag = ((pc >> (2 + self._index_bits)) ^ (pc >> 2) ^ (history << 1))
        return (tag | 1) & self._tag_mask  # never zero, so empty entries miss

    def _compress_target(self, target: int) -> int:
        return (target >> 2) & self._target_mask

    def _expand_target(self, compressed: int, pc: int) -> int:
        region = pc & ~((self._target_mask << 2) | 0x3)
        return region | (compressed << 2)

    # -- prediction protocol ---------------------------------------------------
    def lookup(self, pc: int, thread_id: int = 0) -> IttagePrediction:
        """Predict the target of the indirect branch at ``pc``."""
        provider = -1
        provider_entry = None
        provider_index = -1
        entries = []
        for component in range(self._n_tables):
            index = self._index_of(pc, component, thread_id)
            entry = self._unpack(self._tables[component].read(index, thread_id))
            entries.append((index, entry))
            if entry["tag"] == self._tag_of(pc, component, thread_id):
                provider = component
                provider_entry = entry
                provider_index = index
        if provider_entry is None:
            return IttagePrediction(target=None, provider=-1, confidence=0,
                                    meta={"entries": entries})
        return IttagePrediction(
            target=self._expand_target(provider_entry["target"], pc),
            provider=provider,
            confidence=provider_entry["confidence"],
            meta={"entries": entries, "provider_index": provider_index})

    def update(self, pc: int, target: int,
               prediction: Optional[IttagePrediction] = None,
               thread_id: int = 0, *, taken: bool = True) -> None:
        """Train the predictor with the resolved target of ``pc``.

        Args:
            pc: indirect branch address.
            target: resolved target address.
            prediction: the object returned by the matching ``lookup`` call
                (re-computed when omitted).
            thread_id: hardware thread executing the branch.
            taken: resolved direction pushed into the global history.
        """
        if prediction is None or prediction.meta is None:
            prediction = self.lookup(pc, thread_id)
        compressed = self._compress_target(target)
        mispredicted = (prediction.target is None
                        or self._compress_target(prediction.target) != compressed)
        provider = prediction.provider
        if provider >= 0:
            index = prediction.meta["provider_index"]
            entry = dict(prediction.meta["entries"][provider][1])
            if self._compress_target(self._expand_target(entry["target"], pc)) \
                    == compressed:
                entry["confidence"] = min(entry["confidence"] + 1,
                                          (1 << _CONFIDENCE_BITS) - 1)
                entry["useful"] = 1
            elif entry["confidence"] > 0:
                entry["confidence"] -= 1
            else:
                entry["target"] = compressed
                entry["confidence"] = 0
            self._tables[provider].write(
                index, self._pack(entry["tag"], entry["target"],
                                  entry["confidence"], entry["useful"]),
                thread_id)
        if mispredicted:
            self._allocate(pc, compressed, provider, thread_id)
        self._ghr.push(taken, thread_id)

    def _allocate(self, pc: int, compressed_target: int, provider: int,
                  thread_id: int) -> None:
        """Allocate a new entry in a component with longer history."""
        candidates = list(range(provider + 1, self._n_tables))
        if not candidates:
            return
        component = self._rng.choice(candidates)
        index = self._index_of(pc, component, thread_id)
        entry = self._unpack(self._tables[component].read(index, thread_id))
        if entry["useful"]:
            # Decay instead of stealing a useful entry.
            entry["useful"] = 0
            self._tables[component].write(
                index, self._pack(entry["tag"], entry["target"],
                                  entry["confidence"], entry["useful"]),
                thread_id)
            return
        self._tables[component].write(
            index, self._pack(self._tag_of(pc, component, thread_id),
                              compressed_target, 0, 0),
            thread_id)

    # -- flush protocol ---------------------------------------------------------
    def flush(self) -> None:
        """Clear all component tables and histories (Complete Flush)."""
        for table in self._tables:
            table.flush()
        self._ghr.clear()

    def flush_thread(self, thread_id: int) -> None:
        """Clear one hardware thread's entries (Precise Flush)."""
        for table in self._tables:
            table.flush_thread(thread_id)
        self._ghr.clear(thread_id)
