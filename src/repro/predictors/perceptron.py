"""Perceptron direction predictor.

The paper argues its isolation mechanisms are "versatile to accommodate
multiple branch predictors" (Section 4.2) because all protection is applied
at the storage layer.  The perceptron predictor is the classic example of a
predictor whose per-entry state is *not* a small saturating counter but a
vector of signed weights — exactly the case where the paper's word-basis
Enhanced-XOR encoding matters: the whole weight vector of a perceptron row is
stored as one wide word and encoded/decoded with the thread-private content
key in a single XOR, regardless of the logical meaning of the bits.

This module is an extension beyond the paper's evaluated predictors (Gshare,
Tournament, LTAGE, TAGE-SC-L); it exists to demonstrate — and test — that a
structurally different predictor picks up XOR-BP / Noisy-XOR-BP protection
with no change to the isolation code.
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPrediction, DirectionPredictor
from .history import GlobalHistory
from .table import PredictorTable, TableIsolation

__all__ = ["PerceptronPredictor"]


def _to_signed(value: int, bits: int) -> int:
    """Interpret an unsigned ``bits``-wide field as a two's-complement integer."""
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def _to_unsigned(value: int, bits: int) -> int:
    """Store a signed integer in an unsigned ``bits``-wide field."""
    return value & ((1 << bits) - 1)


class PerceptronPredictor(DirectionPredictor):
    """Perceptron branch predictor (Jiménez & Lin style).

    Each table row holds a bias weight plus one signed weight per global
    history bit.  The dot product of the weights with the (bipolar) history
    decides the prediction; training only adjusts the weights when the
    prediction was wrong or the output magnitude was below the training
    threshold.

    The whole weight vector of a row is packed into a single
    :class:`repro.predictors.table.PredictorTable` word so that content
    encoding operates on the full row, mirroring the paper's word-basis
    Enhanced-XOR-PHT scheme.

    Args:
        n_entries: number of perceptrons (power of two).
        history_bits: number of global-history bits (and per-row weights,
            excluding the bias weight).
        weight_bits: width of each signed weight.
        isolation: isolation policy applied to the weight table.
    """

    name = "perceptron"

    def __init__(self, n_entries: int = 512, history_bits: int = 24,
                 weight_bits: int = 8, *,
                 isolation: Optional[TableIsolation] = None) -> None:
        super().__init__(isolation)
        if history_bits < 1:
            raise ValueError("history_bits must be positive")
        if weight_bits < 2:
            raise ValueError("weight_bits must be at least 2")
        self._index_bits = n_entries.bit_length() - 1
        self._index_mask = n_entries - 1
        self._history_bits = history_bits
        self._weight_bits = weight_bits
        self._weights_per_row = history_bits + 1  # bias + one per history bit
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        # Classic threshold heuristic from the perceptron-predictor literature.
        self._threshold = int(1.93 * history_bits + 14)
        self._ghr = GlobalHistory(history_bits)
        self._table = PredictorTable(
            n_entries, self._weights_per_row * weight_bits,
            reset_value=0, name="perceptron_weights", isolation=isolation)

    # -- geometry -------------------------------------------------------------
    @property
    def history_bits(self) -> int:
        """Number of global-history bits consumed per prediction."""
        return self._history_bits

    @property
    def weight_bits(self) -> int:
        """Width of each signed weight."""
        return self._weight_bits

    @property
    def threshold(self) -> int:
        """Training threshold on the output magnitude."""
        return self._threshold

    @property
    def weight_table(self) -> PredictorTable:
        """The packed weight table (exposed for tests and the cost model)."""
        return self._table

    @property
    def global_history(self) -> GlobalHistory:
        """The per-thread global history register."""
        return self._ghr

    # -- weight packing -------------------------------------------------------
    def _unpack(self, word: int) -> List[int]:
        """Unpack a table word into a list of signed weights (bias first)."""
        weights = []
        mask = (1 << self._weight_bits) - 1
        for i in range(self._weights_per_row):
            field = (word >> (i * self._weight_bits)) & mask
            weights.append(_to_signed(field, self._weight_bits))
        return weights

    def _pack(self, weights: List[int]) -> int:
        """Pack signed weights (bias first) into a single table word."""
        word = 0
        for i, weight in enumerate(weights):
            word |= _to_unsigned(weight, self._weight_bits) << (i * self._weight_bits)
        return word

    def _history_bipolar(self, thread_id: int) -> List[int]:
        """Global history as a list of +1/-1 values, oldest last."""
        value = self._ghr.value(thread_id)
        return [1 if (value >> i) & 1 else -1 for i in range(self._history_bits)]

    # -- prediction protocol --------------------------------------------------
    def index_of(self, pc: int, thread_id: int = 0) -> int:
        """Logical row index for a branch PC."""
        del thread_id  # the index depends only on the PC, like the paper's PHTs
        return (pc >> 2) & self._index_mask

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        index = self.index_of(pc, thread_id)
        weights = self._unpack(self._table.read(index, thread_id))
        history = self._history_bipolar(thread_id)
        output = weights[0] + sum(w * h for w, h in zip(weights[1:], history))
        return DirectionPrediction(
            taken=output >= 0,
            meta={"index": index, "output": output, "weights": weights,
                  "history": history})

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        if prediction is None or "weights" not in prediction.meta:
            prediction = self.lookup(pc, thread_id)
        meta = prediction.meta
        index = meta["index"]
        weights = list(meta["weights"])
        history = meta["history"]
        output = meta["output"]
        mispredicted = (output >= 0) != taken
        if mispredicted or abs(output) <= self._threshold:
            step = 1 if taken else -1
            weights[0] = self._clip(weights[0] + step)
            for i, h in enumerate(history):
                weights[i + 1] = self._clip(weights[i + 1] + step * h)
            self._table.write(index, self._pack(weights), thread_id)
        self._ghr.push(taken, thread_id)

    def _clip(self, weight: int) -> int:
        """Saturate a weight to the representable range."""
        return max(self._weight_min, min(self._weight_max, weight))

    # -- structure access / flush protocol ------------------------------------
    def tables(self) -> List[PredictorTable]:
        return [self._table]

    def flush(self) -> None:
        self._table.flush()
        self._ghr.clear()

    def flush_thread(self, thread_id: int) -> None:
        self._table.flush_thread(thread_id)
        self._ghr.clear(thread_id)
