"""Common interfaces and statistics for branch predictors.

Two predictor roles exist in the paper's microarchitecture model:

* **Direction predictors** (PHT-style structures: Gshare, Tournament, LTAGE,
  TAGE-SC-L) predict taken/not-taken for conditional branches.
* **Target predictors** (the BTB and the return address stack) predict the
  target address of taken branches.

Both expose a two-phase ``lookup``/``update`` protocol so the CPU timing model
can account for mispredictions, and both expose ``flush``/``flush_thread`` so
flush-based isolation mechanisms can be applied uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .table import PredictorTable, TableIsolation

__all__ = [
    "DirectionPrediction",
    "PredictorStats",
    "DirectionPredictor",
    "Flushable",
]


@dataclass(slots=True)
class DirectionPrediction:
    """Result of a direction-predictor lookup.

    Attributes:
        taken: the predicted direction.
        meta: predictor-specific bookkeeping (provider bank, computed indices,
            alternate prediction, ...) carried from ``lookup`` to ``update``.
    """

    taken: bool
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class PredictorStats:
    """Per-thread prediction statistics.

    Attributes:
        lookups: number of predictions made.
        mispredictions: number of incorrect predictions.
    """

    lookups: int = 0
    mispredictions: int = 0

    @property
    def correct(self) -> int:
        """Number of correct predictions."""
        return self.lookups - self.mispredictions

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (1.0 when no lookups were made)."""
        if self.lookups == 0:
            return 1.0
        return self.correct / self.lookups

    def record(self, correct: bool) -> None:
        """Record the outcome of one prediction."""
        self.lookups += 1
        if not correct:
            self.mispredictions += 1

    def merge(self, other: "PredictorStats") -> None:
        """Accumulate another statistics object into this one."""
        self.lookups += other.lookups
        self.mispredictions += other.mispredictions


class Flushable(abc.ABC):
    """Anything whose state can be flushed completely or per hardware thread."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Clear all state (Complete Flush)."""

    @abc.abstractmethod
    def flush_thread(self, thread_id: int) -> None:
        """Clear state belonging to one hardware thread (Precise Flush)."""


class DirectionPredictor(Flushable):
    """Abstract conditional-branch direction predictor.

    Concrete predictors construct their tables with the isolation policy they
    are given, compute indices from the PC and their history registers, and
    leave all index remapping and content encoding to the storage layer
    (:class:`repro.predictors.table.PredictorTable`).
    """

    #: Short machine-readable name, e.g. ``"gshare"``.
    name: str = "direction"

    def __init__(self, isolation: Optional[TableIsolation] = None) -> None:
        self._isolation = isolation
        self._stats: Dict[int, PredictorStats] = {}

    # -- prediction protocol --------------------------------------------------
    @abc.abstractmethod
    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        """Predict the direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        """Train the predictor with the resolved direction of ``pc``.

        ``prediction`` should be the object returned by the matching
        ``lookup`` call; when omitted, the predictor re-computes it, which is
        functionally equivalent but slower.
        """

    def predict_and_update(self, pc: int, taken: bool, thread_id: int = 0) -> bool:
        """Convenience: lookup, train, record stats; returns True on mispredict."""
        prediction = self.lookup(pc, thread_id)
        mispredicted = prediction.taken != taken
        self.stats(thread_id).record(not mispredicted)
        self.update(pc, taken, prediction, thread_id)
        return mispredicted

    def execute(self, pc: int, taken: bool, thread_id: int = 0) -> bool:
        """Fused lookup + stats + update for the simulation hot path.

        Returns the *raw* predicted direction (before any front-end
        fall-through override).  State evolution and statistics are identical
        to calling ``lookup``, ``stats(...).record`` and ``update`` in
        sequence; predictors may override this with an allocation-free
        monomorphic version (see :class:`repro.predictors.gshare` and
        :class:`repro.predictors.tage`).
        """
        prediction = self.lookup(pc, thread_id)
        predicted = prediction.taken
        self.stats(thread_id).record(predicted == taken)
        self.update(pc, taken, prediction, thread_id)
        return predicted

    # -- structure access -----------------------------------------------------
    @property
    def isolation(self) -> Optional[TableIsolation]:
        """The isolation policy the predictor's tables were built with."""
        return self._isolation

    def tables(self) -> List[PredictorTable]:
        """All underlying storage tables (for cost models and entropy tests)."""
        return []

    @property
    def storage_bits(self) -> int:
        """Total table storage in bits."""
        return sum(t.storage_bits for t in self.tables())

    # -- statistics -----------------------------------------------------------
    def stats(self, thread_id: int = 0) -> PredictorStats:
        """Statistics accumulator for one hardware thread."""
        if thread_id not in self._stats:
            self._stats[thread_id] = PredictorStats()
        return self._stats[thread_id]

    def total_stats(self) -> PredictorStats:
        """Statistics aggregated over all hardware threads."""
        total = PredictorStats()
        for stats in self._stats.values():
            total.merge(stats)
        return total

    def reset_stats(self) -> None:
        """Clear all accumulated statistics (state is untouched)."""
        self._stats.clear()

    # -- flush protocol -------------------------------------------------------
    def flush(self) -> None:
        """Flush all tables (Complete Flush)."""
        for table in self.tables():
            table.flush()

    def flush_thread(self, thread_id: int) -> None:
        """Flush entries owned by one hardware thread (Precise Flush)."""
        for table in self.tables():
            table.flush_thread(thread_id)
