"""Gshare direction predictor.

Gshare XORs the branch PC with the global history register to index a single
table of 2-bit counters.  It is the smallest predictor evaluated in the
paper's SMT study (Table 2 lists a 2 KB Gshare) and the one used to describe
the Noisy-XOR-PHT microarchitecture in Figure 4(b).
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPrediction, DirectionPredictor, PredictorStats
from .counters import counter_is_taken, saturating_update
from .history import GlobalHistory
from .table import PackedCounterTable, PredictorTable, TableIsolation

__all__ = ["GsharePredictor"]


class GsharePredictor(DirectionPredictor):
    """Global-history XOR PC indexed pattern history table.

    Args:
        n_entries: number of 2-bit counters (power of two).  The paper's 2 KB
            Gshare corresponds to 8192 entries.
        history_bits: length of the global history register; defaults to the
            index width.
        isolation: isolation policy applied to the PHT.
        word_bits: physical word width for Enhanced-XOR-PHT style packing.
    """

    name = "gshare"

    def __init__(self, n_entries: int = 8192, history_bits: Optional[int] = None, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self._index_bits = n_entries.bit_length() - 1
        self._index_mask = n_entries - 1
        self._history_bits = history_bits if history_bits is not None else self._index_bits
        self._ghr = GlobalHistory(self._history_bits)
        self._pht = PackedCounterTable(n_entries, 2, word_bits=word_bits,
                                       reset_value=1, name="gshare_pht",
                                       isolation=isolation)
        # Per-call constants of the fused execute path (the word table and
        # its storage list are never rebound; flushes reset rows in place).
        words = self._pht.word_table
        self._exec_bundle = (words, words._data, words._offset,
                             words._index_mask, words._value_mask,
                             self._pht.counters_per_word,
                             self._index_bits, self._index_mask)

    def index_of(self, pc: int, thread_id: int = 0) -> int:
        """Logical PHT index: PC bits XOR folded global history."""
        history = self._ghr.folded(self._index_bits, thread_id)
        return ((pc >> 2) ^ history) & self._index_mask

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        index = self.index_of(pc, thread_id)
        counter = self._pht.read(index, thread_id)
        return DirectionPrediction(taken=counter_is_taken(counter),
                                   meta={"index": index, "counter": counter})

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        if prediction is not None and "index" in prediction.meta:
            index = prediction.meta["index"]
        else:
            index = self.index_of(pc, thread_id)
        counter = self._pht.read(index, thread_id)
        self._pht.write(index, saturating_update(counter, taken), thread_id)
        self._ghr.push(taken, thread_id)

    def execute(self, pc: int, taken: bool, thread_id: int = 0) -> bool:
        """Fused lookup + stats + update without prediction-object allocation.

        State-identical to the ``lookup``/``update`` pair: the PHT word is
        read once (reads are side-effect free), the counter trained with the
        resolved direction, and the outcome shifted into the global history.
        Passthrough and fused-XOR policies read/write the packed word list
        directly; anything else takes the word table's generic dispatch.
        """
        (words, data, offset, windex_mask, vmask, cpw, index_bits,
         index_mask) = self._exec_bundle
        ghr = self._ghr
        # Inlined self._ghr.folded(index_bits, thread_id): zero chunks are
        # no-ops, so stopping at the highest set bit matches fold_history.
        history = ghr._values.get(thread_id, 0)
        folded = history & index_mask
        history >>= index_bits
        while history:
            folded ^= history & index_mask
            history >>= index_bits
        index = ((pc >> 2) ^ folded) & index_mask
        word_index = index // cpw
        shift = (index % cpw) * 2
        if words._fast:
            row = word_index
            decode_key = 0
            word = data[offset + row]
        elif words._xor_fast:
            masks = words._xor_masks.get(thread_id)
            if masks is None:
                masks = words._build_xor_masks(thread_id)
            index_key, content_key, row_keys = masks
            row = (word_index ^ index_key) & windex_mask
            decode_key = content_key ^ row_keys[row]
            word = data[offset + row] ^ decode_key
        else:
            row = -1
            decode_key = 0
            word = words.read(word_index, thread_id)
        counter = (word >> shift) & 3
        predicted = counter >= 2
        pstats = self._stats.get(thread_id)
        if pstats is None:
            pstats = self._stats[thread_id] = PredictorStats()
        pstats.lookups += 1
        if predicted != taken:
            pstats.mispredictions += 1
        # Inlined saturating_update(counter, taken, 2).
        if taken:
            new_counter = counter + 1 if counter < 3 else 3
        else:
            new_counter = counter - 1 if counter > 0 else 0
        new_word = (word & ~(3 << shift)) | (new_counter << shift)
        if row >= 0:
            data[offset + row] = (new_word & vmask) ^ decode_key
        else:
            words.write(word_index, new_word, thread_id)
        ghr_values = ghr._values
        ghr_values[thread_id] = \
            ((ghr_values.get(thread_id, 0) << 1) | (1 if taken else 0)) \
            & ghr._mask
        return predicted

    def tables(self) -> List[PredictorTable]:
        return [self._pht.word_table]

    @property
    def pht(self) -> PackedCounterTable:
        """The underlying counter table (exposed for attacks and tests)."""
        return self._pht

    @property
    def global_history(self) -> GlobalHistory:
        """The per-thread global history register."""
        return self._ghr

    def flush(self) -> None:
        self._pht.flush()
        self._ghr.clear()

    def flush_thread(self, thread_id: int) -> None:
        self._pht.flush_thread(thread_id)
        self._ghr.clear(thread_id)
