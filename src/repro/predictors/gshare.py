"""Gshare direction predictor.

Gshare XORs the branch PC with the global history register to index a single
table of 2-bit counters.  It is the smallest predictor evaluated in the
paper's SMT study (Table 2 lists a 2 KB Gshare) and the one used to describe
the Noisy-XOR-PHT microarchitecture in Figure 4(b).

Hot-path layout
---------------

The batched simulation entry point (:meth:`GsharePredictor.execute`) is
served by **per-thread closure kernels**, the same treatment the TAGE
predictor received: the PHT geometry (index mask, history fold width, packed
word coordinates) and — under a plain-XOR policy — the thread's fused
encode/decode masks are bound once per (thread, rekey) into a closure, so a
branch pays no bundle unpacking, no fast-path flag tests and no mask-cache
lookups.  The batched engines fetch the kernel via
:meth:`GsharePredictor.exec_kernel` and re-fetch it after every switch
notification; key re-randomisation drops the kernels through the isolation
mask-cache registration protocol.  Non-fusable policies (owner tracking,
non-XOR encoders) get a kernel that routes every storage access through the
generic ``PredictorTable`` dispatch, so semantics are identical on all arms.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import DirectionPrediction, DirectionPredictor, PredictorStats
from .counters import counter_is_taken, saturating_update
from .history import GlobalHistory
from .table import (PackedCounterTable, PredictorTable, TableIsolation,
                    supports_fused_xor)

__all__ = ["GsharePredictor"]


class GsharePredictor(DirectionPredictor):
    """Global-history XOR PC indexed pattern history table.

    Args:
        n_entries: number of 2-bit counters (power of two).  The paper's 2 KB
            Gshare corresponds to 8192 entries.
        history_bits: length of the global history register; defaults to the
            index width.
        isolation: isolation policy applied to the PHT.
        word_bits: physical word width for Enhanced-XOR-PHT style packing.
    """

    name = "gshare"

    def __init__(self, n_entries: int = 8192, history_bits: Optional[int] = None, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self._index_bits = n_entries.bit_length() - 1
        self._index_mask = n_entries - 1
        self._history_bits = history_bits if history_bits is not None else self._index_bits
        self._ghr = GlobalHistory(self._history_bits)
        self._pht = PackedCounterTable(n_entries, 2, word_bits=word_bits,
                                       reset_value=1, name="gshare_pht",
                                       isolation=isolation)
        # Per-thread specialised kernels (closures, see ``_build_exec_fn``).
        # They close over per-thread masks and state, so under an XOR policy
        # they register as a mask cache: key re-randomisation drops them and
        # the next fetch rebuilds against the fresh masks.
        self._exec_fns: Dict[int, object] = {}
        attached = self._pht.word_table.isolation
        if supports_fused_xor(attached):
            self._exec_token = object()
            attached.register_fast_mask_cache(self._exec_token,
                                              self._exec_fns,
                                              self._build_exec_fn)

    def index_of(self, pc: int, thread_id: int = 0) -> int:
        """Logical PHT index: PC bits XOR folded global history."""
        history = self._ghr.folded(self._index_bits, thread_id)
        return ((pc >> 2) ^ history) & self._index_mask

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        index = self.index_of(pc, thread_id)
        counter = self._pht.read(index, thread_id)
        return DirectionPrediction(taken=counter_is_taken(counter),
                                   meta={"index": index, "counter": counter})

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        if prediction is not None and "index" in prediction.meta:
            index = prediction.meta["index"]
        else:
            index = self.index_of(pc, thread_id)
        counter = self._pht.read(index, thread_id)
        self._pht.write(index, saturating_update(counter, taken), thread_id)
        self._ghr.push(taken, thread_id)

    def execute(self, pc: int, taken: bool, thread_id: int = 0) -> bool:
        """Fused lookup + stats + update without prediction-object allocation.

        Dispatches to the thread's specialised closure kernel (see
        :meth:`exec_kernel`).  State-identical to the ``lookup``/``update``
        pair for every isolation policy: the PHT word is read once (reads are
        side-effect free), the counter trained with the resolved direction,
        and the outcome shifted into the global history.
        """
        fn = self._exec_fns.get(thread_id)
        if fn is None:
            fn = self._build_exec_fn(thread_id)
        return fn(pc, taken)

    def exec_kernel(self, thread_id: int = 0):
        """Return the thread's specialised execute kernel ``fn(pc, taken)``.

        The kernel is a closure with the PHT geometry, the thread's
        statistics object, the global-history register file and the fused
        isolation masks bound once — a branch pays no per-call attribute
        loads or mask lookups.  It is dropped (and must be re-fetched by
        callers) whenever the bound state changes identity: key
        re-randomisation (via the isolation mask-cache protocol),
        ``flush``/``flush_thread``, ``reset_stats`` and
        ``invalidate_kernel_masks``.  The batched engines re-fetch it after
        every switch notification.  The callable also accepts (and ignores) a
        trailing ``thread_id`` argument so engines can drive specialised and
        generic predictors through one call shape.
        """
        fn = self._exec_fns.get(thread_id)
        if fn is None:
            fn = self._build_exec_fn(thread_id)
        return fn

    def invalidate_kernel_masks(self) -> None:
        """Drop every cached kernel (tests / manual fast-path flag flips)."""
        self._exec_fns.clear()

    def _build_exec_fn(self, thread_id: int):
        """Build, cache and return one thread's specialised kernel.

        Three arms exist, selected by the word table's storage flags exactly
        as in :class:`repro.predictors.table.PredictorTable`: *passthrough*
        (baseline / flush presets), *fused-XOR* (plain-XOR encoders, masks
        baked in) and *generic* (owner tracking / non-XOR encoders, every
        access through the table dispatch).  Statement order mirrors the
        ``lookup``/``stats().record``/``update`` sequence bit for bit.
        """
        words = self._pht.word_table
        data = words._data
        offset = words._offset
        windex_mask = words._index_mask
        vmask = words._value_mask
        cpw = self._pht.counters_per_word
        index_bits = self._index_bits
        index_mask = self._index_mask
        ghr_values = self._ghr._values
        ghr_mask = self._ghr._mask
        pstats = self.stats(thread_id)
        tid = thread_id
        # cpw is a power of two for every standard geometry (32/2-bit words,
        # 2-bit counters); exotic widths take the generic arm below, which
        # is bit-identical and merely unspecialised.
        pow2 = cpw & (cpw - 1) == 0
        word_shift = cpw.bit_length() - 1
        slot_mask = cpw - 1

        if words._fast and pow2:
            def fn(pc, taken, _thread_id=0):
                history = ghr_values.get(tid, 0)
                folded = history & index_mask
                remaining = history >> index_bits
                while remaining:
                    folded ^= remaining & index_mask
                    remaining >>= index_bits
                index = ((pc >> 2) ^ folded) & index_mask
                row = offset + (index >> word_shift)
                shift = (index & slot_mask) * 2
                word = data[row]
                counter = (word >> shift) & 3
                predicted = counter >= 2
                pstats.lookups += 1
                if predicted != taken:
                    pstats.mispredictions += 1
                # Inlined saturating_update(counter, taken, 2).
                if taken:
                    new_counter = counter + 1 if counter < 3 else 3
                    ghr_values[tid] = ((history << 1) | 1) & ghr_mask
                else:
                    new_counter = counter - 1 if counter > 0 else 0
                    ghr_values[tid] = (history << 1) & ghr_mask
                data[row] = ((word & ~(3 << shift)) | (new_counter << shift)) \
                    & vmask
                return predicted

            fn.arm = "passthrough"
        elif words._xor_fast and pow2:
            masks = words._xor_masks.get(thread_id)
            if masks is None:
                masks = words._build_xor_masks(thread_id)
            index_key, content_key, row_keys = masks

            def fn(pc, taken, _thread_id=0):
                history = ghr_values.get(tid, 0)
                folded = history & index_mask
                remaining = history >> index_bits
                while remaining:
                    folded ^= remaining & index_mask
                    remaining >>= index_bits
                index = ((pc >> 2) ^ folded) & index_mask
                row = ((index >> word_shift) ^ index_key) & windex_mask
                shift = (index & slot_mask) * 2
                decode_key = content_key ^ row_keys[row]
                word = data[offset + row] ^ decode_key
                counter = (word >> shift) & 3
                predicted = counter >= 2
                pstats.lookups += 1
                if predicted != taken:
                    pstats.mispredictions += 1
                if taken:
                    new_counter = counter + 1 if counter < 3 else 3
                    ghr_values[tid] = ((history << 1) | 1) & ghr_mask
                else:
                    new_counter = counter - 1 if counter > 0 else 0
                    ghr_values[tid] = (history << 1) & ghr_mask
                data[offset + row] = \
                    (((word & ~(3 << shift)) | (new_counter << shift))
                     & vmask) ^ decode_key
                return predicted

            fn.arm = "fused-xor"
        else:
            def fn(pc, taken, _thread_id=0):
                history = ghr_values.get(tid, 0)
                folded = history & index_mask
                remaining = history >> index_bits
                while remaining:
                    folded ^= remaining & index_mask
                    remaining >>= index_bits
                index = ((pc >> 2) ^ folded) & index_mask
                if pow2:
                    word_index = index >> word_shift
                    shift = (index & slot_mask) * 2
                else:
                    word_index = index // cpw
                    shift = (index % cpw) * 2
                word = words.read(word_index, tid)
                counter = (word >> shift) & 3
                predicted = counter >= 2
                pstats.lookups += 1
                if predicted != taken:
                    pstats.mispredictions += 1
                if taken:
                    new_counter = counter + 1 if counter < 3 else 3
                else:
                    new_counter = counter - 1 if counter > 0 else 0
                words.write(word_index,
                            (word & ~(3 << shift)) | (new_counter << shift),
                            tid)
                ghr_values[tid] = \
                    ((history << 1) | (1 if taken else 0)) & ghr_mask
                return predicted

            # The arm tag lets benchmarks and tests assert the intended
            # specialisation is active instead of a silent generic fallback.
            fn.arm = "generic"
        self._exec_fns[thread_id] = fn
        return fn

    def tables(self) -> List[PredictorTable]:
        return [self._pht.word_table]

    @property
    def pht(self) -> PackedCounterTable:
        """The underlying counter table (exposed for attacks and tests)."""
        return self._pht

    @property
    def global_history(self) -> GlobalHistory:
        """The per-thread global history register."""
        return self._ghr

    def flush(self) -> None:
        self._pht.flush()
        self._ghr.clear()
        # Storage and history reset in place, but drop the kernels anyway so
        # a subsequent set_isolation / flag flip can never serve stale arms.
        self._exec_fns.clear()

    def flush_thread(self, thread_id: int) -> None:
        self._pht.flush_thread(thread_id)
        self._ghr.clear(thread_id)
        self._exec_fns.pop(thread_id, None)

    def reset_stats(self) -> None:
        super().reset_stats()
        # The specialised kernels bind the (now replaced) stats objects.
        self._exec_fns.clear()
