"""Gshare direction predictor.

Gshare XORs the branch PC with the global history register to index a single
table of 2-bit counters.  It is the smallest predictor evaluated in the
paper's SMT study (Table 2 lists a 2 KB Gshare) and the one used to describe
the Noisy-XOR-PHT microarchitecture in Figure 4(b).
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPrediction, DirectionPredictor
from .counters import counter_is_taken, saturating_update
from .history import GlobalHistory
from .table import PackedCounterTable, PredictorTable, TableIsolation

__all__ = ["GsharePredictor"]


class GsharePredictor(DirectionPredictor):
    """Global-history XOR PC indexed pattern history table.

    Args:
        n_entries: number of 2-bit counters (power of two).  The paper's 2 KB
            Gshare corresponds to 8192 entries.
        history_bits: length of the global history register; defaults to the
            index width.
        isolation: isolation policy applied to the PHT.
        word_bits: physical word width for Enhanced-XOR-PHT style packing.
    """

    name = "gshare"

    def __init__(self, n_entries: int = 8192, history_bits: Optional[int] = None, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self._index_bits = n_entries.bit_length() - 1
        self._index_mask = n_entries - 1
        self._history_bits = history_bits if history_bits is not None else self._index_bits
        self._ghr = GlobalHistory(self._history_bits)
        self._pht = PackedCounterTable(n_entries, 2, word_bits=word_bits,
                                       reset_value=1, name="gshare_pht",
                                       isolation=isolation)

    def index_of(self, pc: int, thread_id: int = 0) -> int:
        """Logical PHT index: PC bits XOR folded global history."""
        history = self._ghr.folded(self._index_bits, thread_id)
        return ((pc >> 2) ^ history) & self._index_mask

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        index = self.index_of(pc, thread_id)
        counter = self._pht.read(index, thread_id)
        return DirectionPrediction(taken=counter_is_taken(counter),
                                   meta={"index": index, "counter": counter})

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        if prediction is not None and "index" in prediction.meta:
            index = prediction.meta["index"]
        else:
            index = self.index_of(pc, thread_id)
        counter = self._pht.read(index, thread_id)
        self._pht.write(index, saturating_update(counter, taken), thread_id)
        self._ghr.push(taken, thread_id)

    def execute(self, pc: int, taken: bool, thread_id: int = 0) -> bool:
        """Fused lookup + stats + update without prediction-object allocation.

        State-identical to the ``lookup``/``update`` pair: the PHT counter is
        read once (reads are side-effect free), trained with the resolved
        direction, and the outcome is shifted into the global history.
        """
        pht = self._pht
        index = ((pc >> 2) ^ self._ghr.folded(self._index_bits, thread_id)) \
            & self._index_mask
        counter = pht.read(index, thread_id)
        predicted = counter_is_taken(counter)
        self.stats(thread_id).record(predicted == taken)
        pht.write(index, saturating_update(counter, taken), thread_id)
        self._ghr.push(taken, thread_id)
        return predicted

    def tables(self) -> List[PredictorTable]:
        return [self._pht.word_table]

    @property
    def pht(self) -> PackedCounterTable:
        """The underlying counter table (exposed for attacks and tests)."""
        return self._pht

    @property
    def global_history(self) -> GlobalHistory:
        """The per-thread global history register."""
        return self._ghr

    def flush(self) -> None:
        self._pht.flush()
        self._ghr.clear()

    def flush_thread(self, thread_id: int) -> None:
        self._pht.flush_thread(thread_id)
        self._ghr.clear(thread_id)
