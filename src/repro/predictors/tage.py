"""TAGE: TAgged GEometric history length direction predictor.

TAGE is the core of the LTAGE and TAGE-SC-L predictors evaluated in the
paper's SMT study (Table 2).  It combines a bimodal *base* predictor with a
set of *tagged* tables indexed by hashes of the PC and geometrically
increasing global-history lengths.  The longest-history table whose tag
matches provides the prediction; a ``USE_ALT_ON_NA`` counter arbitrates
between the provider and the alternate prediction when the provider entry is
not confident.

Every tagged entry (tag, prediction counter, useful counter) is packed into a
single word of a :class:`repro.predictors.table.PredictorTable`, so content
encoding covers the whole entry and index encoding covers the table index —
exactly the attachment points shown for the TAGE tables in Figure 6(b).

Hot-path layout
---------------

The batched simulation kernel (:meth:`TagePredictor.execute`) works on flat
packed state rather than per-table objects:

* all tagged-table entries live in **one flat storage list** with a
  precomputed per-table stride (the :class:`PredictorTable` views share the
  list, so the scalar protocol, attacks and flush machinery see the same
  bits);
* the per-thread folded global histories (one index-width and two tag-width
  circular shift registers per tagged table) are packed **lane-wise into
  three machine integers** and updated SWAR-style: one shift/XOR sequence per
  register file instead of one per (table, register), with the per-table
  "oldest history bit" gather replaced by a precomputed 2^n_tables-entry map;
* XOR-family isolation (XOR-BP / Noisy-XOR-BP) is **fused into the kernel**:
  per-(thread, table) encode/decode masks are precomputed at switch time and
  applied inline, so the encoded presets take the same monomorphic loop as
  the baseline (which pays no mask work at all);
* the kernel itself is **generated and compiled per isolation arm** (see
  :meth:`TagePredictor._kernel_source`): the tagged-table loop is unrolled
  with all geometry constants inlined as literals and the thread's packed
  state and masks bound in the function's globals, so a branch pays no
  attribute loads, constant-tuple unpacking or mask lookups.  The batched
  engines fetch the kernel via :meth:`TagePredictor.exec_kernel` and
  re-fetch it after every switch notification.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence

from .base import DirectionPrediction, DirectionPredictor, PredictorStats
from .bimodal import BimodalPredictor
from .counters import counter_is_taken, saturating_update
from .history import GlobalHistory, PathHistory
from .table import PredictorTable, TableIsolation, supports_fused_xor

__all__ = ["TageConfig", "TagePredictor", "geometric_history_lengths"]

#: Largest table count for which the oldest-bit gather map is materialised
#: (2^n entries); beyond it the push loop gathers bits one table at a time.
_MAX_GATHER_TABLES = 12


def geometric_history_lengths(n_tables: int, min_length: int, max_length: int) -> List[int]:
    """Return ``n_tables`` geometrically spaced history lengths.

    The classic TAGE formulation spaces history lengths as
    ``L(i) = min * (max/min)^((i-1)/(n-1))``, rounded to integers.
    """
    if n_tables == 1:
        return [min_length]
    ratio = (max_length / min_length) ** (1.0 / (n_tables - 1))
    lengths = []
    for i in range(n_tables):
        lengths.append(int(round(min_length * (ratio ** i))))
    # Enforce strict monotonicity after rounding.
    for i in range(1, n_tables):
        if lengths[i] <= lengths[i - 1]:
            lengths[i] = lengths[i - 1] + 1
    return lengths


@dataclass
class TageConfig:
    """Sizing of a TAGE predictor.

    The defaults follow the paper's FPGA-prototype TAGE (Table 2): six tagged
    tables of 4096 entries with history lengths 12...130.
    """

    n_tables: int = 6
    table_entries: int = 4096
    tag_bits: int = 11
    counter_bits: int = 3
    useful_bits: int = 2
    min_history: int = 12
    max_history: int = 130
    base_entries: int = 8192
    use_alt_bits: int = 4
    useful_reset_period: int = 1 << 18

    def history_lengths(self) -> List[int]:
        """Geometric history lengths for the tagged tables."""
        return geometric_history_lengths(self.n_tables, self.min_history,
                                          self.max_history)


class _DeterministicLfsr:
    """Tiny deterministic pseudo-random source for TAGE allocation decisions.

    Real TAGE implementations use an LFSR to break allocation ties; using a
    deterministic one keeps simulations reproducible.
    """

    def __init__(self, seed: int = 0xACE1) -> None:
        self._state = seed & 0xFFFF or 0xACE1

    def next_bits(self, bits: int = 2) -> int:
        value = 0
        for _ in range(bits):
            lsb = self._state & 1
            self._state >>= 1
            if lsb:
                self._state ^= 0xB400
            value = (value << 1) | lsb
        return value


class _FoldedSwar:
    """SWAR constants of one packed folded-history register file.

    Each of the ``n_tables`` folded circular-shift registers of width
    ``width`` occupies one ``width + 1``-bit lane (the extra bit buffers the
    shift-out before the fold) of a single integer.  One shift, one XOR with
    the gathered oldest-bit insert mask, one guard fold and one mask update
    all lanes at once.
    """

    __slots__ = ("width", "lane_offsets", "new_mask", "lane_mask",
                 "guard_mask", "insert_masks")

    def __init__(self, width: int, n_tables: int, inserts: Sequence[int]) -> None:
        pitch = width + 1
        self.width = width
        self.lane_offsets = [t * pitch for t in range(n_tables)]
        self.new_mask = sum(1 << off for off in self.lane_offsets)
        self.lane_mask = sum(((1 << width) - 1) << off
                             for off in self.lane_offsets)
        self.guard_mask = sum(1 << (off + width) for off in self.lane_offsets)
        self.insert_masks = [1 << (self.lane_offsets[t] + inserts[t])
                             for t in range(n_tables)]


class TagePredictor(DirectionPredictor):
    """TAGE direction predictor with pluggable isolation.

    Args:
        config: table sizing; defaults to :class:`TageConfig`.
        isolation: isolation policy applied to the base and tagged tables.
        word_bits: physical word width used for the base PHT packing.
    """

    name = "tage"

    def __init__(self, config: Optional[TageConfig] = None, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self.config = config if config is not None else TageConfig()
        cfg = self.config
        self._base = BimodalPredictor(cfg.base_entries, 2, isolation=isolation,
                                      word_bits=word_bits)
        self._history_lengths = cfg.history_lengths()
        self._entry_bits = cfg.tag_bits + cfg.counter_bits + cfg.useful_bits
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._ctr_mask = (1 << cfg.counter_bits) - 1
        self._u_mask = (1 << cfg.useful_bits) - 1
        self._ctr_weak_taken = 1 << (cfg.counter_bits - 1)
        self._index_bits = cfg.table_entries.bit_length() - 1
        # All tagged entries live in one flat packed buffer; each table is a
        # view over its stride so the whole-table API (flush, raw access,
        # isolation dispatch) keeps working while the fused kernel walks the
        # single list.
        self._flat: List[int] = [0] * (cfg.n_tables * cfg.table_entries)
        self._tables: List[PredictorTable] = [
            PredictorTable(cfg.table_entries, self._entry_bits, reset_value=0,
                           name=f"tage_t{i}", isolation=isolation,
                           storage=self._flat,
                           storage_offset=i * cfg.table_entries)
            for i in range(cfg.n_tables)]
        self._ghr = GlobalHistory(max(cfg.max_history, max(self._history_lengths)) + 1)
        self._path = PathHistory(32)

        # -- folded-history SWAR register files -------------------------------
        index_bits = self._index_bits
        tag_bits = cfg.tag_bits
        tag1_bits = tag_bits - 1
        n = cfg.n_tables
        lengths = self._history_lengths
        self._swar_i = _FoldedSwar(index_bits, n,
                                   [length % index_bits for length in lengths])
        self._swar_t0 = _FoldedSwar(tag_bits, n,
                                    [length % tag_bits for length in lengths])
        self._swar_t1 = _FoldedSwar(tag1_bits, n,
                                    [length % tag1_bits for length in lengths])
        old_shifts = [length - 1 for length in lengths]
        self._old_shifts = old_shifts
        self._old_mask = sum(1 << shift for shift in old_shifts)
        # Oldest-bit gather: the n GHR bits about to leave each table's
        # history window, mapped straight to the three lane-wise insert
        # masks.  2^n entries — one dict hit replaces an n-iteration loop.
        if n <= _MAX_GATHER_TABLES:
            gather: Dict[int, tuple] = {}
            for combo in product((0, 1), repeat=n):
                key = sum(bit << old_shifts[t] for t, bit in enumerate(combo))
                gather[key] = (
                    sum(self._swar_i.insert_masks[t]
                        for t, bit in enumerate(combo) if bit),
                    sum(self._swar_t0.insert_masks[t]
                        for t, bit in enumerate(combo) if bit),
                    sum(self._swar_t1.insert_masks[t]
                        for t, bit in enumerate(combo) if bit))
            self._old_gather: Optional[Dict[int, tuple]] = gather
        else:
            self._old_gather = None
        self._new_masks = ((0, 0, 0), (self._swar_i.new_mask,
                                       self._swar_t0.new_mask,
                                       self._swar_t1.new_mask))
        # Incrementally folded global histories, per hardware thread: a
        # three-element list [packed_index, packed_tag0, packed_tag1].
        self._folded_state: Dict[int, list] = {}

        # -- fused-kernel constants -------------------------------------------
        # The base component is always a BimodalPredictor; the fused execute
        # path reads/trains its PHT directly to skip prediction-object
        # allocation (flushes reset the storage list in place, so caching
        # both the table and its storage list is safe).
        self._base_pht = self._base.pht
        self._base_index_mask = cfg.base_entries - 1
        self._base_counter_bits = 2
        self._base_threshold = 1 << (self._base_counter_bits - 1)
        self._base_words = self._base_pht.word_table
        self._base_cpw = self._base_pht.counters_per_word
        self._use_alt = (1 << (cfg.use_alt_bits - 1))  # neutral
        self._use_alt_max = (1 << cfg.use_alt_bits) - 1
        self._lfsr = _DeterministicLfsr()
        self._update_count = 0
        # Per-thread kernel bundles: the per-table constant tuples (with the
        # thread's fused isolation masks baked in) plus the base-PHT masks.
        # ``False`` marks a thread whose isolation policy cannot be fused
        # (owner tracking, non-XOR encoders) — those take the generic path.
        self._kernel_masks: Dict[int, object] = {}
        self._zero_row_keys = [0] * cfg.table_entries
        self._zero_base_row_keys = [0] * self._base_words.n_entries
        # Per-thread specialised kernels (generated functions, see
        # ``_build_exec_fn``) and the compiled kernel code objects, keyed by
        # isolation arm.  The kernels close over per-thread masks and state,
        # so they register as a second mask cache: key re-randomisation
        # drops them and the switch-time refresh rebuilds them eagerly.
        self._exec_fns: Dict[int, object] = {}
        self._kernel_code: Dict[tuple, object] = {}
        attached = self._tables[0].isolation
        if supports_fused_xor(attached):
            attached.register_fast_mask_cache(self, self._kernel_masks,
                                              self._build_kernel_masks)
            self._exec_token = object()
            attached.register_fast_mask_cache(self._exec_token,
                                              self._exec_fns,
                                              self._build_exec_fn)
        # Per-call constants of the generic fused-execute path (non-fusable
        # isolation policies), packed into one tuple so that path pays a
        # single attribute load instead of ~25.  Every member is immutable
        # or never rebound after construction.
        self._exec_bundle = (
            cfg.n_tables, cfg.useful_bits + cfg.counter_bits,
            self._ctr_mask, self._u_mask, self._tag_mask, self._ctr_weak_taken,
            1 << (cfg.counter_bits - 1), 1 << (cfg.use_alt_bits - 1),
            cfg.useful_bits,
            self._base_index_mask, self._base_cpw, self._base_threshold,
            index_bits, (1 << index_bits) - 1, self._path, self._ghr,
            cfg.useful_reset_period, (1 << tag1_bits) - 1,
            self._old_mask, self._old_gather, self._new_masks,
            self._swar_i.guard_mask, self._swar_i.lane_mask,
            self._swar_t0.guard_mask, self._swar_t0.lane_mask, tag_bits,
            self._swar_t1.guard_mask, self._swar_t1.lane_mask, tag1_bits)

    # -- entry packing --------------------------------------------------------
    def _pack(self, tag: int, ctr: int, useful: int) -> int:
        cfg = self.config
        return ((tag & self._tag_mask) << (cfg.counter_bits + cfg.useful_bits)
                | (ctr & self._ctr_mask) << cfg.useful_bits
                | (useful & self._u_mask))

    def _unpack(self, word: int) -> tuple:
        cfg = self.config
        useful = word & self._u_mask
        ctr = (word >> cfg.useful_bits) & self._ctr_mask
        tag = (word >> (cfg.useful_bits + cfg.counter_bits)) & self._tag_mask
        return tag, ctr, useful

    # -- fused-kernel mask bundles --------------------------------------------
    def _build_kernel_masks(self, thread_id: int):
        """(Re)build the per-thread kernel constants for one hardware thread.

        Passthrough policies (baseline / flush) get all-zero masks; plain-XOR
        policies get the thread's fused index/content keys (pulled from the
        tables' own mask caches, so both dispatch layers agree bit for bit);
        anything else is marked non-fusable and served by the generic path.

        The result is cached per thread; XOR policies invalidate it on every
        key re-randomisation and it rebuilds on the next access.  Tests that
        force storage fast-path flags off must clear ``_kernel_masks``
        afterwards (``invalidate_kernel_masks``).
        """
        tables = self._tables
        base_words = self._base_words
        n = self.config.n_tables
        swar_i = self._swar_i.lane_offsets
        swar_t0 = self._swar_t0.lane_offsets
        swar_t1 = self._swar_t1.lane_offsets
        entries = self.config.table_entries
        if all(t._fast for t in tables) and base_words._fast:
            # Passthrough: the specialised loop needs no key fields at all.
            consts = tuple(
                (t, t * entries, t * 0x1F, swar_i[t], t & 3,
                 swar_t0[t], swar_t1[t])
                for t in range(n))
            bundle = (False, consts, 0, 0, self._zero_base_row_keys)
        elif all(t._xor_fast for t in tables) and base_words._xor_fast:
            per_table = []
            for t in range(n):
                table = tables[t]
                masks = table._xor_masks.get(thread_id)
                if masks is None:
                    masks = table._build_xor_masks(thread_id)
                index_key, content_key, row_keys = masks
                # The index hash constant t*0x1F and the thread's index key
                # are both XORed into the index, so they fuse into one mask.
                per_table.append((t, t * entries, (t * 0x1F) ^ index_key,
                                  content_key, row_keys,
                                  swar_i[t], t & 3, swar_t0[t], swar_t1[t]))
            base_masks = base_words._xor_masks.get(thread_id)
            if base_masks is None:
                base_masks = base_words._build_xor_masks(thread_id)
            bundle = (True, tuple(per_table), base_masks[0], base_masks[1],
                      base_masks[2])
        else:
            bundle = False
        self._kernel_masks[thread_id] = bundle
        return bundle

    def invalidate_kernel_masks(self) -> None:
        """Drop every cached kernel bundle (tests / manual flag flips)."""
        self._kernel_masks.clear()
        self._exec_fns.clear()

    # -- folded-history maintenance --------------------------------------------
    def _folded_regs(self, thread_id: int) -> list:
        regs = self._folded_state.get(thread_id)
        if regs is None:
            regs = self._folded_state[thread_id] = [0, 0, 0]
        return regs

    def _gather_insert_masks(self, ghr_value: int) -> tuple:
        """Lane-wise insert masks of the oldest history bits (slow fallback)."""
        mask_i = mask_t0 = mask_t1 = 0
        for t, shift in enumerate(self._old_shifts):
            if (ghr_value >> shift) & 1:
                mask_i |= self._swar_i.insert_masks[t]
                mask_t0 |= self._swar_t0.insert_masks[t]
                mask_t1 |= self._swar_t1.insert_masks[t]
        return mask_i, mask_t0, mask_t1

    def _push_history(self, taken: bool, thread_id: int) -> None:
        """Shift the outcome into the GHR and all folded registers."""
        regs = self._folded_regs(thread_id)
        ghr_value = self._ghr.value(thread_id)
        gather = self._old_gather
        if gather is not None:
            mask_i, mask_t0, mask_t1 = gather[ghr_value & self._old_mask]
        else:
            mask_i, mask_t0, mask_t1 = self._gather_insert_masks(ghr_value)
        new_i, new_t0, new_t1 = self._new_masks[1 if taken else 0]
        swar = self._swar_i
        packed = ((regs[0] << 1) | new_i) ^ mask_i
        packed ^= (packed & swar.guard_mask) >> swar.width
        regs[0] = packed & swar.lane_mask
        swar = self._swar_t0
        packed = ((regs[1] << 1) | new_t0) ^ mask_t0
        packed ^= (packed & swar.guard_mask) >> swar.width
        regs[1] = packed & swar.lane_mask
        swar = self._swar_t1
        packed = ((regs[2] << 1) | new_t1) ^ mask_t1
        packed ^= (packed & swar.guard_mask) >> swar.width
        regs[2] = packed & swar.lane_mask
        self._ghr.push(taken, thread_id)

    # -- index / tag hashing --------------------------------------------------
    def _table_index(self, pc: int, table: int, thread_id: int) -> int:
        regs = self._folded_regs(thread_id)
        history = (regs[0] >> self._swar_i.lane_offsets[table]) \
            & ((1 << self._index_bits) - 1)
        path = self._path.folded(self._index_bits, thread_id)
        pc_bits = (pc >> 2) ^ (pc >> (2 + self._index_bits))
        return (pc_bits ^ history ^ (path >> (table & 3)) ^ (table * 0x1F)) \
            & ((1 << self._index_bits) - 1)

    def _table_tag(self, pc: int, table: int, thread_id: int) -> int:
        regs = self._folded_regs(thread_id)
        tag0 = (regs[1] >> self._swar_t0.lane_offsets[table]) & self._tag_mask
        tag1 = (regs[2] >> self._swar_t1.lane_offsets[table]) \
            & ((1 << (self.config.tag_bits - 1)) - 1)
        return ((pc >> 2) ^ tag0 ^ (tag1 << 1)) & self._tag_mask

    # -- prediction protocol --------------------------------------------------
    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        cfg = self.config
        base_pred = self._base.lookup(pc, thread_id)
        provider = -1
        alt = -1
        provider_info = None
        alt_info = None
        indices = []
        tags = []
        for table in range(cfg.n_tables):
            index = self._table_index(pc, table, thread_id)
            tag = self._table_tag(pc, table, thread_id)
            indices.append(index)
            tags.append(tag)
            word = self._tables[table].read(index, thread_id)
            stored_tag, ctr, useful = self._unpack(word)
            if stored_tag == tag and word != 0:
                alt, alt_info = provider, provider_info
                provider, provider_info = table, (index, tag, ctr, useful)
        provider_taken = None
        alt_taken = base_pred.taken
        if alt >= 0 and alt_info is not None:
            alt_taken = counter_is_taken(alt_info[2], cfg.counter_bits)
        if provider >= 0 and provider_info is not None:
            provider_taken = counter_is_taken(provider_info[2], cfg.counter_bits)
            weak = provider_info[2] in (self._ctr_weak_taken, self._ctr_weak_taken - 1)
            newly_allocated = weak and provider_info[3] == 0
            use_alt = newly_allocated and self._use_alt >= (1 << (cfg.use_alt_bits - 1))
            taken = alt_taken if use_alt else provider_taken
        else:
            use_alt = False
            taken = base_pred.taken
        return DirectionPrediction(taken=taken, meta={
            "base": base_pred,
            "provider": provider,
            "alt": alt,
            "provider_taken": provider_taken,
            "alt_taken": alt_taken,
            "use_alt": use_alt,
            "indices": indices,
            "tags": tags,
        })

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        cfg = self.config
        if prediction is None or "indices" not in prediction.meta:
            prediction = self.lookup(pc, thread_id)
        meta = prediction.meta
        provider = meta["provider"]
        indices: Sequence[int] = meta["indices"]
        tags: Sequence[int] = meta["tags"]
        mispredicted = prediction.taken != taken

        self._update_count += 1
        if self._update_count % cfg.useful_reset_period == 0:
            self._graceful_useful_reset(thread_id)

        if provider >= 0:
            index = indices[provider]
            word = self._tables[provider].read(index, thread_id)
            stored_tag, ctr, useful = self._unpack(word)
            provider_taken = counter_is_taken(ctr, cfg.counter_bits)
            alt_taken = meta["alt_taken"]
            # Train USE_ALT_ON_NA when the provider entry was newly allocated.
            if meta["use_alt"] or (useful == 0 and ctr in (self._ctr_weak_taken,
                                                           self._ctr_weak_taken - 1)):
                if provider_taken != alt_taken:
                    if alt_taken == taken:
                        self._use_alt = min(self._use_alt + 1, self._use_alt_max)
                    else:
                        self._use_alt = max(self._use_alt - 1, 0)
            new_ctr = saturating_update(ctr, taken, cfg.counter_bits)
            new_useful = useful
            if provider_taken != alt_taken:
                if provider_taken == taken:
                    new_useful = min(useful + 1, self._u_mask)
                else:
                    new_useful = max(useful - 1, 0)
            self._tables[provider].write(index, self._pack(stored_tag, new_ctr,
                                                           new_useful), thread_id)
        else:
            self._base.update(pc, taken, meta["base"], thread_id)

        # Also train the base predictor when it provided the alternate.
        if provider >= 0 and meta["alt"] < 0:
            self._base.update(pc, taken, meta["base"], thread_id)

        # Allocation on misprediction: try to allocate one entry in a table
        # with a longer history than the provider.
        if mispredicted and provider < cfg.n_tables - 1:
            self._allocate(pc, taken, provider, indices, tags, thread_id)

        self._push_history(taken, thread_id)
        self._path.push(pc, thread_id)

    def execute(self, pc: int, taken: bool, thread_id: int = 0) -> bool:
        """Fused lookup + stats + update for the simulation hot path.

        Dispatches to the thread's specialised kernel (see
        :meth:`exec_kernel`).  State evolution and statistics are identical
        to the ``lookup`` / ``stats().record`` / ``update`` sequence the
        scalar engine performs, for every isolation policy.
        """
        fn = self._exec_fns.get(thread_id)
        if fn is None:
            fn = self._build_exec_fn(thread_id)
        return fn(pc, taken)

    def exec_kernel(self, thread_id: int = 0):
        """Return the thread's specialised execute kernel ``fn(pc, taken)``.

        The kernel is a generated function: the tagged-table loop is
        unrolled with the geometry constants inlined as literals, and the
        thread's packed folded-history registers, statistics object and
        fused isolation masks are bound in its globals.  A branch therefore
        pays no per-call attribute loads, constant-tuple unpacking or mask
        lookups — all of that happens once, here.

        The kernel is dropped (and must be re-fetched by callers) whenever
        the bound state changes identity: key re-randomisation (via the
        isolation mask-cache protocol), ``flush``/``flush_thread``,
        ``reset_stats`` and ``invalidate_kernel_masks``.  The batched
        engines re-fetch it after every switch notification.  The callable
        also accepts (and ignores) a trailing ``thread_id`` argument so
        engines can drive specialised and generic predictors through one
        call shape.
        """
        fn = self._exec_fns.get(thread_id)
        if fn is None:
            fn = self._build_exec_fn(thread_id)
        return fn

    def _build_exec_fn(self, thread_id: int):
        """Build, cache and return one thread's specialised kernel."""
        bundle = self._kernel_masks.get(thread_id)
        if bundle is None:
            bundle = self._build_kernel_masks(thread_id)
        if bundle is False:
            # Non-fusable isolation (owner tracking / non-XOR encoders).
            generic = self._execute_generic

            def fn(pc, taken, thread_id=thread_id, _generic=generic):
                return _generic(pc, taken, thread_id)
        else:
            encoded = bundle[0]
            diversified = encoded and bool(
                getattr(self._tables[0].isolation, "_row_diversified", False))
            key = (encoded, diversified)
            code = self._kernel_code.get(key)
            if code is None:
                source = self._kernel_source(encoded, diversified)
                code = compile(source, f"<tage-kernel {key}>", "exec")
                self._kernel_code[key] = code
            namespace = self._kernel_namespace(thread_id, bundle)
            exec(code, namespace)
            fn = namespace["_kernel"]
        # Which specialisation this kernel runs (benchmarks and tests assert
        # the intended arm is active instead of a silent generic fallback).
        fn.arm = ("generic" if bundle is False
                  else "fused-xor" if bundle[0] else "passthrough")
        self._exec_fns[thread_id] = fn
        return fn

    def _kernel_namespace(self, thread_id: int, bundle) -> dict:
        """Globals of one generated kernel: bound state + per-thread masks.

        Every bound object is identity-stable across branches (storage lists
        are reset in place, the history dicts are cleared in place); events
        that do change identities — flushes, key rotation, stats resets —
        invalidate the kernel itself.
        """
        namespace = {
            "flat": self._flat,
            "base_data": self._base_words._data,
            "path_values": self._path._values,
            "ghr_values": self._ghr._values,
            "regs": self._folded_regs(thread_id),
            "pstats": self.stats(thread_id),
            "predictor": self,
            "TID": thread_id,
        }
        if self._old_gather is not None:
            namespace["old_gather"] = self._old_gather
        else:
            namespace["gather"] = self._gather_insert_masks
        if bundle[0]:
            _, consts, base_index_key, base_content_key, base_row_keys = bundle
            for entry in consts:
                t, _toff, mkey, ckey, row_keys = entry[:5]
                namespace[f"MK{t}"] = mkey
                namespace[f"CK{t}"] = ckey
                namespace[f"RK{t}"] = row_keys
                # Index key alone (hash constant stripped): maps a physical
                # row back to its logical index on the cold reset-reread path.
                namespace[f"IK{t}"] = mkey ^ (t * 0x1F)
            namespace["BIK"] = base_index_key
            namespace["BCK"] = base_content_key
            namespace["BRK"] = base_row_keys
        return namespace

    def _kernel_source(self, encoded: bool, diversified: bool) -> str:
        """Generate the source of one specialised kernel arm.

        Two arms exist: the *passthrough* arm (baseline / flush presets) and
        the *fused-XOR* arm (XOR-BP / Noisy-XOR-BP), which differs only in
        the mask XORs folded into the index/content math.  Geometry
        (strides, lane offsets, masks, hash constants) is inlined as
        literals; per-thread mask values are globals so key rotation swaps
        namespace entries instead of recompiling.  Statement order mirrors
        :meth:`_execute_generic` exactly — the parity suite holds the
        generated kernels, the generic path and the scalar engine
        bit-identical.
        """
        cfg = self.config
        n = cfg.n_tables
        ibits = self._index_bits
        imask = (1 << ibits) - 1
        tmask = self._tag_mask
        t1bits = cfg.tag_bits - 1
        t1mask = (1 << t1bits) - 1
        ubits = cfg.useful_bits
        cmask = self._ctr_mask
        umask = self._u_mask
        ctr_shift = ubits + cfg.counter_bits
        weak = self._ctr_weak_taken
        thresh = 1 << (cfg.counter_bits - 1)
        entries = cfg.table_entries
        lanes_i = self._swar_i.lane_offsets
        lanes_t0 = self._swar_t0.lane_offsets
        lanes_t1 = self._swar_t1.lane_offsets
        boff = self._base_words._offset
        cpw = self._base_cpw
        cbits = self._base_counter_bits
        bcmask = (1 << cbits) - 1
        new_i, new_t0, new_t1 = self._new_masks[1]

        def hist_term(t: int) -> str:
            lane = lanes_i[t]
            return (f"((packed_i >> {lane}) & {imask})" if lane
                    else f"(packed_i & {imask})")

        def path_term(t: int) -> str:
            shift = t & 3
            return f"(path >> {shift})" if shift else "path"

        def tag_term(t: int) -> str:
            lane0 = lanes_t0[t]
            lane1 = lanes_t1[t]
            fold0 = (f"((packed_t0 >> {lane0}) & {tmask})" if lane0
                     else f"(packed_t0 & {tmask})")
            fold1 = (f"((packed_t1 >> {lane1}) & {t1mask})" if lane1
                     else f"(packed_t1 & {t1mask})")
            return f"(pc2 ^ {fold0} ^ ({fold1} << 1)) & {tmask}"

        lines = []
        emit = lines.append
        emit("def _kernel(pc, taken, thread_id=0):")
        # -- lookup ----------------------------------------------------------
        emit("    packed_i = regs[0]")
        emit("    packed_t0 = regs[1]")
        emit("    packed_t1 = regs[2]")
        emit("    path_value = path_values.get(TID, 0)")
        emit(f"    path = path_value & {imask}")
        emit(f"    remaining = path_value >> {ibits}")
        emit("    while remaining:")
        emit(f"        path ^= remaining & {imask}")
        emit(f"        remaining >>= {ibits}")
        emit(f"    pc_bits = (pc >> 2) ^ (pc >> {ibits + 2})")
        emit("    pc2 = pc >> 2")
        emit("    provider = -1")
        emit("    alt = -1")
        emit("    provider_ctr = 0")
        for t in range(n):
            toff = t * entries
            key = f"MK{t}" if encoded else (str(t * 0x1F) if t else "")
            key_xor = f" ^ {key}" if key else ""
            emit(f"    row = (pc_bits ^ {hist_term(t)} ^ {path_term(t)}"
                 f"{key_xor}) & {imask}")
            cell = f"flat[{toff} + row]" if toff else "flat[row]"
            if encoded:
                decode = f" ^ CK{t}" + (f" ^ RK{t}[row]" if diversified else "")
                emit(f"    word = {cell}{decode}")
            else:
                emit(f"    word = {cell}")
            emit("    if word:")
            emit(f"        tag = {tag_term(t)}")
            emit(f"        if ((word >> {ctr_shift}) & {tmask}) == tag:")
            emit("            alt = provider")
            emit("            alt_ctr = provider_ctr")
            emit(f"            provider = {t}")
            emit("            provider_row = row")
            emit("            provider_tag = tag")
            emit(f"            provider_ctr = (word >> {ubits}) & {cmask}")
            emit(f"            provider_useful = word & {umask}")
            emit(f"            provider_base = {toff}")
            if encoded:
                emit(f"            provider_ck = CK{t}")
                if diversified:
                    emit(f"            provider_rk = RK{t}")
                emit(f"            provider_ik = IK{t}")
        # Inlined bimodal base lookup (reads are side-effect free; the
        # decoded word is reused by the base update below).
        emit(f"    base_index = pc2 & {self._base_index_mask}")
        if cpw & (cpw - 1) == 0:
            rshift = cpw.bit_length() - 1
            row_expr = f"(base_index >> {rshift})" if rshift else "base_index"
            emit(f"    base_shift = (base_index & {cpw - 1}) * {cbits}")
        else:
            row_expr = f"(base_index // {cpw})"
            emit(f"    base_shift = (base_index % {cpw}) * {cbits}")
        if encoded:
            emit(f"    base_row = ({row_expr} ^ BIK)"
                 f" & {self._base_words._index_mask}")
        else:
            emit(f"    base_row = {row_expr}")
        base_cell = (f"base_data[{boff} + base_row]" if boff
                     else "base_data[base_row]")
        base_decode = ""
        if encoded:
            base_decode = " ^ BCK" + (" ^ BRK[base_row]" if diversified else "")
        emit(f"    base_word = {base_cell}{base_decode}")
        emit(f"    base_counter = (base_word >> base_shift) & {bcmask}")
        emit(f"    base_taken = base_counter >= {self._base_threshold}")
        emit(f"    alt_taken = (alt_ctr >= {thresh}) if alt >= 0 else base_taken")
        emit("    if provider >= 0:")
        emit(f"        provider_taken = provider_ctr >= {thresh}")
        emit("        use_alt = (provider_useful == 0")
        emit(f"                   and {weak - 1} <= provider_ctr <= {weak}")
        emit(f"                   and predictor._use_alt >= "
             f"{1 << (cfg.use_alt_bits - 1)})")
        emit("        predicted = alt_taken if use_alt else provider_taken")
        emit("    else:")
        emit("        use_alt = False")
        emit("        predicted = base_taken")
        # -- stats (recorded between lookup and update, as in the BPU) -------
        emit("    pstats.lookups += 1")
        emit("    mispredicted = predicted != taken")
        emit("    if mispredicted:")
        emit("        pstats.mispredictions += 1")
        # -- update ----------------------------------------------------------
        emit("    count = predictor._update_count + 1")
        emit("    predictor._update_count = count")
        emit(f"    reset_fired = count % {cfg.useful_reset_period} == 0")
        emit("    if reset_fired:")
        emit("        predictor._graceful_useful_reset(TID)")
        emit("    if provider >= 0:")
        emit("        ctr = provider_ctr")
        emit("        useful = provider_useful")
        emit("        if reset_fired:")
        if encoded:
            emit("            word = predictor._tables[provider].read("
                 f"(provider_row ^ provider_ik) & {imask}, TID)")
        else:
            emit("            word = predictor._tables[provider].read("
                 "provider_row, TID)")
        emit(f"            ctr = (word >> {ubits}) & {cmask}")
        emit(f"            useful = word & {umask}")
        emit(f"        provider_taken = ctr >= {thresh}")
        emit(f"        if use_alt or (useful == 0 and {weak - 1} <= ctr <= {weak}):")
        emit("            if provider_taken != alt_taken:")
        emit("                if alt_taken == taken:")
        emit("                    ua = predictor._use_alt + 1")
        emit(f"                    if ua <= {self._use_alt_max}:")
        emit("                        predictor._use_alt = ua")
        emit("                else:")
        emit("                    ua = predictor._use_alt - 1")
        emit("                    if ua >= 0:")
        emit("                        predictor._use_alt = ua")
        emit("        if taken:")
        emit(f"            new_ctr = ctr + 1 if ctr < {cmask} else {cmask}")
        emit("        else:")
        emit("            new_ctr = ctr - 1 if ctr > 0 else 0")
        emit("        new_useful = useful")
        emit("        if provider_taken != alt_taken:")
        emit("            if provider_taken == taken:")
        emit(f"                new_useful = useful + 1 if useful < {umask}"
             f" else {umask}")
        emit("            else:")
        emit("                new_useful = useful - 1 if useful > 0 else 0")
        packed = (f"(provider_tag << {ctr_shift}) | (new_ctr << {ubits})"
                  " | new_useful")
        if encoded:
            encode = " ^ provider_ck" + (" ^ provider_rk[provider_row]"
                                         if diversified else "")
            emit(f"        flat[provider_base + provider_row] = ({packed}){encode}")
        else:
            emit(f"        flat[provider_base + provider_row] = {packed}")
        # Inlined bimodal base update: trains the base when it predicted (no
        # provider) or provided the alternate.
        emit("    if provider < 0 or alt < 0:")
        emit("        if taken:")
        emit(f"            new_base = base_counter + 1 if base_counter < {bcmask}"
             f" else {bcmask}")
        emit("        else:")
        emit("            new_base = base_counter - 1 if base_counter > 0 else 0")
        new_word = (f"((base_word & ~({bcmask} << base_shift))"
                    f" | (new_base << base_shift))"
                    f" & {self._base_words._value_mask}")
        if encoded:
            emit(f"        {base_cell} = ({new_word}){base_decode}")
        else:
            emit(f"        {base_cell} = {new_word}")
        # Allocation on misprediction: the logical index/tag hashes are only
        # needed on this (rare) path; the folded registers have not been
        # pushed yet, so the values equal the ones used by the lookup above.
        emit(f"    if mispredicted and provider < {n - 1}:")
        idx_items = ", ".join(
            f"(pc_bits ^ {hist_term(t)} ^ {path_term(t)}"
            + (f" ^ {t * 0x1F}" if t else "") + f") & {imask}"
            for t in range(n))
        tag_items = ", ".join(tag_term(t) for t in range(n))
        emit("        predictor._allocate(pc, taken, provider,")
        emit(f"                            [{idx_items}],")
        emit(f"                            [{tag_items}], TID)")
        # -- history push (SWAR over the three packed register files) --------
        emit("    ghr_value = ghr_values.get(TID, 0)")
        if self._old_gather is not None:
            emit("    mask_i, mask_t0, mask_t1 = "
                 f"old_gather[ghr_value & {self._old_mask}]")
        else:
            emit("    mask_i, mask_t0, mask_t1 = gather(ghr_value)")
        emit("    if taken:")
        emit(f"        packed_i = ((packed_i << 1) | {new_i}) ^ mask_i")
        emit(f"        packed_t0 = ((packed_t0 << 1) | {new_t0}) ^ mask_t0")
        emit(f"        packed_t1 = ((packed_t1 << 1) | {new_t1}) ^ mask_t1")
        emit(f"        ghr_values[TID] = ((ghr_value << 1) | 1)"
             f" & {self._ghr._mask}")
        emit("    else:")
        emit("        packed_i = (packed_i << 1) ^ mask_i")
        emit("        packed_t0 = (packed_t0 << 1) ^ mask_t0")
        emit("        packed_t1 = (packed_t1 << 1) ^ mask_t1")
        emit(f"        ghr_values[TID] = (ghr_value << 1) & {self._ghr._mask}")
        emit(f"    packed_i ^= (packed_i & {self._swar_i.guard_mask})"
             f" >> {ibits}")
        emit(f"    regs[0] = packed_i & {self._swar_i.lane_mask}")
        emit(f"    packed_t0 ^= (packed_t0 & {self._swar_t0.guard_mask})"
             f" >> {cfg.tag_bits}")
        emit(f"    regs[1] = packed_t0 & {self._swar_t0.lane_mask}")
        emit(f"    packed_t1 ^= (packed_t1 & {self._swar_t1.guard_mask})"
             f" >> {t1bits}")
        emit(f"    regs[2] = packed_t1 & {self._swar_t1.lane_mask}")
        pcb = self._path._pc_bits
        emit(f"    path_values[TID] = ((path_value << {pcb})"
             f" | (pc2 & {(1 << pcb) - 1})) & {self._path._mask}")
        emit("    return predicted")
        return "\n".join(lines) + "\n"

    def _execute_generic(self, pc: int, taken: bool, thread_id: int) -> bool:
        """Fused execute for non-fusable isolation policies.

        Structurally the same flow as :meth:`execute`, but every storage
        access goes through the table API so owner tracking (Precise Flush)
        and non-XOR encoders (S-box / shift-XOR ablations) keep their exact
        generic-dispatch semantics.
        """
        (n_tables, ctr_shift, ctr_mask, u_mask, tag_mask, weak_taken,
         taken_threshold, use_alt_threshold, useful_bits, base_index_mask,
         base_cpw, base_threshold, index_bits, index_mask, path_obj, ghr,
         useful_reset_period, tag1_mask, old_mask, old_gather, new_masks,
         guard_i, lanes_i, guard_t0, lanes_t0, tag_bits, guard_t1, lanes_t1,
         tag1_bits) = self._exec_bundle
        tables = self._tables
        base_words = self._base_words

        # -- lookup ----------------------------------------------------------
        base_index = (pc >> 2) & base_index_mask
        base_word_index = base_index // base_cpw
        base_shift = (base_index % base_cpw) * 2
        base_word = base_words.read(base_word_index, thread_id)
        base_counter = (base_word >> base_shift) & 3
        base_taken = base_counter >= base_threshold
        regs = self._folded_state.get(thread_id)
        if regs is None:
            regs = self._folded_state[thread_id] = [0, 0, 0]
        packed_i = regs[0]
        packed_t0 = regs[1]
        packed_t1 = regs[2]
        path_value = path_obj._values.get(thread_id, 0)
        path = path_value & index_mask
        remaining = path_value >> index_bits
        while remaining:
            path ^= remaining & index_mask
            remaining >>= index_bits
        pc_bits = (pc >> 2) ^ (pc >> (2 + index_bits))
        pc2 = pc >> 2
        lanes_off_i = self._swar_i.lane_offsets
        lanes_off_t0 = self._swar_t0.lane_offsets
        lanes_off_t1 = self._swar_t1.lane_offsets
        provider = -1
        alt = -1
        provider_index = provider_tag = provider_ctr = provider_useful = 0
        alt_ctr = 0
        for t in range(n_tables):
            index = (pc_bits ^ ((packed_i >> lanes_off_i[t]) & index_mask)
                     ^ (path >> (t & 3)) ^ (t * 0x1F)) & index_mask
            word = tables[t].read(index, thread_id)
            if word:
                tag = (pc2 ^ ((packed_t0 >> lanes_off_t0[t]) & tag_mask)
                       ^ (((packed_t1 >> lanes_off_t1[t]) & tag1_mask) << 1)) \
                    & tag_mask
                if ((word >> ctr_shift) & tag_mask) == tag:
                    alt = provider
                    alt_ctr = provider_ctr
                    provider = t
                    provider_index = index
                    provider_tag = tag
                    provider_ctr = (word >> useful_bits) & ctr_mask
                    provider_useful = word & u_mask
        alt_taken = (alt_ctr >= taken_threshold) if alt >= 0 else base_taken
        if provider >= 0:
            provider_taken = provider_ctr >= taken_threshold
            use_alt = (provider_useful == 0
                       and provider_ctr in (weak_taken, weak_taken - 1)
                       and self._use_alt >= use_alt_threshold)
            predicted = alt_taken if use_alt else provider_taken
        else:
            use_alt = False
            predicted = base_taken

        # -- stats -----------------------------------------------------------
        pstats = self._stats.get(thread_id)
        if pstats is None:
            pstats = self._stats[thread_id] = PredictorStats()
        pstats.lookups += 1
        if predicted != taken:
            pstats.mispredictions += 1

        # -- update ----------------------------------------------------------
        mispredicted = predicted != taken
        self._update_count += 1
        reset_fired = self._update_count % useful_reset_period == 0
        if reset_fired:
            self._graceful_useful_reset(thread_id)
        if provider >= 0:
            ctr, useful = provider_ctr, provider_useful
            if reset_fired:
                word = tables[provider].read(provider_index, thread_id)
                ctr = (word >> useful_bits) & ctr_mask
                useful = word & u_mask
            provider_taken = ctr >= taken_threshold
            if use_alt or (useful == 0 and ctr in (weak_taken, weak_taken - 1)):
                if provider_taken != alt_taken:
                    if alt_taken == taken:
                        self._use_alt = min(self._use_alt + 1, self._use_alt_max)
                    else:
                        self._use_alt = max(self._use_alt - 1, 0)
            if taken:
                new_ctr = ctr + 1 if ctr < ctr_mask else ctr_mask
            else:
                new_ctr = ctr - 1 if ctr > 0 else 0
            new_useful = useful
            if provider_taken != alt_taken:
                if provider_taken == taken:
                    new_useful = min(useful + 1, u_mask)
                else:
                    new_useful = max(useful - 1, 0)
            packed = ((provider_tag << ctr_shift)
                      | ((new_ctr & ctr_mask) << useful_bits)
                      | (new_useful & u_mask))
            tables[provider].write(provider_index, packed, thread_id)
        if provider < 0 or alt < 0:
            if taken:
                new_base = base_counter + 1 if base_counter < 3 else 3
            else:
                new_base = base_counter - 1 if base_counter > 0 else 0
            new_word = (base_word & ~(3 << base_shift)) | (new_base << base_shift)
            base_words.write(base_word_index, new_word, thread_id)
        if mispredicted and provider < n_tables - 1:
            indices = [(pc_bits ^ ((packed_i >> lanes_off_i[t]) & index_mask)
                        ^ (path >> (t & 3)) ^ (t * 0x1F)) & index_mask
                       for t in range(n_tables)]
            tags = [(pc2 ^ ((packed_t0 >> lanes_off_t0[t]) & tag_mask)
                     ^ (((packed_t1 >> lanes_off_t1[t]) & tag1_mask) << 1))
                    & tag_mask for t in range(n_tables)]
            self._allocate(pc, taken, provider, indices, tags, thread_id)

        # -- history push ----------------------------------------------------
        ghr_values = ghr._values
        ghr_value = ghr_values.get(thread_id, 0)
        if old_gather is not None:
            mask_i, mask_t0, mask_t1 = old_gather[ghr_value & old_mask]
        else:
            mask_i, mask_t0, mask_t1 = self._gather_insert_masks(ghr_value)
        new_bit = 1 if taken else 0
        new_i, new_t0, new_t1 = new_masks[new_bit]
        packed_i = ((packed_i << 1) | new_i) ^ mask_i
        packed_i ^= (packed_i & guard_i) >> index_bits
        regs[0] = packed_i & lanes_i
        packed_t0 = ((packed_t0 << 1) | new_t0) ^ mask_t0
        packed_t0 ^= (packed_t0 & guard_t0) >> tag_bits
        regs[1] = packed_t0 & lanes_t0
        packed_t1 = ((packed_t1 << 1) | new_t1) ^ mask_t1
        packed_t1 ^= (packed_t1 & guard_t1) >> tag1_bits
        regs[2] = packed_t1 & lanes_t1
        ghr_values[thread_id] = ((ghr_value << 1) | new_bit) & ghr._mask
        path_obj._values[thread_id] = \
            ((path_value << path_obj._pc_bits)
             | (pc2 & ((1 << path_obj._pc_bits) - 1))) & path_obj._mask
        return predicted

    def _allocate(self, pc: int, taken: bool, provider: int,
                  indices: Sequence[int], tags: Sequence[int],
                  thread_id: int) -> None:
        cfg = self.config
        start = provider + 1
        bundle = self._kernel_masks.get(thread_id)
        if bundle is None:
            bundle = self._build_kernel_masks(thread_id)
        if bundle is not False:
            self._allocate_packed(taken, start, indices, tags, bundle)
            return
        # Generic arm (owner tracking / non-XOR encoders): every candidate
        # read and write goes through the per-table isolation dispatch.
        candidates = []
        for table in range(start, cfg.n_tables):
            word = self._tables[table].read(indices[table], thread_id)
            _, _, useful = self._unpack(word)
            if useful == 0:
                candidates.append(table)
        if not candidates:
            # No free entry: age the useful counters of all longer tables.
            for table in range(start, cfg.n_tables):
                word = self._tables[table].read(indices[table], thread_id)
                tag, ctr, useful = self._unpack(word)
                if useful > 0:
                    self._tables[table].write(indices[table],
                                              self._pack(tag, ctr, useful - 1),
                                              thread_id)
            return
        # Prefer the shortest-history candidate, with a pseudo-random skip to
        # avoid ping-ponging (as in the reference TAGE implementation).
        choice = candidates[0]
        if len(candidates) > 1 and self._lfsr.next_bits(2) == 0:
            choice = candidates[1]
        ctr = self._ctr_weak_taken if taken else self._ctr_weak_taken - 1
        self._tables[choice].write(indices[choice],
                                   self._pack(tags[choice], ctr, 0), thread_id)

    def _allocate_packed(self, taken: bool, start: int,
                         indices: Sequence[int], tags: Sequence[int],
                         bundle) -> None:
        """Allocation on the flat packed buffer (passthrough / fused-XOR).

        Reads candidate entries straight from ``self._flat`` with the
        thread's precomputed kernel masks instead of the generic per-table
        accessors — bit-identical to the generic arm (the masks come from
        the same caches the table reads use), but without any dispatch on
        this ~10%-of-runtime path of high-mispredict encoded runs.
        """
        cfg = self.config
        n_tables = cfg.n_tables
        flat = self._flat
        index_mask = (1 << self._index_bits) - 1
        u_mask = self._u_mask
        consts = bundle[1]
        # Per candidate table: flat position and decode/encode key.
        positions = [0] * n_tables
        keys = [0] * n_tables
        if bundle[0]:
            for t in range(start, n_tables):
                entry = consts[t]
                # entry[2] fuses the t*0x1F hash constant with the thread's
                # index key; strip the constant to map logical index -> row.
                row = (indices[t] ^ entry[2] ^ (t * 0x1F)) & index_mask
                positions[t] = entry[1] + row
                keys[t] = entry[3] ^ entry[4][row]
        else:
            for t in range(start, n_tables):
                positions[t] = consts[t][1] + (indices[t] & index_mask)
        candidates = []
        for t in range(start, n_tables):
            if (flat[positions[t]] ^ keys[t]) & u_mask == 0:
                candidates.append(t)
        if not candidates:
            # No free entry: age the useful counters of all longer tables.
            # ``useful`` occupies the low bits, so the aged word is word - 1.
            for t in range(start, n_tables):
                word = flat[positions[t]] ^ keys[t]
                if word & u_mask:
                    flat[positions[t]] = (word - 1) ^ keys[t]
            return
        choice = candidates[0]
        if len(candidates) > 1 and self._lfsr.next_bits(2) == 0:
            choice = candidates[1]
        ctr = self._ctr_weak_taken if taken else self._ctr_weak_taken - 1
        flat[positions[choice]] = \
            self._pack(tags[choice], ctr, 0) ^ keys[choice]

    def _graceful_useful_reset(self, thread_id: int) -> None:
        """Periodically clear the low bit of every useful counter."""
        for table in self._tables:
            for row in range(table.n_entries):
                word = table.read(row, thread_id)
                tag, ctr, useful = self._unpack(word)
                if useful:
                    table.write(row, self._pack(tag, ctr, useful >> 1), thread_id)

    # -- structure access -----------------------------------------------------
    def tables(self) -> List[PredictorTable]:
        return self._base.tables() + list(self._tables)

    @property
    def tagged_tables(self) -> List[PredictorTable]:
        """The tagged component tables."""
        return list(self._tables)

    @property
    def base_predictor(self) -> BimodalPredictor:
        """The bimodal base component."""
        return self._base

    @property
    def global_history(self) -> GlobalHistory:
        """The per-thread global history register."""
        return self._ghr

    @property
    def history_lengths(self) -> List[int]:
        """Geometric history lengths of the tagged tables."""
        return list(self._history_lengths)

    def flush(self) -> None:
        self._base.flush()
        for table in self._tables:
            table.flush()
        self._ghr.clear()
        self._path.clear()
        self._folded_state.clear()
        # The specialised kernels bind the (now dropped) folded registers.
        self._exec_fns.clear()

    def flush_thread(self, thread_id: int) -> None:
        self._base.flush_thread(thread_id)
        for table in self._tables:
            table.flush_thread(thread_id)
        self._ghr.clear(thread_id)
        self._path.clear(thread_id)
        self._folded_state.pop(thread_id, None)
        self._exec_fns.pop(thread_id, None)

    def reset_stats(self) -> None:
        super().reset_stats()
        # The specialised kernels bind the (now replaced) stats objects.
        self._exec_fns.clear()
