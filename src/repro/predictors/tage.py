"""TAGE: TAgged GEometric history length direction predictor.

TAGE is the core of the LTAGE and TAGE-SC-L predictors evaluated in the
paper's SMT study (Table 2).  It combines a bimodal *base* predictor with a
set of *tagged* tables indexed by hashes of the PC and geometrically
increasing global-history lengths.  The longest-history table whose tag
matches provides the prediction; a ``USE_ALT_ON_NA`` counter arbitrates
between the provider and the alternate prediction when the provider entry is
not confident.

Every tagged entry (tag, prediction counter, useful counter) is packed into a
single word of a :class:`repro.predictors.table.PredictorTable`, so content
encoding covers the whole entry and index encoding covers the table index —
exactly the attachment points shown for the TAGE tables in Figure 6(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .base import DirectionPrediction, DirectionPredictor, PredictorStats
from .bimodal import BimodalPredictor
from .counters import counter_is_taken, saturating_update
from .history import GlobalHistory, PathHistory
from .table import PredictorTable, TableIsolation

__all__ = ["TageConfig", "TagePredictor", "geometric_history_lengths"]


def geometric_history_lengths(n_tables: int, min_length: int, max_length: int) -> List[int]:
    """Return ``n_tables`` geometrically spaced history lengths.

    The classic TAGE formulation spaces history lengths as
    ``L(i) = min * (max/min)^((i-1)/(n-1))``, rounded to integers.
    """
    if n_tables == 1:
        return [min_length]
    ratio = (max_length / min_length) ** (1.0 / (n_tables - 1))
    lengths = []
    for i in range(n_tables):
        lengths.append(int(round(min_length * (ratio ** i))))
    # Enforce strict monotonicity after rounding.
    for i in range(1, n_tables):
        if lengths[i] <= lengths[i - 1]:
            lengths[i] = lengths[i - 1] + 1
    return lengths


@dataclass
class TageConfig:
    """Sizing of a TAGE predictor.

    The defaults follow the paper's FPGA-prototype TAGE (Table 2): six tagged
    tables of 4096 entries with history lengths 12...130.
    """

    n_tables: int = 6
    table_entries: int = 4096
    tag_bits: int = 11
    counter_bits: int = 3
    useful_bits: int = 2
    min_history: int = 12
    max_history: int = 130
    base_entries: int = 8192
    use_alt_bits: int = 4
    useful_reset_period: int = 1 << 18

    def history_lengths(self) -> List[int]:
        """Geometric history lengths for the tagged tables."""
        return geometric_history_lengths(self.n_tables, self.min_history,
                                          self.max_history)


class _DeterministicLfsr:
    """Tiny deterministic pseudo-random source for TAGE allocation decisions.

    Real TAGE implementations use an LFSR to break allocation ties; using a
    deterministic one keeps simulations reproducible.
    """

    def __init__(self, seed: int = 0xACE1) -> None:
        self._state = seed & 0xFFFF or 0xACE1

    def next_bits(self, bits: int = 2) -> int:
        value = 0
        for _ in range(bits):
            lsb = self._state & 1
            self._state >>= 1
            if lsb:
                self._state ^= 0xB400
            value = (value << 1) | lsb
        return value


class TagePredictor(DirectionPredictor):
    """TAGE direction predictor with pluggable isolation.

    Args:
        config: table sizing; defaults to :class:`TageConfig`.
        isolation: isolation policy applied to the base and tagged tables.
        word_bits: physical word width used for the base PHT packing.
    """

    name = "tage"

    def __init__(self, config: Optional[TageConfig] = None, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        self.config = config if config is not None else TageConfig()
        cfg = self.config
        self._base = BimodalPredictor(cfg.base_entries, 2, isolation=isolation,
                                      word_bits=word_bits)
        self._history_lengths = cfg.history_lengths()
        self._entry_bits = cfg.tag_bits + cfg.counter_bits + cfg.useful_bits
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._ctr_mask = (1 << cfg.counter_bits) - 1
        self._u_mask = (1 << cfg.useful_bits) - 1
        self._ctr_weak_taken = 1 << (cfg.counter_bits - 1)
        self._index_bits = cfg.table_entries.bit_length() - 1
        self._tables: List[PredictorTable] = []
        for i in range(cfg.n_tables):
            table = PredictorTable(cfg.table_entries, self._entry_bits,
                                   reset_value=0, name=f"tage_t{i}",
                                   isolation=isolation)
            self._tables.append(table)
        self._ghr = GlobalHistory(max(cfg.max_history, max(self._history_lengths)) + 1)
        self._path = PathHistory(32)
        # Per-table constants of the folded-history shift registers, hoisted
        # out of the per-branch update loop: (oldest-bit shift, index-fold
        # insertion shift, tag-fold insertion shifts).
        self._push_consts = [
            (length - 1, length % self._index_bits, length % cfg.tag_bits,
             length % (cfg.tag_bits - 1))
            for length in self._history_lengths]
        # Per-table lookup constants: (table number, table object, path-fold
        # shift, index-hash XOR constant).  The table objects are never
        # rebound, so caching them here is safe.
        self._exec_consts = [(t, self._tables[t], t & 3, t * 0x1F)
                             for t in range(cfg.n_tables)]
        # The base component is always a BimodalPredictor; the fused execute
        # path reads/trains its PHT directly to skip prediction-object
        # allocation (flushes mutate the table in place, so caching is safe).
        self._base_pht = self._base.pht
        self._base_index_mask = cfg.base_entries - 1
        self._base_counter_bits = 2
        self._base_threshold = 1 << (self._base_counter_bits - 1)
        self._base_words = self._base_pht.word_table
        self._base_cpw = self._base_pht.counters_per_word
        self._use_alt = (1 << (cfg.use_alt_bits - 1))  # neutral
        self._use_alt_max = (1 << cfg.use_alt_bits) - 1
        self._lfsr = _DeterministicLfsr()
        self._update_count = 0
        # Incrementally folded global histories, per hardware thread: one
        # index-width register and two tag-width registers per tagged table
        # (the standard TAGE circular-shift-register implementation).  They
        # avoid re-folding hundreds of history bits on every lookup.
        self._folded_state: dict = {}
        # Per-call constants of the fused execute path, packed into one tuple
        # so the hot path pays a single attribute load instead of ~20.  Every
        # member is immutable or never rebound after construction.
        self._exec_bundle = (
            self._tables, cfg.n_tables, cfg.useful_bits + cfg.counter_bits,
            self._ctr_mask, self._u_mask, self._tag_mask, self._ctr_weak_taken,
            1 << (cfg.counter_bits - 1), 1 << (cfg.use_alt_bits - 1),
            cfg.useful_bits, self._base_words, self._base_index_mask,
            self._base_cpw, self._base_threshold, self._index_bits,
            (1 << self._index_bits) - 1, self._exec_consts, self._push_consts,
            self._path, self._ghr, cfg.useful_reset_period, cfg.tag_bits)

    # -- entry packing --------------------------------------------------------
    def _pack(self, tag: int, ctr: int, useful: int) -> int:
        cfg = self.config
        return ((tag & self._tag_mask) << (cfg.counter_bits + cfg.useful_bits)
                | (ctr & self._ctr_mask) << cfg.useful_bits
                | (useful & self._u_mask))

    def _unpack(self, word: int) -> tuple:
        cfg = self.config
        useful = word & self._u_mask
        ctr = (word >> cfg.useful_bits) & self._ctr_mask
        tag = (word >> (cfg.useful_bits + cfg.counter_bits)) & self._tag_mask
        return tag, ctr, useful

    # -- folded-history maintenance --------------------------------------------
    def _folded(self, thread_id: int) -> dict:
        state = self._folded_state.get(thread_id)
        if state is None:
            state = {
                "index": [0] * self.config.n_tables,
                "tag0": [0] * self.config.n_tables,
                "tag1": [0] * self.config.n_tables,
            }
            self._folded_state[thread_id] = state
        return state

    @staticmethod
    def _fold_step(folded: int, width: int, new_bit: int, old_bit: int,
                   length: int) -> int:
        """One circular-shift-register update of a folded history."""
        folded = (folded << 1) | new_bit
        folded ^= old_bit << (length % width)
        folded ^= folded >> width
        return folded & ((1 << width) - 1)

    def _push_history(self, taken: bool, thread_id: int) -> None:
        """Shift the outcome into the GHR and all folded registers."""
        ghr_value = self._ghr.value(thread_id)
        state = self._folded(thread_id)
        new_bit = 1 if taken else 0
        cfg = self.config
        index_bits = self._index_bits
        tag_bits = cfg.tag_bits
        tag1_bits = tag_bits - 1
        index_regs = state["index"]
        tag0_regs = state["tag0"]
        tag1_regs = state["tag1"]
        index_mask = (1 << index_bits) - 1
        tag0_mask = (1 << tag_bits) - 1
        tag1_mask = (1 << tag1_bits) - 1
        for table, (old_shift, index_insert, tag0_insert,
                    tag1_insert) in enumerate(self._push_consts):
            old_bit = (ghr_value >> old_shift) & 1
            # Inlined circular-shift-register updates (hot path).
            folded = (index_regs[table] << 1) | new_bit
            folded ^= old_bit << index_insert
            folded ^= folded >> index_bits
            index_regs[table] = folded & index_mask
            folded = (tag0_regs[table] << 1) | new_bit
            folded ^= old_bit << tag0_insert
            folded ^= folded >> tag_bits
            tag0_regs[table] = folded & tag0_mask
            folded = (tag1_regs[table] << 1) | new_bit
            folded ^= old_bit << tag1_insert
            folded ^= folded >> tag1_bits
            tag1_regs[table] = folded & tag1_mask
        self._ghr.push(taken, thread_id)

    # -- index / tag hashing --------------------------------------------------
    def _table_index(self, pc: int, table: int, thread_id: int) -> int:
        history = self._folded(thread_id)["index"][table]
        path = self._path.folded(self._index_bits, thread_id)
        pc_bits = (pc >> 2) ^ (pc >> (2 + self._index_bits))
        return (pc_bits ^ history ^ (path >> (table & 3)) ^ (table * 0x1F)) \
            & ((1 << self._index_bits) - 1)

    def _table_tag(self, pc: int, table: int, thread_id: int) -> int:
        state = self._folded(thread_id)
        return ((pc >> 2) ^ state["tag0"][table] ^ (state["tag1"][table] << 1)) \
            & self._tag_mask

    # -- prediction protocol --------------------------------------------------
    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        cfg = self.config
        base_pred = self._base.lookup(pc, thread_id)
        provider = -1
        alt = -1
        provider_info = None
        alt_info = None
        indices = []
        tags = []
        for table in range(cfg.n_tables):
            index = self._table_index(pc, table, thread_id)
            tag = self._table_tag(pc, table, thread_id)
            indices.append(index)
            tags.append(tag)
            word = self._tables[table].read(index, thread_id)
            stored_tag, ctr, useful = self._unpack(word)
            if stored_tag == tag and word != 0:
                alt, alt_info = provider, provider_info
                provider, provider_info = table, (index, tag, ctr, useful)
        provider_taken = None
        alt_taken = base_pred.taken
        if alt >= 0 and alt_info is not None:
            alt_taken = counter_is_taken(alt_info[2], cfg.counter_bits)
        if provider >= 0 and provider_info is not None:
            provider_taken = counter_is_taken(provider_info[2], cfg.counter_bits)
            weak = provider_info[2] in (self._ctr_weak_taken, self._ctr_weak_taken - 1)
            newly_allocated = weak and provider_info[3] == 0
            use_alt = newly_allocated and self._use_alt >= (1 << (cfg.use_alt_bits - 1))
            taken = alt_taken if use_alt else provider_taken
        else:
            use_alt = False
            taken = base_pred.taken
        return DirectionPrediction(taken=taken, meta={
            "base": base_pred,
            "provider": provider,
            "alt": alt,
            "provider_taken": provider_taken,
            "alt_taken": alt_taken,
            "use_alt": use_alt,
            "indices": indices,
            "tags": tags,
        })

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        cfg = self.config
        if prediction is None or "indices" not in prediction.meta:
            prediction = self.lookup(pc, thread_id)
        meta = prediction.meta
        provider = meta["provider"]
        indices: Sequence[int] = meta["indices"]
        tags: Sequence[int] = meta["tags"]
        mispredicted = prediction.taken != taken

        self._update_count += 1
        if self._update_count % cfg.useful_reset_period == 0:
            self._graceful_useful_reset(thread_id)

        if provider >= 0:
            index = indices[provider]
            word = self._tables[provider].read(index, thread_id)
            stored_tag, ctr, useful = self._unpack(word)
            provider_taken = counter_is_taken(ctr, cfg.counter_bits)
            alt_taken = meta["alt_taken"]
            # Train USE_ALT_ON_NA when the provider entry was newly allocated.
            if meta["use_alt"] or (useful == 0 and ctr in (self._ctr_weak_taken,
                                                           self._ctr_weak_taken - 1)):
                if provider_taken != alt_taken:
                    if alt_taken == taken:
                        self._use_alt = min(self._use_alt + 1, self._use_alt_max)
                    else:
                        self._use_alt = max(self._use_alt - 1, 0)
            new_ctr = saturating_update(ctr, taken, cfg.counter_bits)
            new_useful = useful
            if provider_taken != alt_taken:
                if provider_taken == taken:
                    new_useful = min(useful + 1, self._u_mask)
                else:
                    new_useful = max(useful - 1, 0)
            self._tables[provider].write(index, self._pack(stored_tag, new_ctr,
                                                           new_useful), thread_id)
        else:
            self._base.update(pc, taken, meta["base"], thread_id)

        # Also train the base predictor when it provided the alternate.
        if provider >= 0 and meta["alt"] < 0:
            self._base.update(pc, taken, meta["base"], thread_id)

        # Allocation on misprediction: try to allocate one entry in a table
        # with a longer history than the provider.
        if mispredicted and provider < cfg.n_tables - 1:
            self._allocate(pc, taken, provider, indices, tags, thread_id)

        self._push_history(taken, thread_id)
        self._path.push(pc, thread_id)

    def execute(self, pc: int, taken: bool, thread_id: int = 0) -> bool:
        """Fused lookup + stats + update for the simulation hot path.

        State-identical to the ``lookup`` / ``stats().record`` / ``update``
        sequence the scalar engine performs, but with the per-table index/tag
        hashing hoisted into locals, the path-history fold computed once
        instead of once per tagged table (its value is loop-invariant), and
        no :class:`DirectionPrediction`/meta-dictionary allocation.
        """
        # One attribute load for the whole per-call constant set (every member
        # is immutable or never rebound after construction).
        (tables, n_tables, ctr_shift, ctr_mask, u_mask, tag_mask, weak_taken,
         taken_threshold, use_alt_threshold, useful_bits, base_words,
         base_index_mask, base_cpw, base_threshold, index_bits, index_mask,
         exec_consts, push_consts, path_obj, ghr, useful_reset_period,
         tag_bits) = self._exec_bundle

        # -- lookup ----------------------------------------------------------
        # Inlined bimodal base lookup straight from the packed word table
        # (reads have no side effects, so the word is reused by the base
        # update below — nothing writes to the base PHT in between).
        base_index = (pc >> 2) & base_index_mask
        base_word_index = base_index // base_cpw
        base_shift = (base_index % base_cpw) * 2
        base_word = (base_words._data[base_word_index] if base_words._fast
                     else base_words.read(base_word_index, thread_id))
        base_counter = (base_word >> base_shift) & 3
        base_taken = base_counter >= base_threshold
        state = self._folded_state.get(thread_id)
        if state is None:
            state = self._folded(thread_id)
        index_folds = state["index"]
        tag0_folds = state["tag0"]
        tag1_folds = state["tag1"]
        # Inlined self._path.folded(index_bits, thread_id): XOR-fold the path
        # register in index_bits-wide chunks (zero chunks are no-ops, so
        # stopping at the highest set bit matches fold_history exactly).
        path_value = path_obj._values.get(thread_id, 0)
        path = path_value & index_mask
        remaining = path_value >> index_bits
        while remaining:
            path ^= remaining & index_mask
            remaining >>= index_bits
        pc_bits = (pc >> 2) ^ (pc >> (2 + index_bits))
        pc2 = pc >> 2
        provider = -1
        alt = -1
        provider_index = provider_tag = provider_ctr = provider_useful = 0
        alt_ctr = 0
        for table, t, path_shift, hash_const in exec_consts:
            index = (pc_bits ^ index_folds[table] ^ (path >> path_shift)
                     ^ hash_const) & index_mask
            word = t._data[index] if t._fast else t.read(index, thread_id)
            if word:
                # The tag hash is only needed for non-empty entries; tagged
                # tables are sparsely populated, so computing it lazily here
                # skips the fold/XOR work for the common all-zero read.
                tag = (pc2 ^ tag0_folds[table]
                       ^ (tag1_folds[table] << 1)) & tag_mask
                if ((word >> ctr_shift) & tag_mask) == tag:
                    alt = provider
                    alt_ctr = provider_ctr
                    provider = table
                    provider_index = index
                    provider_tag = tag
                    provider_ctr = (word >> useful_bits) & ctr_mask
                    provider_useful = word & u_mask
        alt_taken = (alt_ctr >= taken_threshold) if alt >= 0 else base_taken
        if provider >= 0:
            provider_taken = provider_ctr >= taken_threshold
            use_alt = (provider_useful == 0
                       and provider_ctr in (weak_taken, weak_taken - 1)
                       and self._use_alt >= use_alt_threshold)
            predicted = alt_taken if use_alt else provider_taken
        else:
            use_alt = False
            predicted = base_taken

        # -- stats (recorded between lookup and update, as in the BPU) -------
        pstats = self._stats.get(thread_id)
        if pstats is None:
            pstats = self._stats[thread_id] = PredictorStats()
        pstats.lookups += 1
        if predicted != taken:
            pstats.mispredictions += 1

        # -- update ----------------------------------------------------------
        mispredicted = predicted != taken
        self._update_count += 1
        reset_fired = self._update_count % useful_reset_period == 0
        if reset_fired:
            self._graceful_useful_reset(thread_id)
        if provider >= 0:
            ctr, useful = provider_ctr, provider_useful
            if reset_fired:
                # The graceful reset halves useful counters in place; re-read
                # the provider entry exactly as the scalar update path does.
                t = tables[provider]
                word = (t._data[provider_index] if t._fast
                        else t.read(provider_index, thread_id))
                ctr = (word >> useful_bits) & ctr_mask
                useful = word & u_mask
            provider_taken = ctr >= taken_threshold
            if use_alt or (useful == 0 and ctr in (weak_taken, weak_taken - 1)):
                if provider_taken != alt_taken:
                    if alt_taken == taken:
                        self._use_alt = min(self._use_alt + 1, self._use_alt_max)
                    else:
                        self._use_alt = max(self._use_alt - 1, 0)
            # Inlined saturating_update(ctr, taken, counter_bits).
            if taken:
                new_ctr = ctr + 1 if ctr < ctr_mask else ctr_mask
            else:
                new_ctr = ctr - 1 if ctr > 0 else 0
            new_useful = useful
            if provider_taken != alt_taken:
                if provider_taken == taken:
                    new_useful = min(useful + 1, u_mask)
                else:
                    new_useful = max(useful - 1, 0)
            packed = ((provider_tag << ctr_shift)
                      | ((new_ctr & ctr_mask) << useful_bits)
                      | (new_useful & u_mask))
            t = tables[provider]
            if t._fast:
                t._data[provider_index] = packed
            else:
                t.write(provider_index, packed, thread_id)
        if provider < 0 or alt < 0:
            # Inlined bimodal base update (read-modify-write the packed word
            # fetched during the lookup): trains the base when it predicted
            # (no provider) or provided the alternate.  The base update is
            # the last table write either way, so hoisting it here keeps the
            # write order identical to the scalar path.
            if taken:
                new_base = base_counter + 1 if base_counter < 3 else 3
            else:
                new_base = base_counter - 1 if base_counter > 0 else 0
            new_word = (base_word & ~(3 << base_shift)) | (new_base << base_shift)
            if base_words._fast:
                base_words._data[base_word_index] = new_word & base_words._value_mask
            else:
                base_words.write(base_word_index, new_word, thread_id)
        if mispredicted and provider < n_tables - 1:
            # The index/tag hashes are only needed on the (rare) allocation
            # path; recompute them here instead of building lists per branch.
            # The folded registers have not been pushed yet, so the values
            # are identical to the ones used by the lookup above.
            indices = [(pc_bits ^ index_folds[table] ^ (path >> (table & 3))
                        ^ (table * 0x1F)) & index_mask
                       for table in range(n_tables)]
            tags = [(pc2 ^ tag0_folds[table] ^ (tag1_folds[table] << 1)) & tag_mask
                    for table in range(n_tables)]
            self._allocate(pc, taken, provider, indices, tags, thread_id)

        # -- history push (inlined _push_history + path push) ----------------
        ghr_values = ghr._values
        ghr_value = ghr_values.get(thread_id, 0)
        new_bit = 1 if taken else 0
        tag1_bits = tag_bits - 1
        tag0_mask = tag_mask
        tag1_mask = (1 << tag1_bits) - 1
        for table, (old_shift, index_insert, tag0_insert,
                    tag1_insert) in enumerate(push_consts):
            old_bit = (ghr_value >> old_shift) & 1
            folded = (index_folds[table] << 1) | new_bit
            folded ^= old_bit << index_insert
            folded ^= folded >> index_bits
            index_folds[table] = folded & index_mask
            folded = (tag0_folds[table] << 1) | new_bit
            folded ^= old_bit << tag0_insert
            folded ^= folded >> tag_bits
            tag0_folds[table] = folded & tag0_mask
            folded = (tag1_folds[table] << 1) | new_bit
            folded ^= old_bit << tag1_insert
            folded ^= folded >> tag1_bits
            tag1_folds[table] = folded & tag1_mask
        ghr_values[thread_id] = ((ghr_value << 1) | new_bit) & ghr._mask
        path_obj._values[thread_id] = \
            ((path_value << path_obj._pc_bits)
             | (pc2 & ((1 << path_obj._pc_bits) - 1))) & path_obj._mask
        return predicted

    def _allocate(self, pc: int, taken: bool, provider: int,
                  indices: Sequence[int], tags: Sequence[int],
                  thread_id: int) -> None:
        cfg = self.config
        start = provider + 1
        candidates = []
        for table in range(start, cfg.n_tables):
            word = self._tables[table].read(indices[table], thread_id)
            _, _, useful = self._unpack(word)
            if useful == 0:
                candidates.append(table)
        if not candidates:
            # No free entry: age the useful counters of all longer tables.
            for table in range(start, cfg.n_tables):
                word = self._tables[table].read(indices[table], thread_id)
                tag, ctr, useful = self._unpack(word)
                if useful > 0:
                    self._tables[table].write(indices[table],
                                              self._pack(tag, ctr, useful - 1),
                                              thread_id)
            return
        # Prefer the shortest-history candidate, with a pseudo-random skip to
        # avoid ping-ponging (as in the reference TAGE implementation).
        choice = candidates[0]
        if len(candidates) > 1 and self._lfsr.next_bits(2) == 0:
            choice = candidates[1]
        ctr = self._ctr_weak_taken if taken else self._ctr_weak_taken - 1
        self._tables[choice].write(indices[choice],
                                   self._pack(tags[choice], ctr, 0), thread_id)

    def _graceful_useful_reset(self, thread_id: int) -> None:
        """Periodically clear the low bit of every useful counter."""
        for table in self._tables:
            for row in range(table.n_entries):
                word = table.read(row, thread_id)
                tag, ctr, useful = self._unpack(word)
                if useful:
                    table.write(row, self._pack(tag, ctr, useful >> 1), thread_id)

    # -- structure access -----------------------------------------------------
    def tables(self) -> List[PredictorTable]:
        return self._base.tables() + list(self._tables)

    @property
    def tagged_tables(self) -> List[PredictorTable]:
        """The tagged component tables."""
        return list(self._tables)

    @property
    def base_predictor(self) -> BimodalPredictor:
        """The bimodal base component."""
        return self._base

    @property
    def global_history(self) -> GlobalHistory:
        """The per-thread global history register."""
        return self._ghr

    @property
    def history_lengths(self) -> List[int]:
        """Geometric history lengths of the tagged tables."""
        return list(self._history_lengths)

    def flush(self) -> None:
        self._base.flush()
        for table in self._tables:
            table.flush()
        self._ghr.clear()
        self._path.clear()
        self._folded_state.clear()

    def flush_thread(self, thread_id: int) -> None:
        self._base.flush_thread(thread_id)
        for table in self._tables:
            table.flush_thread(thread_id)
        self._ghr.clear(thread_id)
        self._path.clear(thread_id)
        self._folded_state.pop(thread_id, None)
