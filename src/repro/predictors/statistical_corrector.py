"""GEHL-style statistical corrector.

TAGE occasionally produces statistically biased mispredictions (branches that
correlate weakly with history).  The statistical corrector (SC) of TAGE-SC-L
sums a set of signed counters read from tables indexed by different history
flavours (global history, backward-branch history, local history, the IMLI
counter) and, when the magnitude of the sum is large enough and disagrees
with TAGE, overrides the prediction.

This implementation keeps the structure (multiple GEHL components over
different histories, a dynamic use threshold) while remaining small enough
for trace-driven simulation.  All component tables are
:class:`repro.predictors.table.PredictorTable` instances so the isolation
mechanisms apply to them, as shown in Figure 6(b).
"""

from __future__ import annotations

from typing import List, Optional

from .counters import signed_saturating_update
from .history import GlobalHistory, LocalHistoryTable, fold_history
from .table import PredictorTable, TableIsolation

__all__ = ["StatisticalCorrector"]


def _to_signed(value: int, bits: int) -> int:
    """Interpret an unsigned stored word as a signed counter."""
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def _to_unsigned(value: int, bits: int) -> int:
    """Store a signed counter as an unsigned word."""
    return value & ((1 << bits) - 1)


class StatisticalCorrector:
    """Multi-component signed-counter corrector.

    Args:
        table_entries: entries per component table (power of two).
        counter_bits: width of each signed counter.
        history_lengths: global-history lengths of the GEHL components.
        local_history_bits: length of the per-branch local history component.
        isolation: isolation policy applied to all component tables.
    """

    def __init__(self, table_entries: int = 1024, counter_bits: int = 6,
                 history_lengths: Optional[List[int]] = None,
                 local_history_bits: int = 8, *,
                 isolation: Optional[TableIsolation] = None) -> None:
        self._counter_bits = counter_bits
        self._max = (1 << (counter_bits - 1)) - 1
        self._index_bits = table_entries.bit_length() - 1
        self._index_mask = table_entries - 1
        self._history_lengths = history_lengths or [4, 10, 16, 27]
        self._tables: List[PredictorTable] = []
        for i, _ in enumerate(self._history_lengths):
            self._tables.append(PredictorTable(table_entries, counter_bits,
                                               reset_value=0, name=f"sc_g{i}",
                                               isolation=isolation))
        self._backward_table = PredictorTable(table_entries, counter_bits,
                                              reset_value=0, name="sc_bw",
                                              isolation=isolation)
        self._local_table = PredictorTable(table_entries, counter_bits,
                                           reset_value=0, name="sc_local",
                                           isolation=isolation)
        self._local_history = LocalHistoryTable(256, local_history_bits)
        self._backward_history = GlobalHistory(16)
        self._use_threshold = 2 * len(self._tables)
        if isolation is not None:
            isolation.register_flushable(self._local_history)

    # -- indexing -------------------------------------------------------------
    def _global_index(self, pc: int, length: int, ghr: int) -> int:
        history = fold_history(ghr & ((1 << length) - 1), length, self._index_bits)
        return ((pc >> 2) ^ history) & self._index_mask

    def _backward_index(self, pc: int, thread_id: int) -> int:
        history = self._backward_history.folded(self._index_bits, thread_id)
        return ((pc >> 2) ^ history) & self._index_mask

    def _local_index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._local_history.read(pc)) & self._index_mask

    # -- prediction protocol --------------------------------------------------
    def confidence_sum(self, pc: int, ghr_value: int, tage_taken: bool,
                       thread_id: int = 0) -> int:
        """Signed vote of all components (positive = taken)."""
        total = 8 if tage_taken else -8  # TAGE's own vote, centred bias
        for table, length in zip(self._tables, self._history_lengths):
            index = self._global_index(pc, length, ghr_value)
            total += 2 * _to_signed(table.read(index, thread_id), self._counter_bits) + 1
        bw_index = self._backward_index(pc, thread_id)
        total += 2 * _to_signed(self._backward_table.read(bw_index, thread_id),
                                self._counter_bits) + 1
        local_index = self._local_index(pc)
        total += 2 * _to_signed(self._local_table.read(local_index, thread_id),
                                self._counter_bits) + 1
        return total

    def correct(self, pc: int, ghr_value: int, tage_taken: bool,
                tage_confident: bool, thread_id: int = 0) -> bool:
        """Return the (possibly overridden) prediction.

        The corrector only overrides low-confidence TAGE predictions whose
        statistical vote is strong and disagrees.
        """
        total = self.confidence_sum(pc, ghr_value, tage_taken, thread_id)
        sc_taken = total >= 0
        if sc_taken == tage_taken:
            return tage_taken
        if tage_confident and abs(total) < self._use_threshold:
            return tage_taken
        if abs(total) >= self._use_threshold // 2:
            return sc_taken
        return tage_taken

    def update(self, pc: int, taken: bool, ghr_value: int, tage_taken: bool,
               final_taken: bool, thread_id: int = 0) -> None:
        """Train all components with the resolved outcome."""
        total = self.confidence_sum(pc, ghr_value, tage_taken, thread_id)
        sc_taken = total >= 0
        # Dynamic threshold adaptation (simplified): grow when the corrector
        # overrode incorrectly, shrink when it could have helped.
        if final_taken != taken and sc_taken == taken:
            self._use_threshold = max(2, self._use_threshold - 1)
        elif final_taken != taken and sc_taken != taken:
            self._use_threshold = min(8 * len(self._tables), self._use_threshold + 1)

        if sc_taken != taken or abs(total) < 4 * self._use_threshold:
            for table, length in zip(self._tables, self._history_lengths):
                index = self._global_index(pc, length, ghr_value)
                value = _to_signed(table.read(index, thread_id), self._counter_bits)
                value = signed_saturating_update(value, taken, self._counter_bits)
                table.write(index, _to_unsigned(value, self._counter_bits), thread_id)
            bw_index = self._backward_index(pc, thread_id)
            value = _to_signed(self._backward_table.read(bw_index, thread_id),
                               self._counter_bits)
            value = signed_saturating_update(value, taken, self._counter_bits)
            self._backward_table.write(bw_index, _to_unsigned(value, self._counter_bits),
                                       thread_id)
            local_index = self._local_index(pc)
            value = _to_signed(self._local_table.read(local_index, thread_id),
                               self._counter_bits)
            value = signed_saturating_update(value, taken, self._counter_bits)
            self._local_table.write(local_index, _to_unsigned(value, self._counter_bits),
                                    thread_id)

        # History maintenance.
        self._local_history.push(pc, taken)
        is_backward = bool((pc >> 20) & 1)
        if is_backward:
            self._backward_history.push(taken, thread_id)

    # -- structure access -----------------------------------------------------
    def tables(self) -> List[PredictorTable]:
        """All component tables."""
        return list(self._tables) + [self._backward_table, self._local_table]

    def flush(self) -> None:
        """Clear all component tables and histories."""
        for table in self.tables():
            table.flush()
        self._local_history.flush()
        self._backward_history.clear()

    def flush_thread(self, thread_id: int) -> None:
        """Clear component entries owned by one hardware thread."""
        for table in self.tables():
            table.flush_thread(thread_id)
        self._backward_history.clear(thread_id)
