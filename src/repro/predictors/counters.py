"""Saturating counters and counter arrays.

Every direction predictor in this package expresses its per-entry state with
saturating counters: the classic 2-bit counter of a PHT, the 3-bit prediction
counters of TAGE tagged entries, the signed counters of a GEHL-style
statistical corrector, and so on.  This module provides both a scalar helper
(:class:`SaturatingCounter`) used where readability matters more than speed
and plain integer helper functions used in hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SaturatingCounter",
    "saturating_update",
    "counter_is_taken",
    "counter_strength",
    "signed_saturating_update",
    "WEAK_NOT_TAKEN",
    "WEAK_TAKEN",
    "STRONG_NOT_TAKEN",
    "STRONG_TAKEN",
]

# Canonical 2-bit counter states (values of an unsigned 2-bit counter).
STRONG_NOT_TAKEN = 0
WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2
STRONG_TAKEN = 3


def saturating_update(value: int, taken: bool, bits: int = 2) -> int:
    """Return the updated value of an unsigned saturating counter.

    The counter increments when the branch is taken and decrements when it is
    not taken, saturating at ``0`` and ``2**bits - 1``.

    Args:
        value: current counter value (``0 <= value < 2**bits``).
        taken: resolved branch direction.
        bits: counter width in bits.

    Returns:
        The new counter value.
    """
    limit = (1 << bits) - 1
    if taken:
        return value + 1 if value < limit else limit
    return value - 1 if value > 0 else 0


def counter_is_taken(value: int, bits: int = 2) -> bool:
    """Return the predicted direction for an unsigned saturating counter."""
    return value >= (1 << (bits - 1))


def counter_strength(value: int, bits: int = 2) -> int:
    """Return the distance of ``value`` from the taken/not-taken boundary.

    A value of ``0`` means the counter is *weak* (one update away from
    flipping direction); larger values mean more hysteresis.
    """
    midpoint = 1 << (bits - 1)
    if value >= midpoint:
        return value - midpoint
    return midpoint - 1 - value


def signed_saturating_update(value: int, taken: bool, bits: int) -> int:
    """Update a signed (two's-complement style) saturating counter.

    Signed counters are centred at zero: positive means taken, negative means
    not taken.  They are used by the statistical corrector and by the TAGE
    ``USE_ALT_ON_NA`` counters.

    Args:
        value: current counter value in ``[-2**(bits-1), 2**(bits-1) - 1]``.
        taken: resolved branch direction.
        bits: total counter width in bits.

    Returns:
        The new signed counter value.
    """
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if taken:
        return value + 1 if value < hi else hi
    return value - 1 if value > lo else lo


@dataclass
class SaturatingCounter:
    """A scalar unsigned saturating counter.

    Attributes:
        bits: counter width in bits.
        value: current counter value.
    """

    bits: int = 2
    value: int = WEAK_NOT_TAKEN

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("counter width must be at least 1 bit")
        limit = (1 << self.bits) - 1
        if not 0 <= self.value <= limit:
            raise ValueError(
                f"counter value {self.value} out of range for {self.bits}-bit counter"
            )

    @property
    def max_value(self) -> int:
        """Largest representable counter value."""
        return (1 << self.bits) - 1

    @property
    def taken(self) -> bool:
        """Predicted direction."""
        return counter_is_taken(self.value, self.bits)

    @property
    def is_weak(self) -> bool:
        """True when a single opposite-direction update flips the prediction."""
        return counter_strength(self.value, self.bits) == 0

    def update(self, taken: bool) -> None:
        """Train the counter with a resolved branch direction."""
        self.value = saturating_update(self.value, taken, self.bits)

    def set(self, value: int) -> None:
        """Force the counter to an absolute value (used by attackers priming state)."""
        if not 0 <= value <= self.max_value:
            raise ValueError(f"value {value} out of range")
        self.value = value

    def reset(self, value: int = WEAK_NOT_TAKEN) -> None:
        """Reset the counter to ``value`` (defaults to weakly not-taken)."""
        self.set(value)

    def __int__(self) -> int:
        return self.value
