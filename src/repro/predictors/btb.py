"""Set-associative Branch Target Buffer (BTB).

The BTB stores, per entry, a valid bit, a branch-type field, a partial tag
taken from the upper PC bits and the predicted target address.  It is the
structure attacked by Spectre-V2-style malicious training, Branch Shadowing
and the contention-based SBPA / Jump-over-ASLR attacks, and the structure
protected by **XOR-BTB** and **Noisy-XOR-BTB** (Section 5.1, Figure 4(a)):

* the *tag* and the *target address* are XORed with the thread-private
  content key before being written and after being read;
* with Noisy-XOR-BTB the *set index* is additionally XORed with the
  thread-private index key.

Both transformations are delegated to the attached
:class:`repro.predictors.table.TableIsolation` policy so that the same BTB
code serves the Baseline, flush-based and XOR-based configurations.

Hot-path layout
---------------

The simulation hot path works on **flat packed parallel arrays** rather than
per-way entry objects: one contiguous list per field (``valid``, ``tag``,
``target``, ``branch type``, ``owner``, ``LRU stamp``), each of length
``n_sets * n_ways`` with a per-set stride of ``n_ways``.  A set probe is a
``range(base, base + n_ways)`` walk over machine ints — no attribute loads,
no entry-object indirection.  The fused per-(thread, table) XOR masks of the
XOR-family presets are applied inline on the packed fields and re-randomised
only at switch time via the mask-cache registration protocol on
:class:`repro.core.isolation.XorContentIsolation`.

On top of the arrays, the conditional-branch probe is served by **per-thread
closure kernels** (:meth:`BranchTargetBuffer.exec_conditional_kernel`): the
geometry constants, the field arrays and the thread's decode masks are bound
once per (thread, rekey) into a closure, so a branch pays no mask-cache
lookup and no isolation-arm branching.  Kernels follow the same protocol as
the generated TAGE/gshare kernels — the batched engines fetch them via the
``exec_*_kernel`` entry point and re-fetch after every switch notification;
key re-randomisation drops them through the registered mask cache.

The scalar protocol (:meth:`lookup` / :meth:`update`), the attack framework
and the flush machinery see the exact same bits through the same arrays, and
:class:`BTBEntry` remains as the introspection value object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .table import (ROW_DIVERSIFIER, IdentityIsolation, TableIsolation,
                    is_passthrough_isolation, supports_fused_xor)
from ..types import BranchType

__all__ = ["BTBEntry", "BTBResult", "BranchTargetBuffer"]

_NO_OWNER = -1
_CONDITIONAL_INT = int(BranchType.CONDITIONAL)
_DIRECT_INT = int(BranchType.DIRECT)


@dataclass(slots=True)
class BTBEntry:
    """One BTB way, as a detached introspection snapshot.

    The ``tag`` and ``target`` fields hold the *stored* (possibly encoded)
    values; decoding happens on lookup with the key of the requesting thread.
    Since the storage itself lives in flat packed parallel arrays, instances
    of this class are value copies — mutating one does not write the BTB.
    """

    valid: bool = False
    tag: int = 0
    target: int = 0
    branch_type: int = _DIRECT_INT
    owner: int = _NO_OWNER
    last_use: int = 0


@dataclass(slots=True)
class BTBResult:
    """Result of a BTB lookup.

    Attributes:
        hit: True when a way's decoded tag matched the lookup PC.
        target: decoded predicted target (``None`` on a miss).
        set_index: physical set index that was probed.
        way: hitting way (``None`` on a miss).
    """

    hit: bool
    target: Optional[int]
    set_index: int
    way: Optional[int]


class BranchTargetBuffer:
    """Set-associative branch target buffer with pluggable isolation.

    Args:
        n_sets: number of sets (power of two).
        n_ways: associativity.
        tag_bits: width of the stored partial tag.
        target_bits: width of the stored target address.
        isolation: isolation policy (index mapping + tag/target encoding).
    """

    def __init__(self, n_sets: int = 512, n_ways: int = 2, *, tag_bits: int = 16,
                 target_bits: int = 32,
                 isolation: Optional[TableIsolation] = None) -> None:
        if n_sets < 1 or n_sets & (n_sets - 1):
            raise ValueError("n_sets must be a positive power of two")
        if n_ways < 1:
            raise ValueError("n_ways must be positive")
        self._n_sets = n_sets
        self._n_ways = n_ways
        self._index_bits = n_sets.bit_length() - 1
        self._index_mask = n_sets - 1
        self._tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self._target_bits = target_bits
        self._target_mask = (1 << target_bits) - 1
        self._tag_shift = 2 + self._index_bits
        self._isolation = isolation if isolation is not None else IdentityIsolation()
        self._fast = is_passthrough_isolation(self._isolation)
        self._xor_fast = (not self._fast) and supports_fused_xor(self._isolation)
        # Flat packed parallel arrays: one list per field, ``n_ways`` stride
        # per set.  All access paths (kernels, scalar protocol, flushes,
        # introspection) share these lists; they are reset in place so bound
        # references never go stale.
        total = n_sets * n_ways
        self._valid: List[bool] = [False] * total
        self._tags: List[int] = [0] * total
        self._targets: List[int] = [0] * total
        self._types: List[int] = [_DIRECT_INT] * total
        self._owners: List[int] = [_NO_OWNER] * total
        self._last: List[int] = [0] * total
        # Per-thread (index_key, tag_key, target_key) masks of the fused-XOR
        # fast path, re-randomised at switch time via the isolation policy's
        # mask-cache protocol; the per-set row-diversifier vectors are
        # thread-independent and built lazily.
        self._xor_masks: dict = {}
        self._tag_row_keys: Optional[List[int]] = None
        self._target_row_keys: Optional[List[int]] = None
        # Per-thread conditional-probe kernels (generated, way walk
        # unrolled) and the compiled kernel code objects, keyed by isolation
        # arm.  Registered as a second mask cache under XOR policies so key
        # re-randomisation drops the kernels; the batched engines re-fetch
        # after switch notifications.
        self._cond_kernels: Dict[int, object] = {}
        self._kernel_code: Dict[tuple, object] = {}
        self._clock = 0
        self.name = "btb"
        self.lookups = 0
        self.hits = 0
        if self._xor_fast:
            self._isolation.register_fast_mask_cache(self, self._xor_masks,
                                                     self._build_xor_masks)
            self._kernel_token = object()
            self._isolation.register_fast_mask_cache(self._kernel_token,
                                                     self._cond_kernels,
                                                     self._build_cond_kernel)
        self._isolation.register_flushable(self)

    # -- geometry -------------------------------------------------------------
    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self._n_sets

    @property
    def n_ways(self) -> int:
        """Associativity."""
        return self._n_ways

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return self._index_bits

    @property
    def tag_bits(self) -> int:
        """Width of the partial tag."""
        return self._tag_bits

    @property
    def target_bits(self) -> int:
        """Width of the stored target."""
        return self._target_bits

    @property
    def entry_bits(self) -> int:
        """Bits per entry (valid + type + tag + target), for the cost model."""
        return 1 + 3 + self._tag_bits + self._target_bits

    @property
    def storage_bits(self) -> int:
        """Total storage in bits."""
        return self._n_sets * self._n_ways * self.entry_bits

    @property
    def isolation(self) -> TableIsolation:
        """The attached isolation policy."""
        return self._isolation

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 when no lookups were made)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups

    # -- fused-XOR mask maintenance -------------------------------------------
    def _row_diversifier_keys(self) -> None:
        """Build the per-set row-diffusion vectors (thread-independent)."""
        if self._tag_row_keys is not None:
            return
        if getattr(self._isolation, "_row_diversified", False):
            self._tag_row_keys = [(s * ROW_DIVERSIFIER) & self._tag_mask
                                  for s in range(self._n_sets)]
            self._target_row_keys = [(s * ROW_DIVERSIFIER) & self._target_mask
                                     for s in range(self._n_sets)]
        else:
            zeros = [0] * self._n_sets
            self._tag_row_keys = zeros
            self._target_row_keys = zeros

    def _build_xor_masks(self, thread_id: int) -> tuple:
        """(Re)compute the fused-XOR masks for one hardware thread."""
        self._row_diversifier_keys()
        isolation = self._isolation
        masks = (isolation.fused_index_key(thread_id, self._index_bits, self),
                 isolation.fused_content_key(thread_id, self._tag_bits, self),
                 isolation.fused_content_key(thread_id, self._target_bits, self))
        self._xor_masks[thread_id] = masks
        return masks

    # -- address decomposition ------------------------------------------------
    def logical_set_of(self, pc: int) -> int:
        """Set index derived from the PC before any index encoding."""
        return (pc >> 2) & self._index_mask

    def set_of(self, pc: int, thread_id: int = 0) -> int:
        """Physical set index actually probed for a PC by a given thread."""
        logical = self.logical_set_of(pc)
        mapped = self._isolation.map_index(logical, self._index_bits, thread_id, self)
        return mapped & self._index_mask

    def tag_of(self, pc: int) -> int:
        """Partial tag derived from the upper PC bits."""
        return (pc >> self._tag_shift) & self._tag_mask

    # -- conditional-probe closure kernels ------------------------------------
    def exec_conditional_kernel(self, thread_id: int = 0):
        """Return the thread's fused conditional probe ``fn(pc, target, taken)``.

        The kernel is a closure over the packed field arrays, the geometry
        constants and — under a plain-XOR policy — the thread's precomputed
        decode masks; it performs :meth:`execute_conditional_fast` for one
        hardware thread with no per-call mask lookups or isolation-arm
        branching.  Kernels are dropped whenever the bound masks change (key
        re-randomisation, via the isolation mask-cache protocol) or
        :meth:`invalidate_kernels` is called; the batched engines re-fetch
        after every switch notification.  The callable accepts (and ignores)
        a trailing ``thread_id`` argument so engines can drive the kernel and
        the bound method through one call shape.
        """
        fn = self._cond_kernels.get(thread_id)
        if fn is None:
            fn = self._build_cond_kernel(thread_id)
        return fn

    def invalidate_kernels(self) -> None:
        """Drop every cached probe kernel (tests / manual flag flips)."""
        self._cond_kernels.clear()

    def _build_cond_kernel(self, thread_id: int):
        """Build, cache and return one thread's conditional probe kernel.

        The passthrough and fused-XOR arms are *generated*: the way walk is
        unrolled with the geometry constants inlined as literals, while the
        field arrays and the thread's masks are bound in the function's
        globals, so key rotation swaps namespace entries instead of
        recompiling.  Non-fusable policies get the exact generic two-call
        closure.
        """
        if self._fast or self._xor_fast:
            encoded = self._xor_fast
            diversified = False
            if encoded:
                masks = self._xor_masks.get(thread_id)
                if masks is None:
                    masks = self._build_xor_masks(thread_id)
                diversified = bool(getattr(self._isolation,
                                           "_row_diversified", False))
            key = (encoded, diversified)
            code = self._kernel_code.get(key)
            if code is None:
                source = self._cond_kernel_source(encoded, diversified)
                code = compile(source, f"<btb-kernel {key}>", "exec")
                self._kernel_code[key] = code
            namespace = {
                "valid": self._valid, "tags": self._tags,
                "targets": self._targets, "types": self._types,
                "owners": self._owners, "last": self._last,
                "btb": self, "OWNER": thread_id,
            }
            if encoded:
                index_key, tag_key, target_key = masks
                namespace["IK"] = index_key
                namespace["TK"] = tag_key
                namespace["GK"] = target_key
                if diversified:
                    namespace["TRK"] = self._tag_row_keys
                    namespace["GRK"] = self._target_row_keys
            exec(code, namespace)
            kernel = namespace["_kernel"]
            kernel.arm = "fused-xor" if encoded else "passthrough"
        else:
            # Non-fusable isolation (owner tracking / non-XOR encoders):
            # the exact generic two-call sequence.
            btb = self
            owner = thread_id

            def kernel(pc, target, taken, _thread_id=0):
                result = btb.lookup(pc, owner)
                if taken:
                    btb.update(pc, target, owner, BranchType.CONDITIONAL)
                return result.hit, result.target

            kernel.arm = "generic"
        self._cond_kernels[thread_id] = kernel
        return kernel

    def _cond_kernel_source(self, encoded: bool, diversified: bool) -> str:
        """Generate the source of one conditional probe kernel arm.

        Statement order mirrors :meth:`lookup_fast` + :meth:`update` (and
        the previous closure kernels) exactly — the differential-parity
        suite holds the generated kernels, the generic dispatch and the
        scalar protocol bit-identical.
        """
        ways = self._n_ways
        idx = [f"i{w}" for w in range(ways)]
        lines = []
        emit = lines.append
        emit("def _kernel(pc, target, taken, _thread_id=0):")
        emit("    btb.lookups += 1")
        emit("    clock = btb._clock + 1")
        if encoded:
            emit(f"    set_index = ((pc >> 2) ^ IK) & {self._index_mask}")
            if diversified:
                emit("    dec_tag = TK ^ TRK[set_index]")
                emit("    dec_target = GK ^ GRK[set_index]")
                emit(f"    enc_tag = ((pc >> {self._tag_shift})"
                     f" & {self._tag_mask}) ^ dec_tag")
            else:
                emit(f"    enc_tag = ((pc >> {self._tag_shift})"
                     f" & {self._tag_mask}) ^ TK")
        else:
            emit(f"    set_index = (pc >> 2) & {self._index_mask}")
            emit(f"    enc_tag = (pc >> {self._tag_shift}) & {self._tag_mask}")
        emit(f"    i0 = set_index * {ways}" if ways > 1
             else "    i0 = set_index")
        for w in range(1, ways):
            emit(f"    i{w} = i0 + {w}")
        if encoded and diversified:
            read = "(targets[{i}] ^ dec_target) & " + str(self._target_mask)
            write = f"(target & {self._target_mask}) ^ dec_target"
        elif encoded:
            read = "(targets[{i}] ^ GK) & " + str(self._target_mask)
            write = f"(target & {self._target_mask}) ^ GK"
        else:
            read = "targets[{i}] & " + str(self._target_mask)
            write = f"target & {self._target_mask}"
        emit("    hit = False")
        emit("    btb_target = None")
        emit("    victim = -1")
        for w, i in enumerate(idx):
            emit(f"    {'if' if w == 0 else 'elif'} valid[{i}]"
                 f" and tags[{i}] == enc_tag:")
            emit(f"        last[{i}] = clock")
            emit("        btb.hits += 1")
            emit("        hit = True")
            emit(f"        btb_target = {read.format(i=i)}")
            emit(f"        victim = {i}")
        emit("    if taken:")
        emit("        clock += 1")
        emit("        if victim < 0:")
        for w, i in enumerate(idx):
            emit(f"            {'if' if w == 0 else 'elif'} not valid[{i}]:")
            emit(f"                victim = {i}")
        if ways > 1:
            emit("            else:")
            emit(f"                victim = {idx[0]}")
            emit(f"                low = last[{idx[0]}]")
            for i in idx[1:]:
                emit(f"                if last[{i}] < low:")
                emit(f"                    low = last[{i}]")
                emit(f"                    victim = {i}")
        else:
            emit("            else:")
            emit(f"                victim = {idx[0]}")
        emit("        valid[victim] = True")
        emit("        tags[victim] = enc_tag")
        emit(f"        targets[victim] = {write}")
        emit(f"        types[victim] = {_CONDITIONAL_INT}")
        emit("        owners[victim] = OWNER")
        emit("        last[victim] = clock")
        emit("    btb._clock = clock")
        emit("    return hit, btb_target")
        return "\n".join(lines) + "\n"

    # -- prediction protocol --------------------------------------------------
    def lookup_fast(self, pc: int, thread_id: int = 0) -> tuple:
        """Allocation-free lookup used by the batched engine hot path.

        Behaviourally identical to :meth:`lookup` (same counters, same LRU
        update) but returns a plain ``(hit, target)`` tuple instead of a
        :class:`BTBResult`, and skips the isolation virtual dispatch entirely
        when the attached policy is a passthrough (baseline / flush) or a
        plain-XOR encoder (fused thread-private masks).
        """
        if self._fast:
            set_index = (pc >> 2) & self._index_mask
            enc_tag = (pc >> self._tag_shift) & self._tag_mask
            dec_target = 0
        elif self._xor_fast:
            # Fused-XOR probe: encode the lookup tag once and compare raw
            # stored tags (XOR is a bijection, so this equals decoding every
            # stored tag); decode the target only on a hit.
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, tag_key, target_key = masks
            set_index = ((pc >> 2) ^ index_key) & self._index_mask
            enc_tag = (((pc >> self._tag_shift) & self._tag_mask)
                       ^ tag_key ^ self._tag_row_keys[set_index])
            dec_target = target_key ^ self._target_row_keys[set_index]
        else:
            result = self.lookup(pc, thread_id)
            return result.hit, result.target
        self.lookups += 1
        clock = self._clock + 1
        self._clock = clock
        valid = self._valid
        tags = self._tags
        base = set_index * self._n_ways
        for i in range(base, base + self._n_ways):
            if valid[i] and tags[i] == enc_tag:
                self._last[i] = clock
                self.hits += 1
                return True, (self._targets[i] ^ dec_target) & self._target_mask
        return False, None

    def execute_conditional_fast(self, pc: int, target: int, taken: bool,
                                 thread_id: int = 0) -> tuple:
        """Fused conditional-branch probe: lookup plus update-if-taken.

        Behaviourally identical to :meth:`lookup_fast` followed by
        :meth:`update` (for taken branches), but runs the thread's packed
        closure kernel (see :meth:`exec_conditional_kernel`), which computes
        the set index and tag once and falls back to the two-call sequence
        when the isolation policy is neither a passthrough nor a fused-XOR
        encoder.
        """
        fn = self._cond_kernels.get(thread_id)
        if fn is None:
            fn = self._build_cond_kernel(thread_id)
        return fn(pc, target, taken)

    def execute_indirect_fast(self, pc: int, target: int,
                              branch_type: BranchType,
                              thread_id: int = 0) -> tuple:
        """Fused unconditional/indirect probe: lookup plus unconditional update.

        Behaviourally identical to :meth:`lookup_fast` followed by
        :meth:`update` (unconditional branches always train the BTB), but
        computes the set index and tag once on the packed arrays.  Falls back
        to the two-call sequence when the isolation policy is neither a
        passthrough nor a fused-XOR encoder.
        """
        if self._fast:
            set_index = (pc >> 2) & self._index_mask
            dec_tag = dec_target = 0
        elif self._xor_fast:
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, tag_key, target_key = masks
            set_index = ((pc >> 2) ^ index_key) & self._index_mask
            dec_tag = tag_key ^ self._tag_row_keys[set_index]
            dec_target = target_key ^ self._target_row_keys[set_index]
        else:
            result = self.lookup(pc, thread_id)
            self.update(pc, target, thread_id, branch_type)
            return result.hit, result.target
        enc_tag = ((pc >> self._tag_shift) & self._tag_mask) ^ dec_tag
        self.lookups += 1
        clock = self._clock + 1
        valid = self._valid
        tags = self._tags
        targets = self._targets
        last = self._last
        base = set_index * self._n_ways
        end = base + self._n_ways
        hit = False
        btb_target = None
        victim = -1
        for i in range(base, end):
            if valid[i] and tags[i] == enc_tag:
                last[i] = clock
                self.hits += 1
                hit = True
                btb_target = (targets[i] ^ dec_target) & self._target_mask
                victim = i
                break
        # Inlined update(): unconditional branches always install/refresh.
        clock += 1
        if victim < 0:
            for i in range(base, end):
                if not valid[i]:
                    victim = i
                    break
        if victim < 0:
            victim = base
            low = last[base]
            for i in range(base + 1, end):
                if last[i] < low:
                    low = last[i]
                    victim = i
        valid[victim] = True
        tags[victim] = enc_tag
        targets[victim] = (target & self._target_mask) ^ dec_target
        self._types[victim] = int(branch_type)
        self._owners[victim] = thread_id
        last[victim] = clock
        self._clock = clock
        return hit, btb_target

    def lookup(self, pc: int, thread_id: int = 0) -> BTBResult:
        """Predict the target of the branch at ``pc`` for a hardware thread."""
        self.lookups += 1
        self._clock += 1
        set_index = self.set_of(pc, thread_id)
        lookup_tag = self.tag_of(pc)
        base = set_index * self._n_ways
        tracks_owner = self._isolation.tracks_owner
        for way in range(self._n_ways):
            i = base + way
            if not self._valid[i]:
                continue
            if tracks_owner and self._owners[i] != thread_id:
                # Thread-ID-tagged BTB (Precise Flush): entries are only
                # visible to the hardware thread that installed them.
                continue
            stored_tag = self._isolation.decode(self._tags[i], self._tag_bits,
                                                thread_id, self, set_index)
            if stored_tag == lookup_tag:
                target = self._isolation.decode(self._targets[i], self._target_bits,
                                                thread_id, self, set_index)
                self._last[i] = self._clock
                self.hits += 1
                return BTBResult(hit=True, target=target & self._target_mask,
                                 set_index=set_index, way=way)
        return BTBResult(hit=False, target=None, set_index=set_index, way=None)

    def update(self, pc: int, target: int, thread_id: int = 0,
               branch_type: BranchType = BranchType.DIRECT) -> int:
        """Install or refresh the entry for a *taken* branch.

        Following the BTB update rule exploited by SBPA (Section 2.1), the BTB
        is only updated for taken branches; the caller enforces that.

        Returns:
            The way that was written (useful for tests and attack analysis).
        """
        self._clock += 1
        if self._fast:
            set_index = (pc >> 2) & self._index_mask
            encoded_tag = (pc >> self._tag_shift) & self._tag_mask
            encoded_target = target & self._target_mask
        elif self._xor_fast:
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, tag_key, target_key = masks
            set_index = ((pc >> 2) ^ index_key) & self._index_mask
            encoded_tag = (((pc >> self._tag_shift) & self._tag_mask)
                           ^ tag_key ^ self._tag_row_keys[set_index])
            encoded_target = ((target & self._target_mask)
                              ^ target_key ^ self._target_row_keys[set_index])
        else:
            set_index = self.set_of(pc, thread_id)
            lookup_tag = self.tag_of(pc)
            encoded_tag = self._isolation.encode(lookup_tag, self._tag_bits,
                                                 thread_id, self,
                                                 set_index) & self._tag_mask
            encoded_target = self._isolation.encode(target & self._target_mask,
                                                    self._target_bits, thread_id,
                                                    self, set_index) & self._target_mask
        valid = self._valid
        tags = self._tags
        last = self._last
        base = set_index * self._n_ways
        end = base + self._n_ways

        # Re-use a way whose stored tag matches (same branch, same thread),
        # else an invalid way, else the LRU way (first minimum, matching the
        # original ``min()`` tie-break).
        victim = -1
        for i in range(base, end):
            if valid[i] and tags[i] == encoded_tag:
                victim = i
                break
        if victim < 0:
            for i in range(base, end):
                if not valid[i]:
                    victim = i
                    break
        if victim < 0:
            victim = base
            low = last[base]
            for i in range(base + 1, end):
                if last[i] < low:
                    low = last[i]
                    victim = i

        valid[victim] = True
        tags[victim] = encoded_tag
        self._targets[victim] = encoded_target
        self._types[victim] = int(branch_type)
        self._owners[victim] = thread_id
        last[victim] = self._clock
        return victim - base

    # -- flush protocol -------------------------------------------------------
    def flush(self) -> None:
        """Invalidate every entry (Complete Flush).

        Fields are reset in place so references bound by the closure kernels
        stay valid.
        """
        total = self._n_sets * self._n_ways
        self._valid[:] = [False] * total
        self._owners[:] = [_NO_OWNER] * total

    def flush_thread(self, thread_id: int) -> None:
        """Invalidate entries installed by one hardware thread (Precise Flush)."""
        valid = self._valid
        owners = self._owners
        for i, owner in enumerate(owners):
            if owner == thread_id and valid[i]:
                valid[i] = False
                owners[i] = _NO_OWNER

    # -- introspection (tests, attacks, cost model) ---------------------------
    def _entry_at(self, i: int) -> BTBEntry:
        return BTBEntry(self._valid[i], self._tags[i], self._targets[i],
                        self._types[i], self._owners[i], self._last[i])

    def entries_in_set(self, set_index: int) -> List[BTBEntry]:
        """Raw (stored/encoded) entry snapshots of a physical set."""
        base = (set_index & self._index_mask) * self._n_ways
        return [self._entry_at(base + way) for way in range(self._n_ways)]

    def valid_entry_count(self, thread_id: Optional[int] = None) -> int:
        """Number of valid entries, optionally restricted to one owner."""
        if thread_id is None:
            return sum(1 for v in self._valid if v)
        return sum(1 for v, owner in zip(self._valid, self._owners)
                   if v and owner == thread_id)

    def snapshot(self) -> List[List[BTBEntry]]:
        """Deep copy of all entries (attack framework uses it to diff state)."""
        return [self.entries_in_set(s) for s in range(self._n_sets)]

    def raw_sets(self) -> List[List[tuple]]:
        """Raw stored ``(valid, tag, target)`` triples per set (tests)."""
        return [[(self._valid[i], self._tags[i], self._targets[i])
                 for i in range(s * self._n_ways, (s + 1) * self._n_ways)]
                for s in range(self._n_sets)]

    def reset_stats(self) -> None:
        """Clear lookup/hit counters (state is untouched)."""
        self.lookups = 0
        self.hits = 0
