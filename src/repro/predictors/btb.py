"""Set-associative Branch Target Buffer (BTB).

The BTB stores, per entry, a valid bit, a branch-type field, a partial tag
taken from the upper PC bits and the predicted target address.  It is the
structure attacked by Spectre-V2-style malicious training, Branch Shadowing
and the contention-based SBPA / Jump-over-ASLR attacks, and the structure
protected by **XOR-BTB** and **Noisy-XOR-BTB** (Section 5.1, Figure 4(a)):

* the *tag* and the *target address* are XORed with the thread-private
  content key before being written and after being read;
* with Noisy-XOR-BTB the *set index* is additionally XORed with the
  thread-private index key.

Both transformations are delegated to the attached
:class:`repro.predictors.table.TableIsolation` policy so that the same BTB
code serves the Baseline, flush-based and XOR-based configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .table import (ROW_DIVERSIFIER, IdentityIsolation, TableIsolation,
                    is_passthrough_isolation, supports_fused_xor)
from ..types import BranchType

__all__ = ["BTBEntry", "BTBResult", "BranchTargetBuffer"]

_NO_OWNER = -1
_CONDITIONAL_INT = int(BranchType.CONDITIONAL)


@dataclass(slots=True)
class BTBEntry:
    """One BTB way.

    The ``tag`` and ``target`` fields hold the *stored* (possibly encoded)
    values; decoding happens on lookup with the key of the requesting thread.
    """

    valid: bool = False
    tag: int = 0
    target: int = 0
    branch_type: int = int(BranchType.DIRECT)
    owner: int = _NO_OWNER
    last_use: int = 0


@dataclass(slots=True)
class BTBResult:
    """Result of a BTB lookup.

    Attributes:
        hit: True when a way's decoded tag matched the lookup PC.
        target: decoded predicted target (``None`` on a miss).
        set_index: physical set index that was probed.
        way: hitting way (``None`` on a miss).
    """

    hit: bool
    target: Optional[int]
    set_index: int
    way: Optional[int]


class BranchTargetBuffer:
    """Set-associative branch target buffer with pluggable isolation.

    Args:
        n_sets: number of sets (power of two).
        n_ways: associativity.
        tag_bits: width of the stored partial tag.
        target_bits: width of the stored target address.
        isolation: isolation policy (index mapping + tag/target encoding).
    """

    def __init__(self, n_sets: int = 512, n_ways: int = 2, *, tag_bits: int = 16,
                 target_bits: int = 32,
                 isolation: Optional[TableIsolation] = None) -> None:
        if n_sets < 1 or n_sets & (n_sets - 1):
            raise ValueError("n_sets must be a positive power of two")
        if n_ways < 1:
            raise ValueError("n_ways must be positive")
        self._n_sets = n_sets
        self._n_ways = n_ways
        self._index_bits = n_sets.bit_length() - 1
        self._index_mask = n_sets - 1
        self._tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self._target_bits = target_bits
        self._target_mask = (1 << target_bits) - 1
        self._tag_shift = 2 + self._index_bits
        self._isolation = isolation if isolation is not None else IdentityIsolation()
        self._fast = is_passthrough_isolation(self._isolation)
        self._xor_fast = (not self._fast) and supports_fused_xor(self._isolation)
        # Per-thread (index_key, tag_key, target_key) masks of the fused-XOR
        # fast path, re-randomised at switch time via the isolation policy's
        # mask-cache protocol; the per-set row-diversifier vectors are
        # thread-independent and built lazily.
        self._xor_masks: dict = {}
        self._tag_row_keys: Optional[List[int]] = None
        self._target_row_keys: Optional[List[int]] = None
        self._sets: List[List[BTBEntry]] = [
            [BTBEntry() for _ in range(n_ways)] for _ in range(n_sets)]
        self._clock = 0
        self.name = "btb"
        self.lookups = 0
        self.hits = 0
        if self._xor_fast:
            self._isolation.register_fast_mask_cache(self, self._xor_masks,
                                                     self._build_xor_masks)
        self._isolation.register_flushable(self)

    # -- geometry -------------------------------------------------------------
    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self._n_sets

    @property
    def n_ways(self) -> int:
        """Associativity."""
        return self._n_ways

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return self._index_bits

    @property
    def tag_bits(self) -> int:
        """Width of the partial tag."""
        return self._tag_bits

    @property
    def target_bits(self) -> int:
        """Width of the stored target."""
        return self._target_bits

    @property
    def entry_bits(self) -> int:
        """Bits per entry (valid + type + tag + target), for the cost model."""
        return 1 + 3 + self._tag_bits + self._target_bits

    @property
    def storage_bits(self) -> int:
        """Total storage in bits."""
        return self._n_sets * self._n_ways * self.entry_bits

    @property
    def isolation(self) -> TableIsolation:
        """The attached isolation policy."""
        return self._isolation

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 when no lookups were made)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups

    # -- fused-XOR mask maintenance -------------------------------------------
    def _row_diversifier_keys(self) -> None:
        """Build the per-set row-diffusion vectors (thread-independent)."""
        if self._tag_row_keys is not None:
            return
        if getattr(self._isolation, "_row_diversified", False):
            self._tag_row_keys = [(s * ROW_DIVERSIFIER) & self._tag_mask
                                  for s in range(self._n_sets)]
            self._target_row_keys = [(s * ROW_DIVERSIFIER) & self._target_mask
                                     for s in range(self._n_sets)]
        else:
            zeros = [0] * self._n_sets
            self._tag_row_keys = zeros
            self._target_row_keys = zeros

    def _build_xor_masks(self, thread_id: int) -> tuple:
        """(Re)compute the fused-XOR masks for one hardware thread."""
        self._row_diversifier_keys()
        isolation = self._isolation
        masks = (isolation.fused_index_key(thread_id, self._index_bits, self),
                 isolation.fused_content_key(thread_id, self._tag_bits, self),
                 isolation.fused_content_key(thread_id, self._target_bits, self))
        self._xor_masks[thread_id] = masks
        return masks

    # -- address decomposition ------------------------------------------------
    def logical_set_of(self, pc: int) -> int:
        """Set index derived from the PC before any index encoding."""
        return (pc >> 2) & self._index_mask

    def set_of(self, pc: int, thread_id: int = 0) -> int:
        """Physical set index actually probed for a PC by a given thread."""
        logical = self.logical_set_of(pc)
        mapped = self._isolation.map_index(logical, self._index_bits, thread_id, self)
        return mapped & self._index_mask

    def tag_of(self, pc: int) -> int:
        """Partial tag derived from the upper PC bits."""
        return (pc >> self._tag_shift) & self._tag_mask

    # -- prediction protocol --------------------------------------------------
    def lookup_fast(self, pc: int, thread_id: int = 0) -> tuple:
        """Allocation-free lookup used by the batched engine hot path.

        Behaviourally identical to :meth:`lookup` (same counters, same LRU
        update) but returns a plain ``(hit, target)`` tuple instead of a
        :class:`BTBResult`, and skips the isolation virtual dispatch entirely
        when the attached policy is a passthrough (baseline / flush) or a
        plain-XOR encoder (fused thread-private masks).
        """
        if self._fast:
            self.lookups += 1
            clock = self._clock + 1
            self._clock = clock
            lookup_tag = (pc >> self._tag_shift) & self._tag_mask
            for entry in self._sets[(pc >> 2) & self._index_mask]:
                if entry.valid and entry.tag == lookup_tag:
                    entry.last_use = clock
                    self.hits += 1
                    return True, entry.target & self._target_mask
            return False, None
        if self._xor_fast:
            # Fused-XOR probe: encode the lookup tag once and compare raw
            # stored tags (XOR is a bijection, so this equals decoding every
            # stored tag); decode the target only on a hit.
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, tag_key, target_key = masks
            self.lookups += 1
            clock = self._clock + 1
            self._clock = clock
            set_index = ((pc >> 2) ^ index_key) & self._index_mask
            enc_tag = (((pc >> self._tag_shift) & self._tag_mask)
                       ^ tag_key ^ self._tag_row_keys[set_index])
            for entry in self._sets[set_index]:
                if entry.valid and entry.tag == enc_tag:
                    entry.last_use = clock
                    self.hits += 1
                    return True, ((entry.target ^ target_key
                                   ^ self._target_row_keys[set_index])
                                  & self._target_mask)
            return False, None
        result = self.lookup(pc, thread_id)
        return result.hit, result.target

    def execute_conditional_fast(self, pc: int, target: int, taken: bool,
                                 thread_id: int = 0) -> tuple:
        """Fused conditional-branch probe: lookup plus update-if-taken.

        Behaviourally identical to :meth:`lookup_fast` followed by
        :meth:`update` (for taken branches), but computes the set index and
        tag once.  Falls back to the two-call sequence when the isolation
        policy is neither a passthrough nor a fused-XOR encoder.
        """
        if self._fast:
            set_index = (pc >> 2) & self._index_mask
            enc_tag = (pc >> self._tag_shift) & self._tag_mask
            enc_target = target & self._target_mask
            dec_tag_key = dec_target_key = 0
        elif self._xor_fast:
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, tag_key, target_key = masks
            set_index = ((pc >> 2) ^ index_key) & self._index_mask
            dec_tag_key = tag_key ^ self._tag_row_keys[set_index]
            dec_target_key = target_key ^ self._target_row_keys[set_index]
            enc_tag = ((pc >> self._tag_shift) & self._tag_mask) ^ dec_tag_key
            enc_target = (target & self._target_mask) ^ dec_target_key
        else:
            result = self.lookup(pc, thread_id)
            if taken:
                self.update(pc, target, thread_id, BranchType.CONDITIONAL)
            return result.hit, result.target
        self.lookups += 1
        clock = self._clock + 1
        ways = self._sets[set_index]
        hit = False
        btb_target = None
        victim = None
        for entry in ways:
            if entry.valid and entry.tag == enc_tag:
                entry.last_use = clock
                self.hits += 1
                hit = True
                btb_target = (entry.target ^ dec_target_key) & self._target_mask
                victim = entry
                break
        if taken:
            # Inlined update(): re-use the way matched during the lookup
            # (update() would re-find the same first matching way), else an
            # invalid way, else the LRU way (first minimum, matching min()'s
            # tie-break).
            clock += 1
            if victim is None:
                for entry in ways:
                    if not entry.valid:
                        victim = entry
                        break
            if victim is None:
                victim = ways[0]
                for entry in ways:
                    if entry.last_use < victim.last_use:
                        victim = entry
            victim.valid = True
            victim.tag = enc_tag
            victim.target = enc_target
            victim.branch_type = _CONDITIONAL_INT
            victim.owner = thread_id
            victim.last_use = clock
        self._clock = clock
        return hit, btb_target

    def lookup(self, pc: int, thread_id: int = 0) -> BTBResult:
        """Predict the target of the branch at ``pc`` for a hardware thread."""
        self.lookups += 1
        self._clock += 1
        set_index = self.set_of(pc, thread_id)
        lookup_tag = self.tag_of(pc)
        for way, entry in enumerate(self._sets[set_index]):
            if not entry.valid:
                continue
            if self._isolation.tracks_owner and entry.owner != thread_id:
                # Thread-ID-tagged BTB (Precise Flush): entries are only
                # visible to the hardware thread that installed them.
                continue
            stored_tag = self._isolation.decode(entry.tag, self._tag_bits, thread_id,
                                                self, set_index)
            if stored_tag == lookup_tag:
                target = self._isolation.decode(entry.target, self._target_bits,
                                                thread_id, self, set_index)
                entry.last_use = self._clock
                self.hits += 1
                return BTBResult(hit=True, target=target & self._target_mask,
                                 set_index=set_index, way=way)
        return BTBResult(hit=False, target=None, set_index=set_index, way=None)

    def update(self, pc: int, target: int, thread_id: int = 0,
               branch_type: BranchType = BranchType.DIRECT) -> int:
        """Install or refresh the entry for a *taken* branch.

        Following the BTB update rule exploited by SBPA (Section 2.1), the BTB
        is only updated for taken branches; the caller enforces that.

        Returns:
            The way that was written (useful for tests and attack analysis).
        """
        self._clock += 1
        if self._fast:
            set_index = (pc >> 2) & self._index_mask
            encoded_tag = (pc >> self._tag_shift) & self._tag_mask
            encoded_target = target & self._target_mask
        elif self._xor_fast:
            masks = self._xor_masks.get(thread_id)
            if masks is None:
                masks = self._build_xor_masks(thread_id)
            index_key, tag_key, target_key = masks
            set_index = ((pc >> 2) ^ index_key) & self._index_mask
            encoded_tag = (((pc >> self._tag_shift) & self._tag_mask)
                           ^ tag_key ^ self._tag_row_keys[set_index])
            encoded_target = ((target & self._target_mask)
                              ^ target_key ^ self._target_row_keys[set_index])
        else:
            set_index = self.set_of(pc, thread_id)
            lookup_tag = self.tag_of(pc)
            encoded_tag = self._isolation.encode(lookup_tag, self._tag_bits,
                                                 thread_id, self,
                                                 set_index) & self._tag_mask
            encoded_target = self._isolation.encode(target & self._target_mask,
                                                    self._target_bits, thread_id,
                                                    self, set_index) & self._target_mask
        ways = self._sets[set_index]

        # Re-use a way whose decoded tag matches (same branch, same thread).
        victim_way = None
        for way, entry in enumerate(ways):
            if entry.valid and entry.tag == encoded_tag:
                victim_way = way
                break
        if victim_way is None:
            for way, entry in enumerate(ways):
                if not entry.valid:
                    victim_way = way
                    break
        if victim_way is None:
            victim_way = min(range(self._n_ways), key=lambda w: ways[w].last_use)

        entry = ways[victim_way]
        entry.valid = True
        entry.tag = encoded_tag
        entry.target = encoded_target
        entry.branch_type = int(branch_type)
        entry.owner = thread_id
        entry.last_use = self._clock
        return victim_way

    # -- flush protocol -------------------------------------------------------
    def flush(self) -> None:
        """Invalidate every entry (Complete Flush)."""
        for ways in self._sets:
            for entry in ways:
                entry.valid = False
                entry.owner = _NO_OWNER

    def flush_thread(self, thread_id: int) -> None:
        """Invalidate entries installed by one hardware thread (Precise Flush)."""
        for ways in self._sets:
            for entry in ways:
                if entry.valid and entry.owner == thread_id:
                    entry.valid = False
                    entry.owner = _NO_OWNER

    # -- introspection (tests, attacks, cost model) ---------------------------
    def entries_in_set(self, set_index: int) -> List[BTBEntry]:
        """Raw (stored/encoded) entries of a physical set."""
        return self._sets[set_index & self._index_mask]

    def valid_entry_count(self, thread_id: Optional[int] = None) -> int:
        """Number of valid entries, optionally restricted to one owner."""
        count = 0
        for ways in self._sets:
            for entry in ways:
                if entry.valid and (thread_id is None or entry.owner == thread_id):
                    count += 1
        return count

    def snapshot(self) -> List[List[BTBEntry]]:
        """Deep-ish copy of all entries (attack framework uses it to diff state)."""
        return [[BTBEntry(e.valid, e.tag, e.target, e.branch_type, e.owner, e.last_use)
                 for e in ways] for ways in self._sets]

    def reset_stats(self) -> None:
        """Clear lookup/hit counters (state is untouched)."""
        self.lookups = 0
        self.hits = 0
