"""TAGE-SC-L: TAGE + Statistical Corrector + Loop predictor.

TAGE-SC-L (Seznec, CBP-5) is the most accurate predictor in the paper's SMT
study (Table 2 lists a 66.6 KB configuration; Figure 6(b) shows where the
content and index keys attach).  The composition is:

1. TAGE produces a prediction and a confidence estimate;
2. the loop predictor overrides TAGE for confidently captured loops;
3. the statistical corrector may override the combined prediction when its
   signed vote is strong and disagrees.
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPrediction, DirectionPredictor
from .counters import counter_strength
from .loop import LoopPredictor
from .statistical_corrector import StatisticalCorrector
from .table import PredictorTable, TableIsolation
from .tage import TageConfig, TagePredictor

__all__ = ["TageScLPredictor"]


class TageScLPredictor(DirectionPredictor):
    """TAGE + SC + L composite predictor.

    Args:
        tage_config: sizing of the TAGE component; defaults to a configuration
            slightly larger than the FPGA TAGE, mirroring Table 2.
        loop_entries: number of loop-table entries.
        sc_entries: entries per statistical-corrector component table.
        isolation: isolation policy applied to every table.
        word_bits: physical word width used for base-PHT packing.
    """

    name = "tage_sc_l"

    def __init__(self, tage_config: Optional[TageConfig] = None,
                 loop_entries: int = 256, sc_entries: int = 1024, *,
                 isolation: Optional[TableIsolation] = None,
                 word_bits: int = 32) -> None:
        super().__init__(isolation)
        if tage_config is None:
            tage_config = TageConfig(n_tables=8, table_entries=4096,
                                     min_history=8, max_history=256)
        self._tage = TagePredictor(tage_config, isolation=isolation,
                                   word_bits=word_bits)
        self._loop = LoopPredictor(loop_entries, isolation=isolation)
        self._sc = StatisticalCorrector(sc_entries, isolation=isolation)

    def _tage_confident(self, tage_pred: DirectionPrediction) -> bool:
        meta = tage_pred.meta
        if meta["provider"] < 0:
            base = meta["base"]
            return counter_strength(base.meta["counter"]) > 0
        return not meta["use_alt"]

    def lookup(self, pc: int, thread_id: int = 0) -> DirectionPrediction:
        tage_pred = self._tage.lookup(pc, thread_id)
        loop_pred = self._loop.lookup(pc, thread_id)
        if loop_pred.valid:
            pre_sc_taken = loop_pred.taken
            confident = True
        else:
            pre_sc_taken = tage_pred.taken
            confident = self._tage_confident(tage_pred)
        ghr_value = self._tage.global_history.value(thread_id)
        taken = self._sc.correct(pc, ghr_value, pre_sc_taken, confident, thread_id)
        return DirectionPrediction(taken=taken, meta={
            "tage": tage_pred,
            "loop_valid": loop_pred.valid,
            "pre_sc_taken": pre_sc_taken,
            "ghr_value": ghr_value,
        })

    def update(self, pc: int, taken: bool,
               prediction: Optional[DirectionPrediction] = None,
               thread_id: int = 0) -> None:
        if prediction is None or "tage" not in prediction.meta:
            prediction = self.lookup(pc, thread_id)
        meta = prediction.meta
        self._sc.update(pc, taken, meta["ghr_value"], meta["pre_sc_taken"],
                        prediction.taken, thread_id)
        self._loop.update(pc, taken, thread_id)
        self._tage.update(pc, taken, meta["tage"], thread_id)

    def tables(self) -> List[PredictorTable]:
        return self._tage.tables() + [self._loop.table] + self._sc.tables()

    @property
    def tage(self) -> TagePredictor:
        """The TAGE component."""
        return self._tage

    @property
    def loop(self) -> LoopPredictor:
        """The loop-predictor component."""
        return self._loop

    @property
    def statistical_corrector(self) -> StatisticalCorrector:
        """The statistical-corrector component."""
        return self._sc

    def flush(self) -> None:
        self._tage.flush()
        self._loop.flush()
        self._sc.flush()

    def flush_thread(self, thread_id: int) -> None:
        self._tage.flush_thread(thread_id)
        self._loop.flush_thread(thread_id)
        self._sc.flush_thread(thread_id)
