"""Return address stack (RAS).

The paper's threat model (Section 3) notes that commercial SMT processors
already keep the RAS thread-private, so it is not a sharing-based attack
surface; the proposed mechanisms nevertheless apply to a shared RAS.  We model
the common case: a fixed-depth, per-hardware-thread circular stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["ReturnAddressStack"]


class ReturnAddressStack:
    """Per-hardware-thread circular return address stack.

    Args:
        depth: number of entries per hardware thread.
    """

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError("RAS depth must be positive")
        self._depth = depth
        self._stacks: Dict[int, List[int]] = {}
        self._tops: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}

    @property
    def depth(self) -> int:
        """Number of entries per hardware thread."""
        return self._depth

    def _ensure(self, thread_id: int) -> None:
        if thread_id not in self._stacks:
            self._stacks[thread_id] = [0] * self._depth
            self._tops[thread_id] = 0
            self._counts[thread_id] = 0

    def push(self, return_address: int, thread_id: int = 0) -> None:
        """Push the return address of a call instruction."""
        self._ensure(thread_id)
        top = self._tops[thread_id]
        self._stacks[thread_id][top] = return_address
        self._tops[thread_id] = (top + 1) % self._depth
        self._counts[thread_id] = min(self._counts[thread_id] + 1, self._depth)

    def pop(self, thread_id: int = 0) -> Optional[int]:
        """Pop the predicted target of a return instruction.

        Returns ``None`` when the stack is empty (predicted as a miss).
        """
        self._ensure(thread_id)
        if self._counts[thread_id] == 0:
            return None
        self._tops[thread_id] = (self._tops[thread_id] - 1) % self._depth
        self._counts[thread_id] -= 1
        return self._stacks[thread_id][self._tops[thread_id]]

    def occupancy(self, thread_id: int = 0) -> int:
        """Number of valid entries for one hardware thread."""
        return self._counts.get(thread_id, 0)

    def flush(self) -> None:
        """Clear all threads' stacks."""
        self._stacks.clear()
        self._tops.clear()
        self._counts.clear()

    def flush_thread(self, thread_id: int) -> None:
        """Clear one thread's stack."""
        self._stacks.pop(thread_id, None)
        self._tops.pop(thread_id, None)
        self._counts.pop(thread_id, None)
