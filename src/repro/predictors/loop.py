"""Loop predictor.

The loop predictor captures branches that exit a loop after a regular number
of iterations — a pattern the counter-based components mispredict exactly once
per loop.  LTAGE and TAGE-SC-L both include one (the paper's TAGE-SC-L
configuration uses a 256-entry, 4-way associative loop table).

Entries are packed into a :class:`repro.predictors.table.PredictorTable` so
that the isolation mechanisms cover the loop table as well.
"""

from __future__ import annotations

from typing import Optional

from .table import PredictorTable, TableIsolation

__all__ = ["LoopPredictor", "LoopPrediction"]


class LoopPrediction:
    """Result of a loop-predictor lookup.

    Attributes:
        valid: True when a confident loop entry matched the branch.
        taken: predicted direction when ``valid``.
    """

    __slots__ = ("valid", "taken", "index")

    def __init__(self, valid: bool, taken: bool, index: int) -> None:
        self.valid = valid
        self.taken = taken
        self.index = index


class LoopPredictor:
    """Direct-mapped loop predictor.

    Each entry stores a partial tag, the learned trip count, the current
    iteration count and a confidence counter.  The entry predicts *taken*
    until the current iteration reaches the learned trip count, then predicts
    *not taken* once.  Only confident entries override the main predictor.

    Args:
        n_entries: number of loop entries (power of two).
        tag_bits: partial tag width.
        iter_bits: width of the trip/iteration counters.
        confidence_threshold: confidence needed before predictions are used.
        isolation: isolation policy applied to the loop table.
    """

    def __init__(self, n_entries: int = 256, *, tag_bits: int = 10,
                 iter_bits: int = 10, confidence_threshold: int = 3,
                 isolation: Optional[TableIsolation] = None) -> None:
        self._tag_bits = tag_bits
        self._iter_bits = iter_bits
        self._conf_bits = 2
        self._tag_mask = (1 << tag_bits) - 1
        self._iter_mask = (1 << iter_bits) - 1
        self._conf_mask = (1 << self._conf_bits) - 1
        self._threshold = min(confidence_threshold, self._conf_mask)
        entry_bits = tag_bits + 2 * iter_bits + self._conf_bits
        self._table = PredictorTable(n_entries, entry_bits, reset_value=0,
                                     name="loop", isolation=isolation)
        self._index_mask = n_entries - 1

    # -- entry packing --------------------------------------------------------
    def _pack(self, tag: int, trip: int, current: int, confidence: int) -> int:
        return (((tag & self._tag_mask) << (2 * self._iter_bits + self._conf_bits))
                | ((trip & self._iter_mask) << (self._iter_bits + self._conf_bits))
                | ((current & self._iter_mask) << self._conf_bits)
                | (confidence & self._conf_mask))

    def _unpack(self, word: int):
        confidence = word & self._conf_mask
        current = (word >> self._conf_bits) & self._iter_mask
        trip = (word >> (self._conf_bits + self._iter_bits)) & self._iter_mask
        tag = (word >> (self._conf_bits + 2 * self._iter_bits)) & self._tag_mask
        return tag, trip, current, confidence

    def _index_of(self, pc: int) -> int:
        return (pc >> 2) & self._index_mask

    def _tag_of(self, pc: int) -> int:
        return (pc >> (2 + self._index_mask.bit_length())) & self._tag_mask

    # -- prediction protocol --------------------------------------------------
    def lookup(self, pc: int, thread_id: int = 0) -> LoopPrediction:
        """Predict the branch at ``pc`` if a confident loop entry matches."""
        index = self._index_of(pc)
        word = self._table.read(index, thread_id)
        tag, trip, current, confidence = self._unpack(word)
        if word == 0 or tag != self._tag_of(pc) or confidence < self._threshold:
            return LoopPrediction(valid=False, taken=False, index=index)
        # ``current`` counts the taken back-edges seen so far in this loop
        # execution; the branch stays taken until that reaches the learned
        # trip count.
        taken = current < trip
        return LoopPrediction(valid=True, taken=taken, index=index)

    def update(self, pc: int, taken: bool, thread_id: int = 0) -> None:
        """Train the loop entry for ``pc`` with the resolved direction."""
        index = self._index_of(pc)
        lookup_tag = self._tag_of(pc)
        word = self._table.read(index, thread_id)
        tag, trip, current, confidence = self._unpack(word)

        if word == 0 or tag != lookup_tag:
            # Allocate only when we see the loop exit (a not-taken outcome),
            # so the first learned trip count is meaningful.
            if not taken:
                self._table.write(index, self._pack(lookup_tag, 0, 0, 0), thread_id)
            return

        if taken:
            current = min(current + 1, self._iter_mask)
            self._table.write(index, self._pack(tag, trip, current, confidence),
                              thread_id)
            return

        # Loop exit: compare the observed trip count with the learned one.
        observed = current
        if observed == trip and trip != 0:
            confidence = min(confidence + 1, self._conf_mask)
        else:
            trip = observed
            confidence = 0
        self._table.write(index, self._pack(tag, trip, 0, confidence), thread_id)

    # -- structure access -----------------------------------------------------
    @property
    def table(self) -> PredictorTable:
        """The underlying loop table."""
        return self._table

    def flush(self) -> None:
        """Clear all loop entries."""
        self._table.flush()

    def flush_thread(self, thread_id: int) -> None:
        """Clear loop entries owned by one hardware thread."""
        self._table.flush_thread(thread_id)
