"""Branch history registers.

Direction predictors consume several kinds of history:

* a *global history register* (GHR) of recent conditional-branch outcomes,
* a *path history* of recent branch addresses,
* *local history* per static branch (Tournament / TAGE-SC-L local components).

All of them are modelled here as per-hardware-thread structures.  The paper's
threat model (Section 3) notes that commercial SMT cores already keep the RAS
thread-private; we likewise keep the history *registers* thread-private (they
are tiny), while the history *tables* they index are the shared structures
that need isolation.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["GlobalHistory", "PathHistory", "LocalHistoryTable", "fold_history"]


def fold_history(history: int, history_bits: int, folded_bits: int) -> int:
    """Fold a long history register down to ``folded_bits`` bits by XOR.

    TAGE-style predictors use very long global histories (hundreds or
    thousands of bits); indexing a table requires folding the history into the
    index width.  The standard approach XORs successive ``folded_bits``-wide
    chunks together.

    Args:
        history: history register value (unsigned).
        history_bits: number of meaningful bits in ``history``.
        folded_bits: desired output width.

    Returns:
        The folded value in ``[0, 2**folded_bits)``.
    """
    if folded_bits <= 0:
        return 0
    mask = (1 << folded_bits) - 1
    if history_bits <= folded_bits:
        return history & mask
    folded = 0
    remaining = history
    bits_left = history_bits
    while bits_left > 0:
        folded ^= remaining & mask
        remaining >>= folded_bits
        bits_left -= folded_bits
    return folded & mask


class GlobalHistory:
    """Per-hardware-thread global branch history register.

    The register shifts in one bit per conditional branch outcome (1 = taken).
    Arbitrarily long histories are supported so that the same class serves the
    12-bit Tournament global history and the 3000-bit TAGE-SC-L history.
    """

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("history length must be positive")
        self._bits = bits
        self._mask = (1 << bits) - 1
        self._values: Dict[int, int] = {}

    @property
    def bits(self) -> int:
        """Length of the history register in bits."""
        return self._bits

    def value(self, thread_id: int = 0) -> int:
        """Current history register value for a hardware thread."""
        return self._values.get(thread_id, 0)

    def low_bits(self, n: int, thread_id: int = 0) -> int:
        """Return the ``n`` most recent outcome bits."""
        return self.value(thread_id) & ((1 << n) - 1)

    def folded(self, n: int, thread_id: int = 0) -> int:
        """Return the full history folded down to ``n`` bits."""
        return fold_history(self.value(thread_id), self._bits, n)

    def push(self, taken: bool, thread_id: int = 0) -> None:
        """Shift a resolved branch outcome into the history register."""
        current = self._values.get(thread_id, 0)
        self._values[thread_id] = ((current << 1) | int(taken)) & self._mask

    def set(self, value: int, thread_id: int = 0) -> None:
        """Force the history register to an absolute value (tests / recovery)."""
        self._values[thread_id] = value & self._mask

    def clear(self, thread_id: int | None = None) -> None:
        """Clear the history of one thread, or of all threads when ``None``."""
        if thread_id is None:
            self._values.clear()
        else:
            self._values.pop(thread_id, None)


class PathHistory:
    """Per-hardware-thread path history (recent branch address bits).

    Each retired branch contributes a few low-order PC bits; the Tournament
    predictor and TAGE use the path history to decorrelate table indices.
    """

    def __init__(self, bits: int, pc_bits_per_branch: int = 2) -> None:
        if bits < 1:
            raise ValueError("path history length must be positive")
        self._bits = bits
        self._mask = (1 << bits) - 1
        self._pc_bits = pc_bits_per_branch
        self._values: Dict[int, int] = {}

    @property
    def bits(self) -> int:
        """Length of the path history register in bits."""
        return self._bits

    def value(self, thread_id: int = 0) -> int:
        """Current path history value for a hardware thread."""
        return self._values.get(thread_id, 0)

    def folded(self, n: int, thread_id: int = 0) -> int:
        """Return the path history folded down to ``n`` bits."""
        return fold_history(self.value(thread_id), self._bits, n)

    def push(self, pc: int, thread_id: int = 0) -> None:
        """Shift low-order PC bits of a retired branch into the register."""
        current = self._values.get(thread_id, 0)
        contribution = (pc >> 2) & ((1 << self._pc_bits) - 1)
        self._values[thread_id] = ((current << self._pc_bits) | contribution) & self._mask

    def clear(self, thread_id: int | None = None) -> None:
        """Clear the path history of one thread, or of all threads when ``None``."""
        if thread_id is None:
            self._values.clear()
        else:
            self._values.pop(thread_id, None)


class LocalHistoryTable:
    """First-level local history table (per static branch pattern history).

    The Alpha-21264-style Tournament predictor keeps an 11-bit pattern of
    recent outcomes for up to 2048 branches; TAGE-SC-L's statistical corrector
    uses several smaller local history tables.  The table itself is a shared
    structure indexed by PC bits, so unlike the history *registers* it is a
    candidate for isolation; however, because its contents feed a second-level
    table rather than being interpreted directly, the paper treats the
    second-level tables as the encoding targets.  We therefore model it as a
    plain (unencoded) array but give it ``flush`` support so flush-based
    mechanisms cover it.
    """

    def __init__(self, n_entries: int, history_bits: int) -> None:
        if n_entries < 1 or n_entries & (n_entries - 1):
            raise ValueError("n_entries must be a positive power of two")
        self._n_entries = n_entries
        self._index_mask = n_entries - 1
        self._bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._entries = [0] * n_entries

    @property
    def n_entries(self) -> int:
        """Number of local history entries."""
        return self._n_entries

    @property
    def history_bits(self) -> int:
        """Width of each local history pattern."""
        return self._bits

    def index_of(self, pc: int) -> int:
        """Table index for a branch PC."""
        return (pc >> 2) & self._index_mask

    def read(self, pc: int) -> int:
        """Return the local history pattern for a branch."""
        return self._entries[self.index_of(pc)]

    def push(self, pc: int, taken: bool) -> None:
        """Shift a resolved outcome into the branch's local history."""
        idx = self.index_of(pc)
        self._entries[idx] = ((self._entries[idx] << 1) | int(taken)) & self._mask

    def flush(self) -> None:
        """Clear all local histories (used by flush-based isolation)."""
        self._entries = [0] * self._n_entries
