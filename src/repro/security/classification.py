"""Security verdicts and analytic success-probability bounds.

Table 1 of the paper classifies every (mechanism, attack class, core type)
combination as *Defend*, *Mitigate* or *No Protection*.  This module defines
those verdicts, the rule that maps an empirical attack success rate to a
verdict, and the analytic bounds from Section 5.5 (the probability that a
malicious BTB entry is both hit and redirects to a chosen address is
``2^-(N+T)``).
"""

from __future__ import annotations

import enum

__all__ = ["Verdict", "classify_success_rate", "btb_tag_hit_probability",
           "malicious_redirect_probability"]


class Verdict(enum.Enum):
    """Protection verdict for one mechanism against one attack class."""

    DEFEND = "Defend"
    MITIGATE = "Mitigate"
    NO_PROTECTION = "No Protection"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_success_rate(success_rate: float, chance_level: float, *,
                          defend_margin: float = 0.15,
                          mitigate_margin: float = 0.60) -> Verdict:
    """Map an empirical attack success rate to a Table-1 verdict.

    The attacker's *normalised advantage* is how far above blind guessing the
    success rate lies, rescaled so that 0 means guessing and 1 means a
    perfectly reliable attack:

    ``advantage = (success - chance) / (1 - chance)``

    Args:
        success_rate: measured success rate of the best applicable attack.
        chance_level: success rate of a blind-guessing attacker.
        defend_margin: advantages at or below this are classified Defend.
        mitigate_margin: advantages at or below this are classified Mitigate;
            anything higher is No Protection.

    Returns:
        The :class:`Verdict`.
    """
    if not 0.0 <= chance_level < 1.0:
        raise ValueError("chance_level must be in [0, 1)")
    advantage = (success_rate - chance_level) / (1.0 - chance_level)
    advantage = max(0.0, min(1.0, advantage))
    if advantage <= defend_margin:
        return Verdict.DEFEND
    if advantage <= mitigate_margin:
        return Verdict.MITIGATE
    return Verdict.NO_PROTECTION


def btb_tag_hit_probability(tag_bits: int) -> float:
    """Probability that one encoded trap entry produces a BTB tag hit (1/2^T)."""
    if tag_bits < 0:
        raise ValueError("tag_bits must be non-negative")
    return 2.0 ** (-tag_bits)


def malicious_redirect_probability(tag_bits: int, target_bits: int) -> float:
    """Probability a trap both hits and steers to a chosen address (1/2^(N+T)).

    Section 5.5, Scenario 1: the attacker's encoded tag must match the
    victim's encoded lookup *and* the encoded target must decode to the
    attacker's gadget address under the victim's (unknown) key.
    """
    if target_bits < 0:
        raise ValueError("target_bits must be non-negative")
    return 2.0 ** (-(tag_bits + target_bits))
