"""Security-classification analysis (Table 1).

For every isolation mechanism and structure the paper lists, this module runs
the applicable attacks from :mod:`repro.attacks` on both core types and maps
the best attacker success rate to a Defend / Mitigate / No-Protection
verdict.  The paper's own verdicts are included so experiments can report a
cell-by-cell comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..attacks.harness import run_attack
from .classification import Verdict, classify_success_rate

__all__ = ["SecurityCell", "SecurityRow", "build_security_table",
           "PAPER_TABLE1", "TABLE1_ROWS", "TABLE1_COLUMNS"]

#: Columns of Table 1: (core type, attack class).
TABLE1_COLUMNS: List[Tuple[str, str]] = [
    ("single", "reuse"),
    ("single", "contention"),
    ("smt", "reuse"),
    ("smt", "contention"),
]

#: Rows of Table 1: (structure, mechanism label, protection preset).
TABLE1_ROWS: List[Tuple[str, str, str]] = [
    ("btb", "Complete Flush", "complete_flush"),
    ("btb", "Precise Flush", "precise_flush"),
    ("btb", "XOR-BTB", "xor_btb"),
    ("btb", "Noisy-XOR-BTB", "noisy_xor_btb"),
    ("pht", "Complete Flush", "complete_flush"),
    ("pht", "Precise Flush", "precise_flush"),
    ("pht", "XOR-PHT", "xor_pht_simple"),
    ("pht", "Enhanced-XOR-PHT", "xor_pht"),
    ("pht", "Noisy-XOR-PHT", "noisy_xor_pht"),
]

#: The paper's Table 1 verdicts, keyed by (structure, label) then column.
PAPER_TABLE1: Dict[Tuple[str, str], Dict[Tuple[str, str], str]] = {
    ("btb", "Complete Flush"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "No Protection", ("smt", "contention"): "No Protection"},
    ("btb", "Precise Flush"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "Defend", ("smt", "contention"): "No Protection"},
    ("btb", "XOR-BTB"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "Mitigate", ("smt", "contention"): "No Protection"},
    ("btb", "Noisy-XOR-BTB"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "Defend", ("smt", "contention"): "Mitigate"},
    ("pht", "Complete Flush"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "No Protection", ("smt", "contention"): "Defend"},
    ("pht", "Precise Flush"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "Defend", ("smt", "contention"): "No Protection"},
    ("pht", "XOR-PHT"): {
        ("single", "reuse"): "Mitigate", ("single", "contention"): "Defend",
        ("smt", "reuse"): "No Protection", ("smt", "contention"): "Defend"},
    ("pht", "Enhanced-XOR-PHT"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "Mitigate", ("smt", "contention"): "Defend"},
    ("pht", "Noisy-XOR-PHT"): {
        ("single", "reuse"): "Defend", ("single", "contention"): "Defend",
        ("smt", "reuse"): "Mitigate", ("smt", "contention"): "Defend"},
}

#: Attacks applicable to each (structure, attack class, core type) cell.
_APPLICABLE_ATTACKS: Dict[Tuple[str, str, str], List[str]] = {
    ("btb", "reuse", "single"): ["spectre_v2_btb_training", "branch_shadowing"],
    ("btb", "reuse", "smt"): ["spectre_v2_btb_training", "branch_shadowing"],
    ("btb", "contention", "single"): ["sbpa"],
    ("btb", "contention", "smt"): ["sbpa", "jump_over_aslr"],
    ("pht", "reuse", "single"): ["pht_training", "branchscope"],
    ("pht", "reuse", "smt"): ["pht_training", "branchscope",
                              "branchscope_calibrated"],
    # The paper notes there are no contention-based attacks on the PHT: a
    # branch updates the aliased counter in place rather than evicting it.
    ("pht", "contention", "single"): [],
    ("pht", "contention", "smt"): [],
}


@dataclass
class SecurityCell:
    """One Table 1 cell: the verdict for a mechanism against an attack class.

    Attributes:
        verdict: measured verdict.
        paper_verdict: the verdict the paper reports for this cell.
        best_attack: attack achieving the highest normalised advantage.
        success_rate: that attack's success rate.
        chance_level: the blind-guessing success rate of that attack.
    """

    verdict: Verdict
    paper_verdict: Optional[str] = None
    best_attack: Optional[str] = None
    success_rate: float = 0.0
    chance_level: float = 0.0

    @property
    def matches_paper(self) -> bool:
        """True when the measured verdict equals the paper's."""
        return self.paper_verdict is None or self.verdict.value == self.paper_verdict


@dataclass
class SecurityRow:
    """One Table 1 row: a mechanism applied to one structure."""

    structure: str
    label: str
    preset: str
    cells: Dict[Tuple[str, str], SecurityCell] = field(default_factory=dict)


def _evaluate_cell(structure: str, preset: str, core: str, kind: str,
                   iterations: int, seed: int) -> SecurityCell:
    attacks = _APPLICABLE_ATTACKS[(structure, kind, core)]
    paper = PAPER_TABLE1.get((structure, _label_for(structure, preset)), {}).get((core, kind))
    if not attacks:
        return SecurityCell(verdict=Verdict.DEFEND, paper_verdict=paper,
                            best_attack=None, success_rate=0.0, chance_level=0.0)
    best_cell: Optional[SecurityCell] = None
    best_advantage = -1.0
    for attack_name in attacks:
        attack_iterations = iterations
        if attack_name == "pht_training":
            # Each iteration already contains 100 attempts.
            attack_iterations = max(10, iterations // 10)
        result = run_attack(attack_name, preset, smt=(core == "smt"),
                            iterations=attack_iterations,
                            scenario_kwargs={"seed": seed})
        advantage = (result.success_rate - result.chance_level) \
            / (1.0 - result.chance_level)
        if advantage > best_advantage:
            best_advantage = advantage
            best_cell = SecurityCell(
                verdict=classify_success_rate(result.success_rate,
                                              result.chance_level),
                paper_verdict=paper,
                best_attack=attack_name,
                success_rate=result.success_rate,
                chance_level=result.chance_level)
    return best_cell


def _label_for(structure: str, preset: str) -> str:
    for row_structure, label, row_preset in TABLE1_ROWS:
        if row_structure == structure and row_preset == preset:
            return label
    return preset


def build_security_table(iterations: int = 150, seed: int = 0xC0FFEE
                         ) -> List[SecurityRow]:
    """Run the full attack matrix and build the Table-1 analogue.

    Args:
        iterations: attack iterations per cell (the PoC uses 10 000; a few
            hundred give the same verdicts in a fraction of the time).
        seed: hardware-key seed for the units under attack.

    Returns:
        One :class:`SecurityRow` per Table 1 row.
    """
    rows: List[SecurityRow] = []
    for structure, label, preset in TABLE1_ROWS:
        row = SecurityRow(structure=structure, label=label, preset=preset)
        for core, kind in TABLE1_COLUMNS:
            row.cells[(core, kind)] = _evaluate_cell(structure, preset, core, kind,
                                                     iterations, seed)
        rows.append(row)
    return rows
