"""Security classification analysis (Table 1) and analytic bounds."""

from .analysis import (
    PAPER_TABLE1,
    TABLE1_COLUMNS,
    TABLE1_ROWS,
    SecurityCell,
    SecurityRow,
    build_security_table,
)
from .classification import (
    Verdict,
    btb_tag_hit_probability,
    classify_success_rate,
    malicious_redirect_probability,
)
from .leakage import (
    LeakageEstimate,
    binary_entropy,
    leakage_bandwidth,
    leakage_report,
    measure_btb_occupancy_leakage,
    measure_direction_leakage,
    mutual_information,
)

__all__ = [
    "Verdict",
    "classify_success_rate",
    "btb_tag_hit_probability",
    "malicious_redirect_probability",
    "SecurityCell",
    "SecurityRow",
    "build_security_table",
    "PAPER_TABLE1",
    "TABLE1_ROWS",
    "TABLE1_COLUMNS",
    "LeakageEstimate",
    "binary_entropy",
    "mutual_information",
    "measure_direction_leakage",
    "measure_btb_occupancy_leakage",
    "leakage_bandwidth",
    "leakage_report",
]
