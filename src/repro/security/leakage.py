"""Information-theoretic leakage measurement for branch-predictor channels.

Table 1 classifies each mechanism qualitatively (Defend / Mitigate / No
Protection).  This module backs those verdicts with a quantitative measure:
the *mutual information* between a victim secret and what an attacker can
observe through the predictor, estimated empirically by replaying the
prime–victim–probe cycle many times with a randomly drawn secret bit.

Two channels are modelled, matching the paper's two attack families
(Section 2.1):

* the **direction channel** (reuse-based, PHT): the attacker primes a shared
  PHT entry and later reads back the predicted direction, BranchScope style;
* the **occupancy channel** (contention-based, BTB): the attacker primes a
  BTB set and senses whether the victim's taken branch evicted one of its
  entries, SBPA style.

The paper's Scenario 5 argument — that Noisy-XOR-PHT lowers the *leakage
bandwidth* because the attacker must traverse every entry — is quantified by
:func:`leakage_bandwidth`, which converts per-trial mutual information and
the per-trial probe cost into bits per unit time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..attacks.primitives import AttackEnvironment
from ..core.registry import make_bpu
from ..types import BranchType

__all__ = [
    "binary_entropy",
    "mutual_information",
    "LeakageEstimate",
    "measure_direction_leakage",
    "measure_btb_occupancy_leakage",
    "leakage_bandwidth",
    "leakage_report",
]

#: Addresses used by the synthetic victim/attacker code in the probes.  They
#: mirror the PoC listings: one shared conditional branch, one shared indirect
#: call site, and a pool of attacker-owned branches used for priming.
_SHARED_CONDITIONAL_PC = 0x0040_1A40
_SHARED_INDIRECT_PC = 0x0040_2B80
_VICTIM_TARGET = 0x0041_0000
_ATTACKER_PRIME_BASE = 0x7F00_0000


def binary_entropy(p: float) -> float:
    """Entropy in bits of a Bernoulli(p) variable."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def mutual_information(joint_counts: Sequence[Sequence[int]]) -> float:
    """Mutual information in bits from a 2×2 (secret × observation) count table.

    Args:
        joint_counts: ``joint_counts[s][o]`` is the number of trials with
            secret ``s`` and observation ``o``.

    Returns:
        The plug-in mutual-information estimate in bits (0 for empty input).
    """
    total = sum(sum(row) for row in joint_counts)
    if total == 0:
        return 0.0
    info = 0.0
    marg_s = [sum(row) / total for row in joint_counts]
    marg_o = [sum(joint_counts[s][o] for s in range(len(joint_counts))) / total
              for o in range(len(joint_counts[0]))]
    for s, row in enumerate(joint_counts):
        for o, count in enumerate(row):
            if count == 0 or marg_s[s] == 0 or marg_o[o] == 0:
                continue
            p_joint = count / total
            info += p_joint * math.log2(p_joint / (marg_s[s] * marg_o[o]))
    return max(0.0, info)


@dataclass
class LeakageEstimate:
    """Empirical leakage of one predictor channel under one mechanism.

    Attributes:
        channel: ``"pht_direction"`` or ``"btb_occupancy"``.
        mechanism: protection preset name.
        smt: whether the concurrent-attacker (SMT) scenario was used.
        trials: number of prime–victim–probe trials.
        joint_counts: 2×2 (secret × observation) count table.
        probes_per_trial: attacker predictor accesses per trial (used for the
            bandwidth estimate; Noisy-XOR forces full-table traversals).
    """

    channel: str
    mechanism: str
    smt: bool
    trials: int
    joint_counts: List[List[int]] = field(default_factory=lambda: [[0, 0], [0, 0]])
    probes_per_trial: float = 1.0

    @property
    def mutual_information_bits(self) -> float:
        """Bits of information about the secret leaked per trial."""
        return mutual_information(self.joint_counts)

    @property
    def guess_accuracy(self) -> float:
        """Accuracy of the attacker's maximum-likelihood guess of the secret."""
        if self.trials == 0:
            return 0.5
        # Best guess maps each observation to the majority secret for it.
        correct = 0
        for o in (0, 1):
            column = [self.joint_counts[s][o] for s in (0, 1)]
            correct += max(column)
        return correct / self.trials

    def observation_rate(self) -> float:
        """Fraction of trials in which the attacker observed a positive signal."""
        if self.trials == 0:
            return 0.0
        positives = self.joint_counts[0][1] + self.joint_counts[1][1]
        return positives / self.trials


def _prime_direction(env: AttackEnvironment, rounds: int) -> None:
    """Drive the shared conditional branch to a known strong state."""
    for _ in range(rounds):
        env.attacker_branch(_SHARED_CONDITIONAL_PC, False, _VICTIM_TARGET,
                            BranchType.CONDITIONAL)


def measure_direction_leakage(mechanism: str = "baseline", *,
                              trials: int = 400, smt: bool = False,
                              predictor: str = "bimodal",
                              prime_rounds: int = 4,
                              victim_executions: int = 3,
                              seed: int = 0xD1CE,
                              btb_sets: int = 256, btb_ways: int = 2
                              ) -> LeakageEstimate:
    """Estimate the PHT direction-channel leakage (BranchScope-style reuse).

    Each trial primes the shared conditional branch to strongly-not-taken,
    lets the victim execute it with a freshly drawn secret direction, and then
    reads the attacker-visible predicted direction.  Under the baseline the
    observation tracks the secret; under XOR/Noisy-XOR isolation the key
    rotation on the role switch decorrelates them.

    Args:
        mechanism: protection preset name.
        trials: number of prime–victim–probe trials.
        smt: concurrent-attacker scenario (no context switch between roles).
        predictor: direction predictor of the unit under attack.
        prime_rounds: attacker training executions per trial.
        victim_executions: victim executions of the secret branch per trial.
        seed: RNG seed for the secret sequence and the hardware keys.
        btb_sets: BTB geometry of the unit under attack.
        btb_ways: BTB associativity.

    Returns:
        A :class:`LeakageEstimate` for the ``pht_direction`` channel.
    """
    rng = random.Random(seed)
    bpu = make_bpu(predictor, mechanism, seed=seed, btb_sets=btb_sets,
                   btb_ways=btb_ways, btb_miss_forces_not_taken=True)
    env = AttackEnvironment(bpu, smt=smt)
    estimate = LeakageEstimate(channel="pht_direction", mechanism=mechanism,
                               smt=smt, trials=trials,
                               probes_per_trial=float(prime_rounds + 1))
    for _ in range(trials):
        secret = rng.getrandbits(1)
        env.run_as_attacker()
        _prime_direction(env, prime_rounds)
        env.run_as_victim()
        for _ in range(victim_executions):
            env.victim_branch(_SHARED_CONDITIONAL_PC, bool(secret), _VICTIM_TARGET,
                              BranchType.CONDITIONAL)
        env.run_as_attacker()
        observed = int(env.attacker_predicted_direction(_SHARED_CONDITIONAL_PC))
        estimate.joint_counts[secret][observed] += 1
    return estimate


def measure_btb_occupancy_leakage(mechanism: str = "baseline", *,
                                  trials: int = 400, smt: bool = False,
                                  predictor: str = "bimodal",
                                  seed: int = 0xD1CE,
                                  btb_sets: int = 256, btb_ways: int = 2
                                  ) -> LeakageEstimate:
    """Estimate the BTB occupancy-channel leakage (SBPA-style contention).

    Each trial primes every way of the BTB set the attacker associates with
    the victim branch, lets the victim execute the branch taken or not taken
    according to a fresh secret bit, and then probes whether any primed entry
    was evicted.  Under the baseline an eviction reveals the secret; with a
    private index key the attacker primes the wrong set, and with key rotation
    its own primed entries become unrecognisable.

    Args:
        mechanism: protection preset name.
        trials: number of prime–victim–probe trials.
        smt: concurrent-attacker scenario.
        predictor: direction predictor of the unit under attack (irrelevant to
            the BTB channel but required to build the unit).
        seed: RNG seed for the secret sequence and the hardware keys.
        btb_sets: number of BTB sets.
        btb_ways: BTB associativity.

    Returns:
        A :class:`LeakageEstimate` for the ``btb_occupancy`` channel.
    """
    rng = random.Random(seed)
    bpu = make_bpu(predictor, mechanism, seed=seed, btb_sets=btb_sets,
                   btb_ways=btb_ways, btb_miss_forces_not_taken=True)
    env = AttackEnvironment(bpu, smt=smt)
    btb = bpu.btb
    victim_pc = _SHARED_INDIRECT_PC
    # Attacker-controlled branches that map to the same *logical* set as the
    # victim branch (the attacker can compute this from the victim's address
    # layout per the threat model).
    victim_set = btb.logical_set_of(victim_pc)
    prime_pcs = []
    candidate = _ATTACKER_PRIME_BASE | (victim_pc & ((btb.n_sets - 1) << 2))
    stride = btb.n_sets << 2
    while len(prime_pcs) < btb.n_ways:
        if btb.logical_set_of(candidate) == victim_set:
            prime_pcs.append(candidate)
        candidate += stride
    estimate = LeakageEstimate(channel="btb_occupancy", mechanism=mechanism,
                               smt=smt, trials=trials,
                               probes_per_trial=float(2 * len(prime_pcs)))
    for _ in range(trials):
        secret = rng.getrandbits(1)
        env.run_as_attacker()
        for pc in prime_pcs:
            env.attacker_branch(pc, True, _VICTIM_TARGET, BranchType.DIRECT)
        env.run_as_victim()
        # A taken branch updates the BTB (potentially evicting a primed entry);
        # a not-taken branch leaves the BTB untouched (Section 2.1).
        env.victim_branch(victim_pc, bool(secret),
                          _VICTIM_TARGET if secret else victim_pc + 4,
                          BranchType.CONDITIONAL)
        env.run_as_attacker()
        evicted = any(not env.attacker_btb_probe(pc) for pc in prime_pcs)
        estimate.joint_counts[secret][int(evicted)] += 1
    return estimate


def leakage_bandwidth(estimate: LeakageEstimate, *,
                      probe_cost_cycles: float = 50.0,
                      victim_window_cycles: float = 10_000.0,
                      cycles_per_second: float = 2.0e9) -> float:
    """Convert a per-trial leakage estimate into bits per second.

    The trial period is the victim execution window plus the attacker's probe
    work; Noisy-XOR raises ``probes_per_trial`` (full-table traversal), which
    is exactly the bandwidth-reduction argument of Scenario 5.

    Args:
        estimate: the measured per-trial leakage.
        probe_cost_cycles: cycles per attacker predictor probe.
        victim_window_cycles: victim execution window per trial.
        cycles_per_second: clock frequency used for the conversion.

    Returns:
        Estimated leakage bandwidth in bits per second.
    """
    trial_cycles = victim_window_cycles + probe_cost_cycles * estimate.probes_per_trial
    trials_per_second = cycles_per_second / trial_cycles
    return estimate.mutual_information_bits * trials_per_second


def leakage_report(mechanisms: Sequence[str], *, trials: int = 300,
                   smt: bool = False, seed: int = 0xD1CE
                   ) -> Dict[str, Dict[str, LeakageEstimate]]:
    """Measure both channels for several mechanisms.

    Returns:
        ``{mechanism: {"pht_direction": ..., "btb_occupancy": ...}}``.
    """
    report: Dict[str, Dict[str, LeakageEstimate]] = {}
    for mechanism in mechanisms:
        report[mechanism] = {
            "pht_direction": measure_direction_leakage(
                mechanism, trials=trials, smt=smt, seed=seed),
            "btb_occupancy": measure_btb_occupancy_leakage(
                mechanism, trials=trials, smt=smt, seed=seed),
        }
    return report
