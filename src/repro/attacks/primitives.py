"""Attack primitives: victim/attacker scheduling and the timing side channel.

The paper's attacks (Section 2) all follow the Locate → Prime → Probe
structure and observe predictor state indirectly, through execution-time
differences (e.g. Flush+Reload on a probe array, or timing the attacker's own
branches).  This module provides:

* :class:`AttackEnvironment` — wires an attacker context and a victim context
  onto a :class:`repro.core.secure.BranchPredictionUnit`, either time-sharing
  one hardware thread (the single-threaded-core scenario, where every switch
  between attacker and victim is a context switch the isolation mechanism
  sees) or running concurrently on two hardware threads (the SMT scenario,
  where no switch separates prime and probe);
* :class:`TimingChannel` — a noisy observation channel that converts a
  microarchitectural hit/miss into what the attacker actually measures,
  with configurable false-positive/false-negative rates (the paper's RISC-V
  platform cannot flush single cache lines, which is why its baseline attack
  accuracy is 96.5–97.2% rather than ~100%).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.secure import BranchOutcome, BranchPredictionUnit
from ..types import BranchType, Privilege

__all__ = ["TimingChannel", "AttackEnvironment"]


class TimingChannel:
    """Noisy observation of a microarchitectural event.

    Args:
        false_positive: probability a "miss" is observed as a "hit".
        false_negative: probability a "hit" is observed as a "miss".
        seed: RNG seed for reproducible noise.
    """

    def __init__(self, false_positive: float = 0.008, false_negative: float = 0.03,
                 seed: int = 1234) -> None:
        self.false_positive = false_positive
        self.false_negative = false_negative
        self._rng = random.Random(seed)

    def observe(self, hit: bool) -> bool:
        """Return the attacker's measurement of a hit/miss event."""
        if hit:
            return self._rng.random() >= self.false_negative
        return self._rng.random() < self.false_positive


@dataclass
class VictimBranch:
    """The victim branch under attack.

    Attributes:
        pc: address of the victim branch (known to the attacker per the
            threat model: source code and address layout are known).
        taken_target: target when the branch is taken / the legitimate
            indirect-call target.
        branch_type: conditional (PHT attacks) or indirect (BTB attacks).
    """

    pc: int
    taken_target: int
    branch_type: BranchType = BranchType.CONDITIONAL


class AttackEnvironment:
    """Attacker and victim contexts sharing a branch prediction unit.

    Args:
        bpu: the branch prediction unit under attack.
        smt: when False (single-threaded core), the attacker and victim
            time-share hardware thread 0 and every hand-off is a context
            switch; when True (SMT core), the victim runs on hardware thread 0
            and the attacker on hardware thread 1 concurrently, with no
            switches between prime and probe.
        channel: the timing side channel; defaults to a mildly noisy channel.
        single_step: the attacker can single-step the victim (BranchScope /
            SBPA assumption); modelled by letting the attacker interleave
            probes between individual victim branches.
    """

    def __init__(self, bpu: BranchPredictionUnit, *, smt: bool = False,
                 channel: Optional[TimingChannel] = None,
                 single_step: bool = True) -> None:
        self.bpu = bpu
        self.smt = smt
        self.channel = channel if channel is not None else TimingChannel()
        self.single_step = single_step
        self.victim_thread = 0
        self.attacker_thread = 1 if smt else 0
        self._running = "attacker"
        self.context_switches = 0

    # -- scheduling -------------------------------------------------------------
    def _switch(self, to: str) -> None:
        if self.smt or self._running == to:
            return
        # On a single-threaded core the OS switches contexts; the isolation
        # mechanism regenerates keys / flushes at this point.
        self.bpu.notify_context_switch(self.victim_thread)
        self.context_switches += 1
        self._running = to

    def run_as_victim(self) -> None:
        """Schedule the victim context (a context switch on a single-threaded core)."""
        self._switch("victim")

    def run_as_attacker(self) -> None:
        """Schedule the attacker context."""
        self._switch("attacker")

    def victim_syscall(self) -> None:
        """The victim performs a system call (privilege round trip)."""
        self.bpu.notify_privilege_switch(self.victim_thread, Privilege.KERNEL)
        self.bpu.notify_privilege_switch(self.victim_thread, Privilege.USER)

    # -- execution helpers --------------------------------------------------------
    def victim_branch(self, pc: int, taken: bool, target: int,
                      branch_type: BranchType = BranchType.CONDITIONAL) -> BranchOutcome:
        """The victim commits one branch."""
        self.run_as_victim()
        return self.bpu.execute_branch(pc, taken, target, branch_type,
                                       self.victim_thread)

    def attacker_branch(self, pc: int, taken: bool, target: int,
                        branch_type: BranchType = BranchType.CONDITIONAL) -> BranchOutcome:
        """The attacker commits one branch."""
        self.run_as_attacker()
        return self.bpu.execute_branch(pc, taken, target, branch_type,
                                       self.attacker_thread)

    # -- attacker observations -----------------------------------------------------
    def attacker_predicted_direction(self, pc: int) -> bool:
        """Direction the predictor currently gives the attacker for ``pc``.

        The real attacker learns this by executing the branch and timing it;
        reading the prediction directly models a noise-free timing probe, and
        noise is added where the attack measures through the cache channel.
        """
        self.run_as_attacker()
        return self.bpu.direction.lookup(pc, self.attacker_thread).taken

    def attacker_btb_probe(self, pc: int) -> bool:
        """True when the attacker's BTB probe of ``pc`` hits (through the channel)."""
        self.run_as_attacker()
        result = self.bpu.btb.lookup(pc, self.attacker_thread)
        return self.channel.observe(result.hit)

    def attacker_btb_predicted_target(self, pc: int) -> Optional[int]:
        """Target the BTB currently predicts for the attacker at ``pc``."""
        self.run_as_attacker()
        result = self.bpu.btb.lookup(pc, self.attacker_thread)
        return result.target if result.hit else None

    def victim_btb_predicted_target(self, pc: int) -> Optional[int]:
        """Target the BTB predicts for the *victim* at ``pc``.

        Used to decide whether malicious training succeeded in steering the
        victim's speculative control flow (the victim would fetch from this
        address before the branch resolves).
        """
        self.run_as_victim()
        result = self.bpu.btb.lookup(pc, self.victim_thread)
        return result.target if result.hit else None

    def victim_predicted_direction(self, pc: int) -> bool:
        """Direction the predictor gives the victim for ``pc`` (speculative path)."""
        self.run_as_victim()
        return self.bpu.direction.lookup(pc, self.victim_thread).taken
