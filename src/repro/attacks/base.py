"""Common attack interface and result types."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict

from .primitives import AttackEnvironment

__all__ = ["Attack", "AttackResult"]


@dataclass
class AttackResult:
    """Outcome of running an attack many iterations against one configuration.

    Attributes:
        attack: attack name.
        mechanism: protection preset the predictor was built with.
        smt: whether the SMT (concurrent attacker) scenario was used.
        iterations: number of attack iterations performed.
        successes: iterations in which the attack met its success criterion.
        chance_level: success rate a blind-guessing attacker would achieve;
            success rates at or near this level mean the attack is defeated.
        details: attack-specific extra measurements.
    """

    attack: str
    mechanism: str
    smt: bool
    iterations: int
    successes: int
    chance_level: float = 0.0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Fraction of iterations in which the attack succeeded."""
        if self.iterations == 0:
            return 0.0
        return self.successes / self.iterations

    @property
    def advantage(self) -> float:
        """Attacker advantage over blind guessing (0 = fully defeated)."""
        return max(0.0, self.success_rate - self.chance_level)


class Attack(abc.ABC):
    """One attack scenario against a branch prediction unit.

    Concrete attacks implement :meth:`run_iteration`, which performs one full
    Locate/Prime/(victim)/Probe cycle and reports whether the attacker
    achieved its goal this iteration.
    """

    #: Machine-readable attack name.
    name: str = "attack"
    #: Structure attacked: ``"pht"`` or ``"btb"``.
    target_structure: str = "pht"
    #: Attack class per Section 2.1: ``"reuse"`` or ``"contention"``.
    kind: str = "reuse"
    #: Success rate of a blind-guessing attacker.
    chance_level: float = 0.0

    @abc.abstractmethod
    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        """Run one attack iteration; return True on success."""

    def reset(self) -> None:
        """Clear any per-run accumulators (overridden by attacks that keep them)."""

    def extra_details(self) -> Dict[str, float]:
        """Attack-specific measurements to attach to the result."""
        return {}

    def run(self, env: AttackEnvironment, iterations: int = 1000,
            mechanism: str = "unknown") -> AttackResult:
        """Run many iterations and collect a result."""
        self.reset()
        successes = 0
        for iteration in range(iterations):
            if self.run_iteration(env, iteration):
                successes += 1
        return AttackResult(attack=self.name, mechanism=mechanism, smt=env.smt,
                            iterations=iterations, successes=successes,
                            chance_level=self.chance_level,
                            details=self.extra_details())
