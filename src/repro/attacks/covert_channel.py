"""PHT-based covert channel between two cooperating processes.

Evtyushkin et al. (the paper's reference [11,13]) showed that the shared
pattern history table can carry a covert channel: a *sender* deliberately
trains a set of PHT entries to encode bits and a cooperating *receiver*
recovers them by timing its own congruent branches.  The paper's isolation
mechanisms are meant to close exactly this kind of cross-process channel, so
this module measures the channel's raw capacity under each protection preset:

* the sender transmits a known pseudo-random bit string, one bit per PHT
  entry, by executing congruent branches taken or not-taken;
* the OS switches to the receiver (a context switch, which rotates keys /
  triggers flushes, depending on the mechanism);
* the receiver reads the predicted direction of its congruent branches and
  reconstructs the bit string;
* the bit error rate and the resulting channel capacity (bits per symbol
  times symbols per second) are reported.

Under the baseline the channel is nearly error-free; under XOR/Noisy-XOR
isolation the received bits are uncorrelated with the sent ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..core.registry import make_bpu
from ..security.leakage import binary_entropy
from ..types import BranchType
from .primitives import AttackEnvironment

__all__ = ["CovertChannelResult", "run_covert_channel"]

#: Base address of the branch array shared (in layout) by sender and receiver.
_CHANNEL_BASE_PC = 0x0050_0000
#: Dummy target used by the encoding branches.
_CHANNEL_TARGET = 0x0051_0000


@dataclass
class CovertChannelResult:
    """Outcome of one covert-channel transmission experiment.

    Attributes:
        mechanism: protection preset of the shared predictor.
        smt: concurrent (SMT) scenario instead of time-shared.
        bits_sent: total payload bits transmitted.
        bit_errors: received bits that differed from the sent bits.
        symbols_per_second: assumed signalling rate used for the bandwidth
            estimate (one symbol = one PHT entry probed).
        training_executions: sender branch executions per transmitted bit.
    """

    mechanism: str
    smt: bool
    bits_sent: int
    bit_errors: int
    symbols_per_second: float = 100_000.0
    training_executions: int = 3

    @property
    def bit_error_rate(self) -> float:
        """Fraction of received bits that were wrong (0.5 = useless channel)."""
        if self.bits_sent == 0:
            return 0.5
        return self.bit_errors / self.bits_sent

    @property
    def capacity_bits_per_symbol(self) -> float:
        """Binary-symmetric-channel capacity: ``1 - H(error rate)`` bits."""
        return max(0.0, 1.0 - binary_entropy(min(0.5, self.bit_error_rate)))

    @property
    def bandwidth_bits_per_second(self) -> float:
        """Estimated usable bandwidth at the assumed signalling rate."""
        return self.capacity_bits_per_symbol * self.symbols_per_second


def _entry_pc(index: int, stride: int = 64) -> int:
    """PC of the ``index``-th signalling branch (spread across PHT entries)."""
    return _CHANNEL_BASE_PC + index * stride


def run_covert_channel(mechanism: str = "baseline", *,
                       payload_bits: int = 256,
                       bits_per_burst: int = 32,
                       training_executions: int = 3,
                       smt: bool = False,
                       predictor: str = "bimodal",
                       seed: int = 0xBEEF,
                       btb_sets: int = 256, btb_ways: int = 2
                       ) -> CovertChannelResult:
    """Transmit a pseudo-random payload through the PHT and measure errors.

    Args:
        mechanism: protection preset of the shared branch prediction unit.
        payload_bits: total number of payload bits to transmit.
        bits_per_burst: bits encoded per scheduling quantum; the OS switches
            from sender to receiver after each burst (and back), which is when
            flush- and key-based mechanisms act.
        training_executions: sender executions per bit (stronger training
            makes the baseline channel more reliable).
        smt: if True, sender and receiver run concurrently on two hardware
            threads instead of time-sharing one.
        predictor: direction predictor of the shared unit.
        seed: seed for the payload and the hardware keys.
        btb_sets: BTB geometry of the shared unit.
        btb_ways: BTB associativity.

    Returns:
        A :class:`CovertChannelResult` with the measured bit error rate.
    """
    if payload_bits <= 0:
        raise ValueError("payload_bits must be positive")
    if bits_per_burst <= 0:
        raise ValueError("bits_per_burst must be positive")
    rng = random.Random(seed)
    payload: List[int] = [rng.getrandbits(1) for _ in range(payload_bits)]
    bpu = make_bpu(predictor, mechanism, seed=seed, btb_sets=btb_sets,
                   btb_ways=btb_ways, btb_miss_forces_not_taken=True)
    env = AttackEnvironment(bpu, smt=smt)

    errors = 0
    for burst_start in range(0, payload_bits, bits_per_burst):
        burst = payload[burst_start:burst_start + bits_per_burst]
        # Sender quantum: encode each bit by training its congruent branch.
        env.run_as_victim()
        for offset, bit in enumerate(burst):
            pc = _entry_pc(burst_start + offset)
            for _ in range(training_executions):
                env.victim_branch(pc, bool(bit),
                                  _CHANNEL_TARGET if bit else pc + 4,
                                  BranchType.CONDITIONAL)
        # Receiver quantum: read back the predicted directions.
        env.run_as_attacker()
        for offset, bit in enumerate(burst):
            pc = _entry_pc(burst_start + offset)
            received = int(env.attacker_predicted_direction(pc))
            if received != bit:
                errors += 1
    return CovertChannelResult(mechanism=mechanism, smt=smt,
                               bits_sent=payload_bits, bit_errors=errors,
                               training_executions=training_executions)
