"""Attack experiment harness.

The harness builds a branch prediction unit for a given protection preset,
wires an :class:`repro.attacks.primitives.AttackEnvironment` around it
(single-threaded or SMT scenario) and runs an attack for many iterations.
It is used by the Section 5.5 proof-of-concept experiment, by the Table 1
security-classification analysis, and directly by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.registry import make_bpu
from .base import Attack, AttackResult
from .branch_shadowing import BranchShadowingAttack
from .branchscope import BranchScopeAttack, CalibratedBranchScopeAttack
from .jump_aslr import JumpOverAslrAttack
from .pht_training import PhtTrainingAttack
from .primitives import AttackEnvironment, TimingChannel
from .sbpa import SbpaAttack
from .spectre_v2 import BtbTrainingAttack

__all__ = ["AttackScenario", "ALL_ATTACKS", "make_attack", "run_attack",
           "run_attack_matrix"]

#: Attack constructors by name.
ALL_ATTACKS = {
    "pht_training": PhtTrainingAttack,
    "spectre_v2_btb_training": BtbTrainingAttack,
    "branchscope": BranchScopeAttack,
    "branchscope_calibrated": CalibratedBranchScopeAttack,
    "sbpa": SbpaAttack,
    "branch_shadowing": BranchShadowingAttack,
    "jump_over_aslr": JumpOverAslrAttack,
}


def make_attack(name: str, **kwargs) -> Attack:
    """Construct an attack by name.

    Raises:
        KeyError: when ``name`` is not a known attack.
    """
    if name not in ALL_ATTACKS:
        raise KeyError(f"unknown attack: {name!r}")
    return ALL_ATTACKS[name](**kwargs)


@dataclass
class AttackScenario:
    """A (mechanism, core-type) configuration to attack.

    Attributes:
        mechanism: protection preset name (``baseline``, ``noisy_xor_bp``, ...).
        smt: SMT (concurrent attacker) scenario when True; single-threaded
            time-sharing scenario when False.
        predictor: direction predictor used for PHT attacks (the PoC targets
            the per-address component, so a bimodal PHT is the default).
        btb_sets: BTB geometry for BTB attacks (the FPGA prototype's 256×2).
        btb_ways: BTB associativity.
        seed: hardware-key RNG seed.
    """

    mechanism: str = "baseline"
    smt: bool = False
    predictor: str = "bimodal"
    btb_sets: int = 256
    btb_ways: int = 2
    seed: int = 0xC0FFEE

    def build_environment(self, channel: Optional[TimingChannel] = None
                          ) -> AttackEnvironment:
        """Construct the branch prediction unit and attack environment."""
        bpu = make_bpu(self.predictor, self.mechanism, seed=self.seed,
                       btb_sets=self.btb_sets, btb_ways=self.btb_ways,
                       btb_miss_forces_not_taken=True)
        return AttackEnvironment(bpu, smt=self.smt, channel=channel)


def run_attack(attack_name: str, mechanism: str = "baseline", *,
               smt: bool = False, iterations: int = 1000,
               predictor: str = "bimodal",
               channel: Optional[TimingChannel] = None,
               attack_kwargs: Optional[dict] = None,
               scenario_kwargs: Optional[dict] = None) -> AttackResult:
    """Run one attack against one protection configuration.

    Args:
        attack_name: one of :data:`ALL_ATTACKS`.
        mechanism: protection preset name.
        smt: concurrent-attacker (SMT) scenario.
        iterations: number of attack iterations.
        predictor: direction predictor for the unit under attack.
        channel: timing-channel noise model (defaults per attack harness).
        attack_kwargs: extra arguments for the attack constructor.
        scenario_kwargs: extra arguments for :class:`AttackScenario`.

    Returns:
        The :class:`repro.attacks.base.AttackResult`.
    """
    scenario = AttackScenario(mechanism=mechanism, smt=smt, predictor=predictor,
                              **(scenario_kwargs or {}))
    env = scenario.build_environment(channel)
    attack = make_attack(attack_name, **(attack_kwargs or {}))
    return attack.run(env, iterations=iterations, mechanism=mechanism)


def run_attack_matrix(attack_names: Iterable[str], mechanisms: Iterable[str], *,
                      smt: bool = False, iterations: int = 300,
                      predictor: str = "bimodal") -> List[AttackResult]:
    """Run every (attack, mechanism) combination and collect the results."""
    results: List[AttackResult] = []
    for mechanism in mechanisms:
        for attack_name in attack_names:
            results.append(run_attack(attack_name, mechanism, smt=smt,
                                      iterations=iterations, predictor=predictor))
    return results


def summarise(results: Iterable[AttackResult]) -> Dict[str, Dict[str, float]]:
    """Success rates keyed by mechanism then attack name."""
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        table.setdefault(result.mechanism, {})[result.attack] = result.success_rate
    return table
