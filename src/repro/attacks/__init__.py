"""Attack framework: reuse-based and contention-based branch predictor attacks."""

from .base import Attack, AttackResult
from .branch_shadowing import BranchShadowingAttack
from .branchscope import BranchScopeAttack, CalibratedBranchScopeAttack
from .covert_channel import CovertChannelResult, run_covert_channel
from .harness import (
    ALL_ATTACKS,
    AttackScenario,
    make_attack,
    run_attack,
    run_attack_matrix,
    summarise,
)
from .jump_aslr import JumpOverAslrAttack
from .pht_training import PhtTrainingAttack
from .primitives import AttackEnvironment, TimingChannel
from .sbpa import SbpaAttack
from .spectre_v2 import BtbTrainingAttack

__all__ = [
    "CovertChannelResult",
    "run_covert_channel",
    "Attack",
    "AttackResult",
    "AttackEnvironment",
    "TimingChannel",
    "AttackScenario",
    "ALL_ATTACKS",
    "make_attack",
    "run_attack",
    "run_attack_matrix",
    "summarise",
    "PhtTrainingAttack",
    "BtbTrainingAttack",
    "BranchScopeAttack",
    "CalibratedBranchScopeAttack",
    "SbpaAttack",
    "BranchShadowingAttack",
    "JumpOverAslrAttack",
]
