"""BranchScope: perceiving a victim branch's direction through a shared PHT.

The attacker locates the PHT entry of the victim's secret-dependent branch,
primes its saturating counter to a weak state, lets the victim execute the
branch once (single-step control), and then probes the entry with its own
congruent branch: the direction the predictor now reports reveals which way
the victim's branch went.

Two variants are provided:

* :class:`BranchScopeAttack` — the plain attack (single-threaded or SMT).
* :class:`CalibratedBranchScopeAttack` — the Section 5.5 "reference branch"
  corner case: on an SMT core the attacker additionally probes a victim
  branch whose direction it already knows, and uses it to cancel a *fixed*
  XOR key relationship between the two contexts.  This succeeds against the
  naive 2-bit XOR-PHT (one narrow key reused for every entry) but not against
  Enhanced-XOR-PHT, whose per-word/row-diversified keys break the fixed
  mapping.
"""

from __future__ import annotations

import random

from ..types import BranchType
from .base import Attack
from .primitives import AttackEnvironment

__all__ = ["BranchScopeAttack", "CalibratedBranchScopeAttack"]

#: Address of the victim's secret-dependent branch.
VICTIM_BRANCH_PC = 0x0044_0200
#: Taken-path target of the victim branch.
VICTIM_TARGET = 0x0044_0260
#: Address of a victim branch with a publicly known (always taken) direction,
#: used by the calibrated variant as a key-relationship reference.
REFERENCE_BRANCH_PC = 0x0044_0204
REFERENCE_TARGET = 0x0044_0280


class BranchScopeAttack(Attack):
    """Reuse-based perception of a victim branch direction via the PHT."""

    name = "branchscope"
    target_structure = "pht"
    kind = "reuse"
    chance_level = 0.5

    def __init__(self, seed: int = 7) -> None:
        self._rng = random.Random(seed)

    def _prime_weak_taken(self, env: AttackEnvironment) -> None:
        """Drive the shared counter to the weakly-taken state.

        Three not-taken executions saturate the 2-bit counter at
        strongly-not-taken from any starting state, then two taken executions
        leave it at weakly-taken — one victim execution in either direction
        now flips or confirms the prediction.
        """
        for _ in range(3):
            env.attacker_branch(VICTIM_BRANCH_PC, False, VICTIM_TARGET,
                                BranchType.CONDITIONAL)
        for _ in range(2):
            env.attacker_branch(VICTIM_BRANCH_PC, True, VICTIM_TARGET,
                                BranchType.CONDITIONAL)

    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        secret_taken = self._rng.random() < 0.5
        # Prime phase.
        self._prime_weak_taken(env)
        # Victim executes its secret-dependent branch once (single-stepped).
        env.victim_branch(VICTIM_BRANCH_PC, secret_taken, VICTIM_TARGET,
                          BranchType.CONDITIONAL)
        # Probe phase: the prediction the attacker now sees reflects the
        # victim's update — taken if the victim strengthened the counter,
        # not-taken if the victim weakened it past the midpoint.
        probed_taken = env.attacker_predicted_direction(VICTIM_BRANCH_PC)
        inferred_taken = env.channel.observe(probed_taken)
        return inferred_taken == secret_taken


class CalibratedBranchScopeAttack(Attack):
    """BranchScope with a known-direction reference branch (SMT corner case).

    The attacker assumes the stored counters are XORed with a key whose
    relationship between attacker and victim contexts is *the same for every
    entry*.  By probing an entry whose victim direction is publicly known,
    the attacker learns whether that relationship flips the prediction bit and
    undoes the flip on the secret entry.  Against Enhanced-XOR-PHT the
    relationship differs per entry, so the calibration transfers nothing.
    """

    name = "branchscope_calibrated"
    target_structure = "pht"
    kind = "reuse"
    chance_level = 0.5

    def __init__(self, seed: int = 17) -> None:
        self._rng = random.Random(seed)

    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        secret_taken = self._rng.random() < 0.5
        # The victim trains its reference branch (known to be taken) and then
        # executes the secret-dependent branch; both saturate their counters.
        for _ in range(3):
            env.victim_branch(REFERENCE_BRANCH_PC, True, REFERENCE_TARGET,
                              BranchType.CONDITIONAL)
        for _ in range(3):
            env.victim_branch(VICTIM_BRANCH_PC, secret_taken, VICTIM_TARGET,
                              BranchType.CONDITIONAL)
        # Calibration probe: how does the known-taken entry read in the
        # attacker's context?
        reference_reads_taken = env.attacker_predicted_direction(REFERENCE_BRANCH_PC)
        flip = not reference_reads_taken  # True when the key relationship flips MSBs
        # Secret probe, corrected by the learned flip.
        probed = env.attacker_predicted_direction(VICTIM_BRANCH_PC)
        inferred_taken = (not probed) if flip else probed
        inferred_taken = env.channel.observe(inferred_taken)
        return inferred_taken == secret_taken
