"""SBPA: contention-based BTB attack (Simple Branch Prediction Analysis).

The attacker occupies every way of the BTB set that the victim's target
branch maps to.  Because the BTB is only updated when a branch is *taken*,
the victim's execution evicts one of the attacker's entries exactly when the
secret-dependent branch was taken.  After regaining the core, the attacker
times its own branches: a miss among the primed set reveals the victim's
direction.
"""

from __future__ import annotations

import random
from typing import List

from ..types import BranchType
from .base import Attack
from .primitives import AttackEnvironment

__all__ = ["SbpaAttack"]

#: Address of the victim's secret-dependent (taken-or-not) branch.
VICTIM_BRANCH_PC = 0x0048_8800
VICTIM_TARGET = 0x0048_9000


class SbpaAttack(Attack):
    """Contention-based perception of a victim branch direction via the BTB."""

    name = "sbpa"
    target_structure = "btb"
    kind = "contention"
    chance_level = 0.5

    def __init__(self, seed: int = 23) -> None:
        self._rng = random.Random(seed)

    def _congruent_attacker_pcs(self, env: AttackEnvironment) -> List[int]:
        """Attacker branches that map to the victim branch's BTB set.

        The attacker knows the indexing function (Locate phase) and chooses
        addresses equal to the victim's modulo the set-index range but with
        different tags.
        """
        btb = env.bpu.btb
        stride = btb.n_sets * 4  # changing these bits changes the tag only
        return [VICTIM_BRANCH_PC + stride * (i + 1) for i in range(btb.n_ways)]

    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        secret_taken = self._rng.random() < 0.5
        attacker_pcs = self._congruent_attacker_pcs(env)

        # Prime: fill every way of the target set with attacker entries.
        for pc in attacker_pcs:
            env.attacker_branch(pc, True, pc + 0x40, BranchType.DIRECT)

        # Victim executes its branch once; a taken branch updates the BTB and
        # evicts one attacker way.
        env.victim_branch(VICTIM_BRANCH_PC, secret_taken, VICTIM_TARGET,
                          BranchType.CONDITIONAL)

        # Probe: time the primed branches; any miss implies an eviction.
        missing = 0
        for pc in attacker_pcs:
            if not env.attacker_btb_probe(pc):
                missing += 1
        inferred_taken = missing > 0
        return inferred_taken == secret_taken
