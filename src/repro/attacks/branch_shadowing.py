"""Branch Shadowing: reuse-based BTB perception (the SGX attack).

The attacker crafts a *shadow* of the victim's code so that its own branch
collides with the victim branch in the BTB (same set and tag — the SGX
attacker controls the address-space layout).  If the victim's branch was
taken, the BTB holds a target for that entry and the attacker's shadow branch
executes with a correct (fast) prediction; if not, the shadow branch misses.
The timing difference reveals the victim's direction.
"""

from __future__ import annotations

import random

from ..types import BranchType
from .base import Attack
from .primitives import AttackEnvironment

__all__ = ["BranchShadowingAttack"]

#: Address shared by the victim branch and its shadow (aliased mapping).
VICTIM_BRANCH_PC = 0x004A_4A40
VICTIM_TARGET = 0x004A_5000


class BranchShadowingAttack(Attack):
    """Reuse-based perception of a victim branch direction via BTB residue."""

    name = "branch_shadowing"
    target_structure = "btb"
    kind = "reuse"
    chance_level = 0.5

    def __init__(self, seed: int = 31) -> None:
        self._rng = random.Random(seed)

    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        secret_taken = self._rng.random() < 0.5

        # Ensure the entry does not carry stale state from earlier iterations:
        # the attacker first evicts the set by inserting its own filler
        # branches with different tags.
        btb = env.bpu.btb
        stride = btb.n_sets * 4
        for way in range(btb.n_ways):
            filler = VICTIM_BRANCH_PC + stride * (way + 7)
            env.attacker_branch(filler, True, filler + 0x40, BranchType.DIRECT)

        # Victim executes the secret-dependent branch once (single-stepped);
        # only a taken branch installs a BTB entry.
        env.victim_branch(VICTIM_BRANCH_PC, secret_taken, VICTIM_TARGET,
                          BranchType.CONDITIONAL)

        # Probe: the shadow branch at the aliased address hits the BTB only if
        # the victim's taken branch installed an entry the attacker can match.
        hit = env.attacker_btb_probe(VICTIM_BRANCH_PC)
        inferred_taken = hit
        return inferred_taken == secret_taken
