"""Malicious BTB training (the paper's PoC Listing 1, Spectre-V2 style).

The attacker and the victim share a function that performs an indirect call
through a function pointer.  In the attacker's context the pointer refers to
``attacker_function`` (the gadget that touches the probe line); in the
victim's context it refers to ``victim_function``.  The attacker executes the
shared call to plant a BTB entry mapping the call site to the gadget; when
the victim executes the same call site, the BTB steers its speculative
control flow to the gadget, which leaves a cache footprint the attacker
measures with Flush+Reload.
"""

from __future__ import annotations

from ..types import BranchType
from .base import Attack
from .primitives import AttackEnvironment

__all__ = ["BtbTrainingAttack"]

#: Address of the shared indirect call site (``p()`` in Listing 1).
SHARED_CALL_PC = 0x0042_1100
#: The attacker's gadget (``attacker_function``).
MALICIOUS_TARGET = 0x0046_6000
#: The victim's legitimate callee (``victim_function``).
LEGITIMATE_TARGET = 0x0043_2200


class BtbTrainingAttack(Attack):
    """Reuse-based malicious training of a shared BTB entry.

    Args:
        training_runs: attacker executions of the indirect call per iteration.
    """

    name = "spectre_v2_btb_training"
    target_structure = "btb"
    kind = "reuse"
    chance_level = 0.0

    def __init__(self, training_runs: int = 4) -> None:
        self.training_runs = training_runs
        self._iterations = 0
        self._steered = 0

    def reset(self) -> None:
        self._iterations = 0
        self._steered = 0

    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        # Prime: in the attacker's context the shared call goes to the gadget.
        for _ in range(self.training_runs):
            env.attacker_branch(SHARED_CALL_PC, True, MALICIOUS_TARGET,
                                BranchType.INDIRECT)
        # Trigger: the victim reaches the shared call; the BTB supplies the
        # speculative target before the pointer load resolves.
        predicted = env.victim_btb_predicted_target(SHARED_CALL_PC)
        steered = predicted == MALICIOUS_TARGET
        env.victim_branch(SHARED_CALL_PC, True, LEGITIMATE_TARGET,
                          BranchType.INDIRECT)
        self._iterations += 1
        if steered:
            self._steered += 1
        # Observation through the Flush+Reload channel.
        return env.channel.observe(steered)

    def extra_details(self) -> dict:
        if self._iterations == 0:
            return {}
        return {"steering_rate": self._steered / self._iterations}
