"""Jump-over-ASLR: contention-based BTB attack on an SMT core.

The attacker and the victim run concurrently on the two hardware threads of
an SMT core.  The attacker fills the BTB sets corresponding to a range of
candidate addresses with its own branches and keeps probing them; when the
victim executes a taken branch, the BTB update evicts an attacker entry in
the set determined by the victim branch's address bits.  Identifying which
set was disturbed reveals those address bits and defeats ASLR.

Against Noisy-XOR-BTB the victim's update lands at an index scrambled by the
victim's private index key, so the disturbed set carries no information about
the address; content-only XOR-BTB leaves the index intact and therefore does
not help (Table 1's "No Protection" entry for contention on SMT).
"""

from __future__ import annotations

import random

from ..types import BranchType
from .base import Attack
from .primitives import AttackEnvironment

__all__ = ["JumpOverAslrAttack"]

#: Base of the region in which the victim's branch address is hidden.
CANDIDATE_BASE = 0x0050_0000


class JumpOverAslrAttack(Attack):
    """Contention-based recovery of victim branch address bits via the BTB.

    Args:
        candidate_sets: number of candidate BTB sets the hidden address may
            map to (the number of ASLR bits recovered is ``log2`` of this).
    """

    name = "jump_over_aslr"
    target_structure = "btb"
    kind = "contention"

    def __init__(self, candidate_sets: int = 16, seed: int = 41) -> None:
        self.candidate_sets = candidate_sets
        self._rng = random.Random(seed)
        self.chance_level = 1.0 / candidate_sets

    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        btb = env.bpu.btb
        secret_slot = self._rng.randrange(self.candidate_sets)
        victim_pc = CANDIDATE_BASE + secret_slot * 4
        stride = btb.n_sets * 4

        # Prime: occupy every way of every candidate set with attacker branches.
        attacker_pcs = {}
        for slot in range(self.candidate_sets):
            pcs = [CANDIDATE_BASE + slot * 4 + stride * (w + 1)
                   for w in range(btb.n_ways)]
            attacker_pcs[slot] = pcs
            for pc in pcs:
                env.attacker_branch(pc, True, pc + 0x40, BranchType.DIRECT)

        # The victim (on the other hardware thread) executes its hidden taken
        # branch; no context switch separates prime and probe on an SMT core.
        env.victim_branch(victim_pc, True, victim_pc + 0x80, BranchType.DIRECT)

        # Probe: find the candidate set in which one of the attacker's
        # entries was evicted.  Each entry is timed three times and the
        # majority vote taken, which is how real attacks suppress timing
        # noise.
        disturbed = []
        for slot in range(self.candidate_sets):
            for pc in attacker_pcs[slot]:
                misses = sum(0 if env.attacker_btb_probe(pc) else 1 for _ in range(3))
                if misses >= 2:
                    disturbed.append(slot)
                    break
        if len(disturbed) == 1:
            inferred = disturbed[0]
        elif disturbed:
            inferred = self._rng.choice(disturbed)
        else:
            inferred = self._rng.randrange(self.candidate_sets)
        return inferred == secret_slot
