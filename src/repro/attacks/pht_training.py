"""Malicious PHT training (the paper's PoC Listing 2, Spectre-V1 style).

The attacker and the victim share a function containing a bounds-check-like
conditional branch.  The attacker repeatedly calls it with in-bounds arguments
to train the branch *taken*; when the victim later calls it with an
out-of-bounds argument, the predictor steers the victim down the taken
(secret-accessing) path speculatively, and the leak is observed through a
Flush+Reload probe line.

Following the paper's measurement protocol: one hundred train-and-trigger
attempts form one iteration, and the iteration counts as a successful attack
when the victim followed the trained direction more than ninety times.
"""

from __future__ import annotations

import random

from ..types import BranchType
from .base import Attack
from .primitives import AttackEnvironment

__all__ = ["PhtTrainingAttack"]

#: Address of the shared bounds-check branch.
SHARED_BRANCH_PC = 0x0041_2340
#: Taken-path target (the secret-dependent access).
TAKEN_TARGET = 0x0041_2380


class PhtTrainingAttack(Attack):
    """Reuse-based malicious training of a shared PHT entry.

    Args:
        attempts_per_iteration: train-and-trigger attempts per iteration
            (the paper uses 100).
        success_threshold: attempts that must follow the trained direction
            for the iteration to count as successful (the paper uses > 90).
        training_runs: attacker executions of the shared branch per attempt.
        seed: RNG seed for the victim's argument pattern.
    """

    name = "pht_training"
    target_structure = "pht"
    kind = "reuse"
    chance_level = 0.0  # P(>90 of 100 followed | random prediction) is ~0.

    def __init__(self, attempts_per_iteration: int = 100,
                 success_threshold: int = 90, training_runs: int = 6,
                 seed: int = 99) -> None:
        self.attempts_per_iteration = attempts_per_iteration
        self.success_threshold = success_threshold
        self.training_runs = training_runs
        self._rng = random.Random(seed)
        self._attempts = 0
        self._followed = 0

    def reset(self) -> None:
        self._attempts = 0
        self._followed = 0

    def run_iteration(self, env: AttackEnvironment, iteration: int) -> bool:
        followed = 0
        for _ in range(self.attempts_per_iteration):
            # Prime: the attacker trains the shared branch taken (in-bounds calls).
            for _ in range(self.training_runs):
                env.attacker_branch(SHARED_BRANCH_PC, True, TAKEN_TARGET,
                                    BranchType.CONDITIONAL)
            # Trigger: the victim calls the shared function with an
            # out-of-bounds argument; the *prediction* decides its speculative
            # path, the resolved direction is not-taken.
            predicted = env.victim_predicted_direction(SHARED_BRANCH_PC)
            env.victim_branch(SHARED_BRANCH_PC, False, TAKEN_TARGET,
                              BranchType.CONDITIONAL)
            # The attacker observes the speculative leak via Flush+Reload.
            if env.channel.observe(predicted):
                followed += 1
            self._attempts += 1
        self._followed += followed
        return followed > self.success_threshold

    def extra_details(self) -> dict:
        if self._attempts == 0:
            return {}
        return {"training_accuracy": self._followed / self._attempts}
