"""Section 5.5(3): proof-of-concept attack & defense experiments.

The paper runs the Listing 1 (BTB) and Listing 2 (PHT) proof-of-concept
attacks 10 000 iterations on the FPGA prototype: without protection the
training accuracy is 96.5% (BTB) and 97.2% (PHT); with XOR-based isolation it
drops below 1%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..attacks.harness import run_attack
from .base import ExperimentResult
from .scaling import ExperimentScale, default_scale

__all__ = ["run", "PAPER_BASELINE_ACCURACY"]

#: The paper's baseline PoC training accuracy per structure.
PAPER_BASELINE_ACCURACY = {"btb": 0.965, "pht": 0.972}


def run(scale: Optional[ExperimentScale] = None,
        mechanisms: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Reproduce the PoC attack-and-defense experiment.

    Args:
        scale: experiment scale (controls the iteration count).
        mechanisms: protection presets to evaluate; defaults to the baseline
            plus the XOR-based mechanisms the paper reports.
    """
    scale = scale or default_scale()
    mechanisms = list(mechanisms) if mechanisms is not None else [
        "baseline", "xor_bp", "noisy_xor_bp"]

    rows = []
    for mechanism in mechanisms:
        btb_result = run_attack("spectre_v2_btb_training", mechanism,
                                iterations=scale.poc_iterations)
        # One PHT iteration bundles 100 training attempts, so fewer iterations
        # give the same number of attempts as the BTB attack.
        pht_result = run_attack("pht_training", mechanism,
                                iterations=max(20, scale.poc_iterations // 20))
        pht_accuracy = pht_result.details.get("training_accuracy", 0.0)
        rows.append([
            mechanism,
            f"{100 * btb_result.success_rate:.2f}%",
            f"{100 * PAPER_BASELINE_ACCURACY['btb']:.1f}%" if mechanism == "baseline"
            else "< 1%",
            f"{100 * pht_accuracy:.2f}%",
            f"{100 * PAPER_BASELINE_ACCURACY['pht']:.1f}%" if mechanism == "baseline"
            else "< 1% (iteration criterion)",
            f"{100 * pht_result.success_rate:.2f}%",
        ])
    return ExperimentResult(
        name="PoC attacks (Section 5.5)",
        description="Training accuracy of the Listing 1 (BTB) and Listing 2 (PHT) "
                    "proof-of-concept attacks",
        headers=["mechanism", "BTB training success", "paper",
                 "PHT per-attempt training accuracy", "paper",
                 "PHT >90/100 iteration success"],
        rows=rows,
        paper_claim="baseline accuracy 96.5% (BTB) / 97.2% (PHT); below 1% with "
                    "XOR-based isolation",
        notes="The BTB success rate is measured through a noisy Flush+Reload "
              "channel, mirroring the paper's RISC-V measurement noise.")
