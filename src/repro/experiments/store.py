"""Content-addressed, engine-versioned result store.

The PR 4 sharding pipeline made the shard artifact — a JSON mapping of
``CaseSpec`` cache keys to serialised :class:`~repro.cpu.stats.RunResult`
payloads — the unit of exchange between machines.  This module gives those
results a durable, cross-machine home:

* entries are **content-addressed** by the existing ``CaseSpec.cache_key()``
  (which already folds in :data:`~repro.experiments.executor.ENGINE_VERSION`,
  the pair, config, preset, scale, seed offset and overrides), laid out as
  ``<store>/<engine>/<key[:2]>/<key>.json``;
* every entry embeds a SHA-256 digest of its canonical result payload, so
  bit-rot, truncated writes and hand-edits are detected instead of silently
  merged into figures;
* :meth:`ResultStore.ingest` / :meth:`ResultStore.export` exchange entries
  through the shard-artifact ``cases`` format (``repro run all --shard``
  output and ``repro store export`` output are both ingestable), refusing
  cross-engine imports;
* :meth:`ResultStore.gc` drops entries from stale engine revisions (and,
  given manifest hashes, prunes superseded-manifest entries) and
  :meth:`ResultStore.verify` audits the whole store;
* :meth:`ResultStore.register_manifest` records which cache keys a manifest
  owns (``<store>/<engine>/manifests/<hash>.json``), so ``gc``/``export``
  can be **manifest-scoped** — the exchange unit stops growing with
  superseded manifests;
* :meth:`ResultStore.ingest_url` federates stores: it pulls a remote
  service's ``/v1/store/export`` payload through the same digest-verified
  :meth:`ResultStore.ingest` path used for local artifacts.

:class:`~repro.experiments.executor.RunResultCache` consults a store (from
``REPRO_STORE_DIR`` or an explicit instance) as its third level — memory →
``REPRO_CACHE_DIR`` → store — and writes every finished simulation through
to it, so any machine or CI shard can publish results for every other to
reuse without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import shutil
from typing import Dict, List, Optional, Tuple

from ..cpu.stats import RunResult, run_result_from_dict, run_result_to_dict
from .executor import ENGINE_VERSION, atomic_write_json, sweep_tmp_files

__all__ = ["MANIFESTS_DIR", "MANIFEST_SCHEMA", "QUARANTINE_DIR",
           "STORE_SCHEMA", "ResultStore", "env_store", "result_digest"]

logger = logging.getLogger(__name__)

#: Name of the store subdirectory corrupt entries are moved into.  Keeping
#: the damaged bytes (instead of just treating them as a miss) preserves the
#: evidence — bit-rot, a torn sync, a nondeterministic build — while
#: guaranteeing the entry can never be served again.
QUARANTINE_DIR = "quarantine"

#: Store entry schema revision (bumped on incompatible entry-layout changes).
STORE_SCHEMA = 1

#: Name of the per-engine subdirectory holding manifest indexes.  It sits
#: next to the two-hex-char entry buckets, which every bucket walk filters
#: by name — so indexes are invisible to ``keys``/``verify``/``export``.
MANIFESTS_DIR = "manifests"

#: Manifest-index schema revision.
MANIFEST_SCHEMA = 1

#: Legitimate entry keys are ``CaseSpec.cache_key()`` SHA-256 hex digests.
#: Ingest fullmatches every artifact key against this before building a
#: path from it: artifacts are a cross-machine exchange format, and a
#: crafted key like ``../../x`` (or one with a trailing newline, which a
#: ``$``-anchored match would accept) must never reach the filesystem.
_KEY_RE = re.compile(r"[0-9a-f]{64}")

#: Marker file written at the store root on first write.  ``gc`` refuses to
#: run without it: deleting "stale engine" subdirectories of a directory
#: that is not actually a result store (a mistyped ``--dir`` or
#: ``REPRO_STORE_DIR``) would be recursive deletion of arbitrary user data.
STORE_MARKER = ".repro-result-store.json"


def _canonical(data: dict) -> str:
    return json.dumps(data, sort_keys=True)


def result_digest(data: dict) -> str:
    """SHA-256 over the canonical JSON serialisation of a result payload."""
    return hashlib.sha256(_canonical(data).encode("utf-8")).hexdigest()


def env_store() -> "Optional[ResultStore]":
    """Store from the ``REPRO_STORE_DIR`` environment variable (or ``None``)."""
    directory = os.environ.get("REPRO_STORE_DIR") or None
    if directory is None:
        return None
    return ResultStore(directory)


class ResultStore:
    """A directory of content-addressed, digest-verified run results.

    Args:
        directory: store root.  When omitted, ``REPRO_STORE_DIR`` is
            consulted; a store always needs an explicit location (unlike the
            result cache there is no memory-only mode — a store exists to be
            exchanged).
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_STORE_DIR") or None
        if not directory:
            raise ValueError(
                "result store needs a directory: pass one explicitly or set "
                "REPRO_STORE_DIR")
        self.directory = directory

    # -- entry layout -----------------------------------------------------------
    def entry_path(self, key: str, engine: str = ENGINE_VERSION) -> str:
        """Path of one entry: ``<store>/<engine>/<key[:2]>/<key>.json``."""
        return os.path.join(self.directory, engine, key[:2], f"{key}.json")

    def engines(self) -> List[str]:
        """Engine revisions present in the store (sorted).

        Only subdirectories with the store's bucket layout count: a store
        rooted in a shared directory (``REPRO_STORE_DIR=~/results`` next to
        the user's own folders) must have its foreign siblings invisible to
        every operation — ``verify`` must not flag them corrupt, ``export``
        must not trip over them, ``gc`` must never delete them.
        """
        try:
            children = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(entry for entry in children
                      if entry != QUARANTINE_DIR
                      and os.path.isdir(os.path.join(self.directory, entry))
                      and self._looks_like_engine_dir(entry))

    def _looks_like_engine_dir(self, engine: str) -> bool:
        """Whether a subdirectory has the store's bucket layout.

        Qualifies only when it contains at least one two-hex-char bucket
        directory (the store never creates an engine dir without an entry,
        so empty dirs are foreign).  The any-bucket (rather than
        all-children) rule keeps an engine's entries visible to verify/gc
        even if a stray file lands at the engine root, while a foreign
        sibling folder (no bucket dirs) stays invisible to every operation.
        """
        root = os.path.join(self.directory, engine)
        try:
            children = os.listdir(root)
        except OSError:
            return False
        return any(
            re.fullmatch(r"[0-9a-f]{2}", child)
            and os.path.isdir(os.path.join(root, child))
            for child in children)

    def keys(self, engine: str = ENGINE_VERSION) -> List[str]:
        """Sorted cache keys stored under one engine revision."""
        found: List[str] = []
        root = os.path.join(self.directory, engine)
        try:
            buckets = sorted(os.listdir(root))
        except OSError:
            return []
        for bucket in buckets:
            bucket_dir = os.path.join(root, bucket)
            # Only two-hex-char bucket directories hold entries; the
            # ``manifests/`` index directory (or any stray file/folder at
            # the engine root) must stay invisible to keys/verify/export.
            if not re.fullmatch(r"[0-9a-f]{2}", bucket) \
                    or not os.path.isdir(bucket_dir):
                continue
            found.extend(sorted(
                name[:-len(".json")] for name in os.listdir(bucket_dir)
                if name.endswith(".json")))
        return found

    def __len__(self) -> int:
        return len(self.keys())

    # -- get / put --------------------------------------------------------------
    def _load_entry(self, path: str) -> Tuple[Optional[dict], Optional[str]]:
        """Read one entry file; returns ``(payload, problem)``.

        ``problem`` is ``"absent"`` for a missing file — an ordinary cache
        miss, which must never be quarantined — and a descriptive string for
        every way an existing file can be bad.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None, "absent"
        except OSError:
            return None, "unreadable"
        except ValueError:
            return None, "not valid JSON"
        if not isinstance(payload, dict):
            return None, "not a JSON object"
        if payload.get("schema") != STORE_SCHEMA:
            return None, f"unsupported entry schema {payload.get('schema')!r}"
        result = payload.get("result")
        if not isinstance(result, dict):
            return None, "missing result payload"
        if payload.get("sha256") != result_digest(result):
            return None, "digest mismatch (corrupt or hand-edited entry)"
        return payload, None

    @property
    def quarantine_dir(self) -> str:
        """Directory corrupt entries are moved into (``<store>/quarantine``)."""
        return os.path.join(self.directory, QUARANTINE_DIR)

    def _quarantine(self, path: str, problem: str) -> Optional[str]:
        """Move one bad entry into quarantine (best-effort; never raises).

        The entry keeps its engine/bucket layout under the quarantine root,
        so a post-mortem knows exactly which key and revision it was filed
        under.  On a read-only store the move fails silently and the entry
        simply stays a miss.
        """
        relative = os.path.relpath(path, self.directory)
        target = os.path.join(self.quarantine_dir, relative)
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(path, target)
        except OSError:
            logger.warning("store entry %s is %s (and could not be "
                           "quarantined); treating it as a miss",
                           relative, problem)
            return None
        logger.warning("quarantined store entry %s (%s); it will be "
                       "re-simulated", relative, problem)
        return target

    def quarantined(self) -> List[str]:
        """Relative paths of everything currently in quarantine (sorted)."""
        found: List[str] = []
        for root, _dirs, files in os.walk(self.quarantine_dir):
            for name in files:
                found.append(os.path.relpath(os.path.join(root, name),
                                             self.quarantine_dir))
        return sorted(found)

    def get(self, key: str, engine: str = ENGINE_VERSION) -> Optional[RunResult]:
        """Fetch one result, or ``None`` when absent *or* failing
        verification — a corrupt entry is quarantined and treated as a miss
        by consumers (so the case re-simulates), never replayed into
        figures."""
        path = self.entry_path(key, engine)
        payload, problem = self._load_entry(path)
        if payload is None or problem is not None:
            if problem != "absent":
                self._quarantine(path, problem or "unreadable")
            return None
        if payload.get("key") != key or payload.get("engine") != engine:
            self._quarantine(
                path, f"mis-filed (claims key "
                      f"{str(payload.get('key'))[:12]}…, engine "
                      f"{payload.get('engine')!r})")
            return None
        try:
            return run_result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, "result does not parse as a RunResult")
            return None

    def _write_marker(self) -> None:
        path = os.path.join(self.directory, STORE_MARKER)
        if not os.path.exists(path):
            os.makedirs(self.directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump({"schema": STORE_SCHEMA,
                           "kind": "repro-result-store"}, handle)
                handle.write("\n")

    def _write(self, key: str, data: dict, engine: str = ENGINE_VERSION,
               digest: Optional[str] = None) -> None:
        self._write_marker()
        path = self.entry_path(key, engine)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(path, {
            "schema": STORE_SCHEMA,
            "engine": engine,
            "key": key,
            "sha256": digest if digest is not None else result_digest(data),
            "result": data,
        })

    def put(self, key: str, result: RunResult) -> None:
        """Store one finished result under the current engine version.

        A valid identical entry already present under the key is left
        untouched (warm-cache runs re-publish every disk hit; skipping the
        rewrite turns those into one read each), an absent entry is written,
        a corrupt or mis-filed one is quarantined and replaced (publication
        heals bit-rot while preserving the damaged bytes) — and a valid
        entry with a *different* digest raises: the key is
        content-addressed, so two results under one key is the determinism
        violation :meth:`ingest` also refuses, caught here at publication
        time instead of on some other machine later.
        """
        data = run_result_to_dict(result)
        digest = result_digest(data)
        path = self.entry_path(key)
        existing, problem = self._load_entry(path)
        if existing is not None and problem is None:
            if existing.get("key") == key:
                if existing.get("sha256") == digest:
                    return
                raise ValueError(
                    f"case {key[:12]}… is already stored with a different "
                    "result digest; the engine version should have changed, "
                    "or one side is a nondeterministic build")
            self._quarantine(
                path, f"mis-filed (claims key "
                      f"{str(existing.get('key'))[:12]}…)")
        elif problem not in (None, "absent"):
            self._quarantine(path, problem)
        self._write(key, data, digest=digest)

    # -- manifest indexes -------------------------------------------------------
    @staticmethod
    def normalize_manifest_hash(value: str,
                                engine: str = ENGINE_VERSION) -> str:
        """Accept both the bare 64-hex digest and the ``engine:hash``
        spelling that ``repro plan --hash`` prints.

        Raises:
            ValueError: a prefix naming a *different* engine (other engine
                revisions are never replayed into current figures, so
                scoping by their manifests is a mistake worth naming), or a
                remainder that is not a SHA-256 digest.
        """
        raw = str(value).strip()
        prefix, sep, rest = raw.rpartition(":")
        if sep:
            if prefix != engine:
                raise ValueError(
                    f"manifest hash {raw[:80]!r} names engine {prefix!r}, "
                    f"but this store operates on engine {engine!r}")
            raw = rest
        if not _KEY_RE.fullmatch(raw):
            raise ValueError(
                f"manifest hash {raw[:40]!r} is not a SHA-256 digest; pass "
                "the 64-hex digest, or the engine:hash line "
                "'repro plan --hash' prints")
        return raw

    def manifest_index_path(self, manifest_hash: str,
                            engine: str = ENGINE_VERSION) -> str:
        """Path of one manifest index
        (``<store>/<engine>/manifests/<hash>.json``)."""
        return os.path.join(self.directory, engine, MANIFESTS_DIR,
                            f"{manifest_hash}.json")

    def register_manifest(self, manifest_hash: str, keys: List[str],
                          engine: str = ENGINE_VERSION) -> str:
        """Record which cache keys a manifest owns, for scoped gc/export.

        Idempotent: re-registering the same hash with the same key set is a
        no-op.  The manifest hash covers the case set, so a same-hash
        registration with a *different* key set is the same determinism
        violation :meth:`put` refuses for entries.

        Returns:
            The index path.
        """
        if not _KEY_RE.fullmatch(manifest_hash):
            raise ValueError(
                f"manifest hash {manifest_hash[:40]!r} is not a SHA-256 "
                "digest; refusing to build a store path from it")
        keys = sorted(set(keys))
        for key in keys:
            if not isinstance(key, str) or not _KEY_RE.fullmatch(key):
                raise ValueError(
                    f"manifest {manifest_hash[:12]}…: case key "
                    f"{str(key)[:40]!r} is not a SHA-256 cache key")
        path = self.manifest_index_path(manifest_hash, engine)
        payload = {
            "schema": MANIFEST_SCHEMA,
            "kind": "manifest-index",
            "engine": engine,
            "manifest_hash": manifest_hash,
            "cases": keys,
        }
        existing = self._load_manifest_index(path)
        if existing is not None:
            if existing.get("cases") == keys:
                return path
            raise ValueError(
                f"manifest {manifest_hash[:12]}… is already registered with "
                "a different case set; the hash covers the cases, so one "
                "side was planned by an inconsistent build")
        self._write_marker()
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(path, payload)
        return path

    def _load_manifest_index(self, path: str) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            raise ValueError(
                f"manifest index {path} is unreadable or not valid JSON; "
                "delete it and re-register the manifest") from None
        if not isinstance(payload, dict) \
                or payload.get("kind") != "manifest-index" \
                or payload.get("schema") != MANIFEST_SCHEMA \
                or not isinstance(payload.get("cases"), list):
            raise ValueError(
                f"manifest index {path} is ill-formed; delete it and "
                "re-register the manifest")
        return payload

    def manifests(self, engine: str = ENGINE_VERSION) -> List[str]:
        """Sorted manifest hashes registered under one engine revision."""
        root = os.path.join(self.directory, engine, MANIFESTS_DIR)
        try:
            names = os.listdir(root)
        except OSError:
            return []
        return sorted(name[:-len(".json")] for name in names
                      if name.endswith(".json")
                      and _KEY_RE.fullmatch(name[:-len(".json")]))

    def manifest_keys(self, manifest_hash: str,
                      engine: str = ENGINE_VERSION) -> List[str]:
        """The sorted case keys a registered manifest owns.

        Raises:
            ValueError: unregistered hash (naming what *is* registered) or a
                corrupt index file.
        """
        manifest_hash = self.normalize_manifest_hash(manifest_hash, engine)
        payload = self._load_manifest_index(
            self.manifest_index_path(manifest_hash, engine))
        if payload is None:
            known = self.manifests(engine)
            listing = ", ".join(h[:12] + "…" for h in known) or "(none)"
            raise ValueError(
                f"manifest {manifest_hash[:12]}… is not registered in "
                f"{self.directory} for engine {engine}; registered: "
                f"{listing}. A manifest registers when 'repro run all' or a "
                "service job completes against this store")
        return [key for key in payload["cases"] if isinstance(key, str)]

    def _manifest_union(self, manifest_hashes: List[str],
                        engine: str = ENGINE_VERSION) -> set:
        keep = set()
        for manifest_hash in manifest_hashes:
            keep.update(self.manifest_keys(manifest_hash, engine))
        return keep

    # -- exchange ---------------------------------------------------------------
    def ingest_url(self, url: str) -> Tuple[int, int]:
        """Federate: ingest a remote store export (or shard artifact) by URL.

        Downloads to a temporary file and reuses the digest-verified
        :meth:`ingest` path, so a remote service's ``/v1/store/export``
        payload passes exactly the checks a local artifact does.

        Returns:
            ``(added, skipped)`` entry counts.

        Raises:
            ValueError: non-HTTP(S) URL, download failure, or any
                :meth:`ingest` rejection.
        """
        import tempfile
        import urllib.error
        import urllib.request

        scheme = url.split(":", 1)[0].lower()
        if scheme not in ("http", "https"):
            raise ValueError(
                f"store ingest URLs must be http(s), got {url!r}")
        tmp = tempfile.NamedTemporaryFile(mode="wb", suffix=".json",
                                          prefix="repro-ingest-",
                                          delete=False)
        try:
            try:
                with urllib.request.urlopen(url, timeout=60.0) as response:
                    shutil.copyfileobj(response, tmp)
                tmp.close()
            except (urllib.error.URLError, OSError) as exc:
                raise ValueError(f"{url}: download failed ({exc})") from None
            try:
                return self.ingest(tmp.name)
            except ValueError as exc:
                # The ingest error names the temp file; name the URL instead.
                raise ValueError(
                    str(exc).replace(tmp.name, url)) from None
        finally:
            tmp.close()
            try:
                os.remove(tmp.name)
            except OSError:
                pass

    def ingest(self, path: str) -> Tuple[int, int]:
        """Import every case result from a shard artifact or store export.

        Accepts any JSON object carrying ``engine`` and a ``cases`` mapping —
        the ``repro run all --shard`` artifact and the ``repro store export``
        payload share that exchange shape.  Entries already present with an
        identical digest are skipped; a same-key entry with a *different*
        digest is a determinism violation (the key is content-addressed) and
        aborts the ingest.

        Returns:
            ``(added, skipped)`` entry counts.

        Raises:
            ValueError: unreadable/ill-formed file, engine mismatch, a case
                payload that does not parse as a RunResult, or a digest
                conflict with an existing entry.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ValueError(f"{path}: {exc}") from None
        except ValueError:
            raise ValueError(f"{path}: not valid JSON") from None
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("cases"), dict) or \
                "engine" not in payload:
            raise ValueError(
                f"{path}: not a shard artifact or store export "
                "(expected an object with 'engine' and 'cases')")
        if payload.get("kind") == "store-export":
            expected_schema = STORE_SCHEMA
        else:
            # Imported lazily (pipeline imports manifest/executor, not this
            # module, but keeping the edge one-directional at import time).
            from .pipeline import ARTIFACT_SCHEMA

            expected_schema = ARTIFACT_SCHEMA
        if payload.get("schema") != expected_schema:
            raise ValueError(
                f"{path}: unsupported artifact schema "
                f"{payload.get('schema')!r} (this build reads "
                f"{expected_schema}); was it produced by an incompatible "
                "revision?")
        engine = payload["engine"]
        if engine != ENGINE_VERSION:
            raise ValueError(
                f"{path}: produced by engine {engine!r}, this build is "
                f"{ENGINE_VERSION!r}; cross-engine results are never "
                "ingested (gc stale engines instead of mixing them)")
        added = 0
        skipped = 0
        for key in sorted(payload["cases"]):
            if not isinstance(key, str) or not _KEY_RE.fullmatch(key):
                raise ValueError(
                    f"{path}: case key {str(key)[:40]!r} is not a SHA-256 "
                    "cache key; refusing to build a store path from it")
            data = payload["cases"][key]
            try:
                run_result_from_dict(data)
            except (KeyError, TypeError, ValueError, AttributeError):
                raise ValueError(
                    f"{path}: case {key[:12]}… does not parse as a "
                    "RunResult; refusing to ingest a corrupt artifact"
                ) from None
            digest = result_digest(data)
            entry_path = self.entry_path(key)
            existing, problem = self._load_entry(entry_path)
            if existing is not None and problem is None:
                if existing.get("sha256") == digest:
                    skipped += 1
                    continue
                raise ValueError(
                    f"{path}: case {key[:12]}… conflicts with the stored "
                    "entry (same key, different result digest); the engine "
                    "version should have changed, or one side is corrupt")
            if problem not in (None, "absent"):
                self._quarantine(entry_path, problem)
            self._write(key, data, digest=digest)
            added += 1
        return added, skipped

    def export(self, path: str,
               manifest_hashes: Optional[List[str]] = None) -> Tuple[str, int]:
        """Write current-engine entries as one exchange artifact.

        The payload carries the same ``cases`` mapping as a shard artifact,
        so the receiving side uses the one :meth:`ingest` path for both.
        Corrupt entries fail the export loudly (run :meth:`verify` / ``gc``)
        rather than silently exporting damaged results.

        Args:
            path: output artifact path.
            manifest_hashes: when given, export only entries owned by these
                registered manifests (their key union) — the exchange unit
                stays the size of the work being exchanged instead of the
                whole corpus.  Unregistered hashes raise.

        Returns:
            ``(path, entry count)``.
        """
        keys = self.keys()
        if manifest_hashes:
            keep = self._manifest_union(list(manifest_hashes))
            keys = [key for key in keys if key in keep]
        cases: Dict[str, dict] = {}
        for key in keys:
            payload, problem = self._load_entry(self.entry_path(key))
            if payload is None or problem is not None:
                raise ValueError(
                    f"store entry {key[:12]}… is {problem}; run "
                    "'repro store verify' and gc before exporting")
            if payload.get("key") != key or \
                    payload.get("engine") != ENGINE_VERSION:
                # An internally-consistent entry filed under the wrong
                # key/engine (bad sync, manual copy) would otherwise export
                # — and later replay — the wrong simulation for this key.
                raise ValueError(
                    f"store entry {key[:12]}… is mis-filed (claims key "
                    f"{str(payload.get('key'))[:12]}…, engine "
                    f"{payload.get('engine')!r}); run 'repro store verify'")
            cases[key] = payload["result"]
        artifact = {
            "schema": STORE_SCHEMA,
            "kind": "store-export",
            "engine": ENGINE_VERSION,
            "entries": len(cases),
            "cases": cases,
        }
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        atomic_write_json(path, artifact, trailing_newline=True)
        return path, len(cases)

    # -- maintenance ------------------------------------------------------------
    def gc(self, keep_engine: str = ENGINE_VERSION,
           manifest_hashes: Optional[List[str]] = None) -> int:
        """Delete every entry not belonging to ``keep_engine``.

        Args:
            keep_engine: entries of every *other* engine revision are
                removed (the store is engine-versioned precisely so results
                from a superseded simulation engine can never be replayed
                into current figures).
            manifest_hashes: when given, additionally prune ``keep_engine``
                entries owned by *none* of these registered manifests —
                superseded-manifest results — along with the superseded
                manifest indexes themselves.  Entries shared by a live
                manifest are retained.  Unregistered hashes raise before
                anything is deleted.

        Returns the number of entries removed.
        """
        if not os.path.exists(os.path.join(self.directory, STORE_MARKER)):
            try:
                empty = not os.listdir(self.directory)
            except OSError:
                empty = True
            if empty:
                return 0  # nothing here yet: a clean no-op, not an error
            raise ValueError(
                f"{self.directory} does not look like a result store "
                f"(missing {STORE_MARKER}); refusing to delete its "
                "subdirectories")
        live = set()
        keep_keys = None
        if manifest_hashes:
            live = {self.normalize_manifest_hash(h, keep_engine)
                    for h in manifest_hashes}
            keep_keys = self._manifest_union(sorted(live), keep_engine)
        removed = 0
        for engine in self.engines():
            if engine == keep_engine:
                continue
            count = len(self.keys(engine))
            if count == 0:
                # Nothing of ours inside: an empty directory also satisfies
                # the engine-layout check, so deleting it could take out a
                # foreign (empty) folder in a shared store root.
                continue
            removed += count
            shutil.rmtree(os.path.join(self.directory, engine))
        if keep_keys is None:
            return removed
        for key in self.keys(keep_engine):
            if key in keep_keys:
                continue
            path = self.entry_path(key, keep_engine)
            try:
                os.remove(path)
                removed += 1
            except OSError:
                continue
            bucket_dir = os.path.dirname(path)
            try:
                os.rmdir(bucket_dir)  # reclaim now-empty buckets
            except OSError:
                pass
        for manifest_hash in self.manifests(keep_engine):
            if manifest_hash not in live:
                try:
                    os.remove(self.manifest_index_path(manifest_hash,
                                                       keep_engine))
                except OSError:
                    pass
        return removed

    def sweep_tmp(self) -> List[str]:
        """Remove orphaned ``*.tmp.<pid>`` files left by killed writers.

        Every atomic write stages through such a file; a process killed
        between staging and rename leaks one.  Only files whose writer pid
        is gone are removed, so a concurrently-running shard's in-flight
        writes are safe.  Returns the removed paths.
        """
        if not os.path.isdir(self.directory):
            return []
        return sweep_tmp_files(self.directory)

    def verify(self) -> dict:
        """Audit every entry in the store (all engine revisions).

        Returns:
            A report dictionary: ``entries`` (total scanned), ``engines``
            (per-revision entry counts), ``corrupt`` — a list of
            ``(relative path, problem)`` pairs for entries that are
            unreadable, fail their digest, or are filed under the wrong
            key/engine — and ``quarantined``, the number of previously
            quarantined files awaiting a post-mortem.  Verify is a read-only
            audit: it reports corrupt entries but moves nothing (the serving
            paths — ``get``/``put``/``ingest`` — quarantine on contact).
        """
        engines: Dict[str, int] = {}
        corrupt: List[Tuple[str, str]] = []
        total = 0
        for engine in self.engines():
            engines[engine] = 0
            for key in self.keys(engine):
                total += 1
                engines[engine] += 1
                path = self.entry_path(key, engine)
                relative = os.path.relpath(path, self.directory)
                payload, problem = self._load_entry(path)
                if problem is not None:
                    corrupt.append((relative, problem))
                    continue
                if payload.get("key") != key:
                    corrupt.append((relative,
                                    f"filed under key {key[:12]}… but claims "
                                    f"{str(payload.get('key'))[:12]}…"))
                elif payload.get("engine") != engine:
                    corrupt.append((relative,
                                    f"filed under engine {engine} but claims "
                                    f"{payload.get('engine')!r}"))
        return {"directory": self.directory, "entries": total,
                "engines": engines, "corrupt": corrupt,
                "quarantined": len(self.quarantined())}
