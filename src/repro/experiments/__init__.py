"""Experiment drivers: one module per paper table/figure, plus ablations.

Every module exposes a ``run(scale=None, ...)`` function returning an
:class:`repro.experiments.base.ExperimentResult`; the benchmark harness under
``benchmarks/`` regenerates each table and figure by calling these, and the
examples print them.
"""

from . import (
    ablations,
    fig1_flush_single,
    fig2_flush_smt,
    fig3_precise_flush,
    fig7_xor_btb,
    fig8_xor_pht,
    fig9_xor_bp,
    fig10_smt_predictors,
    poc_attacks,
    sensitivity,
    table1_security,
    table2_configs,
    table3_benchmarks,
    table4_privilege,
    table5_hwcost,
)
from .base import ExperimentResult
from .executor import (
    ENGINE_VERSION,
    CaseSpec,
    RepetitionExecutor,
    RunResultCache,
    SweepExecutor,
    default_executor,
    env_jobs,
    parse_jobs,
)
from .manifest import (
    ExperimentDef,
    ExperimentManifest,
    ShardSpec,
    build_manifest,
    env_shard,
    experiment_registry,
    parse_repetitions,
    parse_shard,
)
from .pipeline import (
    assemble_experiment,
    execute_shard,
    merge_artifacts,
    run_serial,
)
from .store import ResultStore, env_store
from .runner import (
    build_bpu,
    overhead_figure_single_thread,
    overhead_figure_smt,
    run_single_thread_case,
    run_smt_case,
    sweep_single_thread,
    sweep_smt,
)
from .scaling import (ExperimentScale, default_scale, env_scale_factor,
                      parse_scale_factor, quick_scale)

#: Registry of experiments keyed by the paper artefact they reproduce.
EXPERIMENTS = {
    "figure1": fig1_flush_single.run,
    "figure2": fig2_flush_smt.run,
    "figure3": fig3_precise_flush.run,
    "figure7": fig7_xor_btb.run,
    "figure8": fig8_xor_pht.run,
    "figure9": fig9_xor_bp.run,
    "figure10": fig10_smt_predictors.run,
    "table1": table1_security.run,
    "table2": table2_configs.run,
    "table3": table3_benchmarks.run,
    "table4": table4_privilege.run,
    "table5": table5_hwcost.run,
    "poc_attacks": poc_attacks.run,
    "ablation_encoder": ablations.encoder_ablation,
    "ablation_key_refresh": ablations.key_refresh_ablation,
    "ablation_pht_granularity": ablations.pht_granularity_ablation,
    "ablation_switch_interval": sensitivity.switch_interval_sensitivity,
    "ablation_penalty": sensitivity.mispredict_penalty_sensitivity,
    "smt4_noisy_xor": sensitivity.smt4_noisy_xor,
}

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "default_scale",
    "quick_scale",
    "env_scale_factor",
    "parse_scale_factor",
    "EXPERIMENTS",
    "ENGINE_VERSION",
    "CaseSpec",
    "RunResultCache",
    "SweepExecutor",
    "default_executor",
    "env_jobs",
    "parse_jobs",
    "ExperimentDef",
    "ExperimentManifest",
    "RepetitionExecutor",
    "ResultStore",
    "ShardSpec",
    "build_manifest",
    "env_shard",
    "env_store",
    "experiment_registry",
    "parse_repetitions",
    "parse_shard",
    "assemble_experiment",
    "execute_shard",
    "merge_artifacts",
    "run_serial",
    "build_bpu",
    "run_single_thread_case",
    "run_smt_case",
    "sweep_single_thread",
    "sweep_smt",
    "overhead_figure_single_thread",
    "overhead_figure_smt",
    "fig1_flush_single",
    "fig2_flush_smt",
    "fig3_precise_flush",
    "fig7_xor_btb",
    "fig8_xor_pht",
    "fig9_xor_bp",
    "fig10_smt_predictors",
    "table1_security",
    "table2_configs",
    "table3_benchmarks",
    "table4_privilege",
    "table5_hwcost",
    "poc_attacks",
    "ablations",
    "sensitivity",
]
