"""Figure 7: XOR-BTB and Noisy-XOR-BTB overhead on the single-threaded core.

Only the BTB is protected; the direction predictor is untouched.  The paper
reports an average loss below 0.2%, a worst case of about 1% for case6
(gobmk+libquantum, which keeps 500–800 useful residual BTB entries across
switches), and a small *speed-up* for case2 (milc+povray) because losing BTB
state makes the front end fall through, overriding some wrong taken
predictions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cpu.config import fpga_prototype
from ..workloads.pairs import SINGLE_THREAD_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor
from .runner import overhead_figure_single_thread, plan_overhead_single_thread
from .scaling import ExperimentScale, default_scale

__all__ = ["run", "plan", "setup_interval_sweep", "SWITCH_INTERVALS"]

#: Context-switch periods swept by the paper, in real cycles.
SWITCH_INTERVALS = {"4M": 4_000_000, "8M": 8_000_000, "12M": 12_000_000}


def setup_interval_sweep(scale, pairs, intervals, prefix_presets):
    """Shared plan/run setup for the Figure 7/8/9 interval-sweep drivers.

    Resolves the scale/pair/interval defaults and expands ``prefix_presets``
    (``(series-label prefix, preset)`` pairs) into the ``(label, preset,
    switch_interval)`` mechanism tuples the overhead-figure helpers expect,
    one per swept interval.  Figures 8 and 9 import this: the three drivers
    differ only in their preset pairs.
    """
    scale = scale or default_scale()
    pairs = list(pairs) if pairs is not None else list(SINGLE_THREAD_PAIRS)
    labels = list(intervals) if intervals is not None else list(SWITCH_INTERVALS)
    mechanisms: List = []
    for label in labels:
        cycles = SWITCH_INTERVALS[label]
        for prefix, preset in prefix_presets:
            mechanisms.append((f"{prefix}-{label}", preset, cycles))
    return scale, pairs, mechanisms


_PRESETS = [("XOR-BTB", "xor_btb"), ("Noisy-XOR-BTB", "noisy_xor_btb")]


def plan(scale: Optional[ExperimentScale] = None,
         pairs: Optional[Sequence[BenchmarkPair]] = None,
         intervals: Optional[Sequence[str]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Figure 7 needs (same knobs as ``run``)."""
    scale, pairs, mechanisms = setup_interval_sweep(scale, pairs, intervals, _PRESETS)
    return plan_overhead_single_thread(mechanisms, pairs, fpga_prototype(),
                                       scale)


def run(scale: Optional[ExperimentScale] = None,
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        intervals: Optional[Sequence[str]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 7.

    Args:
        scale: experiment scale.
        pairs: subset of the single-thread pairs (all 12 by default).
        intervals: subset of the switch-period labels (``"4M"``, ``"8M"``,
            ``"12M"``); all three by default.
        executor: sweep executor (the shared default when omitted).
    """
    scale, pairs, mechanisms = setup_interval_sweep(scale, pairs, intervals, _PRESETS)
    figure, _ = overhead_figure_single_thread(
        "Figure 7", "XOR-BTB / Noisy-XOR-BTB overhead on the single-threaded core",
        mechanisms, pairs, config=fpga_prototype(), scale=scale,
        executor=executor)
    rows = [[label, f"{100 * value:+.2f}%"] for label, value in figure.averages().items()]
    return ExperimentResult(
        name="Figure 7",
        description="Performance overhead of XOR-BTB and Noisy-XOR-BTB",
        headers=["configuration", "average overhead"],
        rows=rows,
        figure=figure,
        paper_claim="average loss below 0.2%; worst case about 1% (case6); "
                    "index randomisation adds no extra loss; case2 can speed up",
        notes="Scaled simulation inflates absolute percentages; the per-case "
              "ordering (case6 worst, case2 smallest/negative) and the "
              "XOR-vs-Noisy equivalence are the reproduced shapes.")
