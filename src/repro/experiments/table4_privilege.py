"""Table 4: privilege switches per million cycles (Noisy-XOR-BP-12M runs).

The paper counts privilege transitions while running each single-thread pair
under Noisy-XOR-BP with a 12 M-cycle timer period, and observes that they are
one to two orders of magnitude more frequent than context switches (0.08 per
million cycles) — which is why the XOR-BP overhead barely depends on the
timer setting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cpu.config import fpga_prototype
from ..workloads.pairs import SINGLE_THREAD_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor, default_executor
from .scaling import ExperimentScale, default_scale

__all__ = ["run", "plan", "PAPER_PRIVILEGE_SWITCH_RATES"]

#: The paper's Table 4: privilege switches per million cycles per case.
PAPER_PRIVILEGE_SWITCH_RATES = {
    "case1": 4.9, "case2": 7.0, "case3": 1.9, "case4": 2.0,
    "case5": 1.7, "case6": 1.6, "case7": 1.7, "case8": 2.0,
    "case9": 1.8, "case10": 2.7, "case11": 3.5, "case12": 1.9,
}


def _setup(scale, pairs):
    scale = scale or default_scale()
    pairs = list(pairs) if pairs is not None else list(SINGLE_THREAD_PAIRS)
    return scale, pairs


def plan(scale: Optional[ExperimentScale] = None,
         pairs: Optional[Sequence[BenchmarkPair]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Table 4 needs (same knobs as ``run``)."""
    scale, pairs = _setup(scale, pairs)
    config = fpga_prototype()
    return [CaseSpec("single", pair, config, "noisy_xor_bp", scale,
                     switch_interval=12_000_000, label="noisy_xor_bp-12M")
            for pair in pairs]


def run(scale: Optional[ExperimentScale] = None,
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Table 4.

    Args:
        scale: experiment scale.
        pairs: subset of the single-thread pairs (all 12 by default).
        executor: sweep executor (the shared default when omitted).
    """
    scale, pairs = _setup(scale, pairs)
    executor = executor or default_executor()
    results = executor.run_specs(plan(scale, pairs))
    rows = []
    for pair, result in zip(pairs, results):
        # The syscall schedule is scaled by ``syscall_time_scale``; convert the
        # measured count back to a per-million-*real*-cycle rate.
        rate = 1e6 * result.privilege_switches \
            / (result.cycles * scale.syscall_time_scale)
        context_rate = 1e6 * result.context_switches \
            / (result.cycles * scale.time_scale)
        rows.append([pair.case, pair.label(), f"{rate:.1f}",
                     PAPER_PRIVILEGE_SWITCH_RATES.get(pair.case, float("nan")),
                     f"{context_rate:.2f}"])
    return ExperimentResult(
        name="Table 4",
        description="Privilege switches per million cycles under Noisy-XOR-BP-12M",
        headers=["case", "pair", "measured privilege switches / M cycles",
                 "paper", "measured context switches / M cycles"],
        rows=rows,
        paper_claim="1.6 to 7.0 privilege switches per million cycles — far more "
                    "than the 0.08 context switches per million cycles",
        notes="Rates are converted back to real-cycle terms using the "
              "experiment's time scales.")
