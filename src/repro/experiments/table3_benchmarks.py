"""Table 3: benchmark sets (the single-thread and SMT-2 pairings)."""

from __future__ import annotations

from typing import Optional

from ..workloads.pairs import SINGLE_THREAD_PAIRS, SMT2_PAIRS
from ..workloads.spec_profiles import get_profile
from .base import ExperimentResult
from .scaling import ExperimentScale

__all__ = ["run"]


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Reproduce Table 3 (workload inventory, with profile summaries)."""
    rows = []
    for single, smt in zip(SINGLE_THREAD_PAIRS, SMT2_PAIRS):
        target_profile = get_profile(single.target)
        rows.append([
            single.case,
            single.label(),
            smt.label(),
            target_profile.static_conditional,
            f"{target_profile.branch_ratio:.2f}",
            f"{target_profile.privilege_switches_per_million_cycles:.1f}",
        ])
    return ExperimentResult(
        name="Table 3",
        description="Benchmark sets used for the single-threaded core and the "
                    "SMT-2 core, with the target benchmark's profile summary",
        headers=["case", "single-threaded core", "SMT-2",
                 "target static branches", "target branch ratio",
                 "target privilege switches / M cycles"],
        rows=rows,
        paper_claim="12 randomly selected SPEC CPU2006 pairs per platform",
        notes="SPEC binaries are replaced by calibrated synthetic behaviour "
              "profiles (see DESIGN.md, substitution table).")
