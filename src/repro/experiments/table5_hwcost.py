"""Table 5: area and timing overhead of Noisy-XOR-BP (analytic model)."""

from __future__ import annotations

from typing import Optional

from ..hwcost.estimator import btb_cost, tage_pht_cost
from .base import ExperimentResult
from .scaling import ExperimentScale

__all__ = ["run", "PAPER_TABLE5"]

#: The paper's Table 5 values: structure -> (timing overhead %, area overhead %).
PAPER_TABLE5 = {
    "BTB 2w128": (0.70, 0.24),
    "BTB 2w256": (0.94, 0.15),
    "BTB 2w512": (1.46, 0.13),
    "TAGE 6x1024": (2.10, 0.11),
    "TAGE 6x2048": (1.98, 0.09),
    "TAGE 6x4096": (2.01, 0.03),
}


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Reproduce Table 5 with the analytic hardware cost model."""
    estimates = [btb_cost(n) for n in (128, 256, 512)]
    estimates += [tage_pht_cost(n) for n in (1024, 2048, 4096)]
    rows = []
    for estimate in estimates:
        paper_timing, paper_area = PAPER_TABLE5.get(estimate.structure,
                                                    (float("nan"), float("nan")))
        rows.append([
            estimate.structure,
            f"{100 * estimate.timing_overhead:.2f}%", f"{paper_timing:.2f}%",
            f"{100 * estimate.area_overhead:.2f}%", f"{paper_area:.2f}%",
        ])
    return ExperimentResult(
        name="Table 5",
        description="Area and timing overhead of Noisy-XOR-BP (28 nm-class "
                    "analytic estimate vs the paper's synthesis results)",
        headers=["structure", "timing overhead", "paper timing",
                 "area overhead", "paper area"],
        rows=rows,
        paper_claim="timing overhead 0.70-1.46% (BTB) / ~2% (TAGE); area "
                    "overhead 0.03-0.24%",
        notes="RTL synthesis is replaced by an analytic gate/SRAM model "
              "calibrated to 28 nm-class constants (see repro.hwcost).")
