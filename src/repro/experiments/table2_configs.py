"""Table 2: out-of-order core configurations.

A configuration listing rather than a measurement: the two machines the
evaluation uses (the FPGA RISC-V prototype and the gem5 Sunny-Cove-like SMT
core) as this reproduction models them.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.config import fpga_prototype, sunny_cove_smt
from .base import ExperimentResult
from .scaling import ExperimentScale

__all__ = ["run"]


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Reproduce Table 2 (configuration inventory)."""
    fpga = fpga_prototype()
    smt = sunny_cove_smt()
    rows = [
        ["ISA (modelled abstractly)", "RISC-V", "ALPHA"],
        ["Frequency (GHz)", fpga.frequency_ghz, smt.frequency_ghz],
        ["Issue width", fpga.issue_width, smt.issue_width],
        ["Pipeline depth (stages)", fpga.pipeline_depth, smt.pipeline_depth],
        ["Misprediction penalty (cycles)", fpga.mispredict_penalty,
         smt.mispredict_penalty],
        ["Hardware threads", fpga.smt_threads, smt.smt_threads],
        ["BTB", f"{fpga.btb_sets} x {fpga.btb_ways}-way",
         f"{smt.btb_sets} x {smt.btb_ways}-way"],
        ["Direction predictor", fpga.predictor, smt.predictor],
        ["Context-switch interval (cycles)", fpga.context_switch_interval,
         smt.context_switch_interval],
        ["Base CPI (perfect front end)", fpga.base_cpi, smt.base_cpi],
    ]
    return ExperimentResult(
        name="Table 2",
        description="Out-of-order processor core configurations",
        headers=["parameter", "FPGA prototype", "gem5 SMT model"],
        rows=rows,
        paper_claim="4-wide, 10-stage RISC-V FPGA prototype; 8-wide, 19-stage "
                    "Sunny-Cove-like SMT core with 1024x4 BTB",
        notes="Cache hierarchy, ROB and queue sizes of Table 2 are folded into "
              "the first-order base-CPI parameter (see DESIGN.md).")
