"""Declarative experiment manifests: plan every case before running any.

Historically each figure/table driver planned and ran its own cases
imperatively, so a full-paper reproduction was a serial walk over drivers
that re-planned overlapping baseline cases and could not be split across
machines.  This module turns the drivers into *data*:

* every driver exposes a ``plan()`` that enumerates its
  :class:`~repro.experiments.executor.CaseSpec` list up front (the imperative
  ``run()`` entry points remain, as thin wrappers over plan + execute +
  assemble);
* an :class:`ExperimentManifest` collects the plans of any set of experiments
  into one global case list, **deduplicated across experiments** by
  ``cache_key`` — a baseline pair shared by Figures 7, 8 and 9 appears once;
* the manifest partitions deterministically into ``n`` disjoint, covering
  shards (:class:`ShardSpec`), by hashing each case's cache key — the
  assignment is a pure function of the case, so it is stable no matter how
  many experiments are selected or in which order they are planned.

Experiments that run no ``CaseSpec`` simulations (the configuration tables,
the attack-based experiments) still participate: they have an empty plan and
are themselves assigned to a shard by hashing their key, so a sharded run
executes *everything* exactly once across the fleet.

:mod:`repro.experiments.pipeline` executes manifests and merges shard
artifacts back into final figures/tables.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from .base import ExperimentResult
from .executor import ENGINE_VERSION, CaseSpec, SweepExecutor, parse_jobs
from .scaling import ExperimentScale, default_scale

__all__ = [
    "ShardSpec",
    "parse_shard",
    "env_shard",
    "parse_repetitions",
    "ExperimentDef",
    "ExperimentManifest",
    "experiment_registry",
    "build_manifest",
]

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


def parse_repetitions(raw, *, source: str = "--repetitions") -> int:
    """Parse a repetition count, rejecting malformed values with a clear error.

    Same positive-integer contract as
    :func:`repro.experiments.executor.parse_jobs` (which it delegates to):
    fail at parse time naming the offending setting, never deep inside
    planning.
    """
    return parse_jobs(raw, source=source)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a partitioned manifest: ``index`` of ``count`` (0-based)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index} "
                f"(shards are 0-based: the shards of a 4-way run are 0/4 .. 3/4)")

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(raw: str, *, source: str = "REPRO_SHARD") -> ShardSpec:
    """Parse an ``i/n`` shard designator, rejecting malformed values.

    ``0``-based: valid shards of a 4-way run are ``0/4`` … ``3/4``.  Anything
    else — ``3/2``, ``0/0``, negative or non-numeric parts — raises a
    :class:`ValueError` naming the offending setting, instead of crashing
    later inside the scheduler.
    """
    match = _SHARD_RE.match(raw.strip()) if isinstance(raw, str) else None
    if match is None:
        raise ValueError(
            f"{source} must look like 'i/n' (e.g. 0/4), got {raw!r}")
    index, count = int(match.group(1)), int(match.group(2))
    try:
        return ShardSpec(index, count)
    except ValueError as exc:
        raise ValueError(f"{source}: {exc}") from None


def env_shard() -> Optional[ShardSpec]:
    """Shard from the ``REPRO_SHARD`` environment variable (``None`` if unset)."""
    raw = os.environ.get("REPRO_SHARD")
    if raw is None or raw == "":
        return None
    return parse_shard(raw)


def _shard_of(token: str, count: int) -> int:
    """Deterministic shard assignment for an arbitrary token."""
    digest = hashlib.sha256(token.encode("utf-8")).hexdigest()
    return int(digest[:16], 16) % count


@dataclass(frozen=True)
class ExperimentDef:
    """One experiment as the manifest sees it.

    Attributes:
        key: registry key (``"figure1"``, ``"table4"``, ...).
        plan: callable ``plan(scale) -> List[CaseSpec]`` enumerating every
            simulation case the experiment's assembly reads.  May return an
            empty list for experiments that simulate nothing through the
            executor (configuration tables, attack-based experiments).
        assemble: callable ``assemble(scale, executor) -> ExperimentResult``
            producing the final figure/table.  Case-based experiments fetch
            every case through ``executor`` — at merge time that executor is
            replay-only, which *proves* the plan covered the assembly.
        repeatable: whether the experiment's result can carry repetition
            statistics (figure experiments fold N seeds into mean ± CI
            series).  Figure-less tabular experiments set this ``False``:
            their output cannot express error bars, so an N-seed expansion
            would simulate repetitions whose results the fold must discard —
            they stay single-trajectory at any repetition count.
    """

    key: str
    plan: Callable[[ExperimentScale], List[CaseSpec]]
    assemble: Callable[[ExperimentScale, SweepExecutor], ExperimentResult]
    repeatable: bool = True


def _case_based(key: str, plan_fn, run_fn, *,
                repeatable: bool = True) -> ExperimentDef:
    return ExperimentDef(
        key=key,
        plan=lambda scale: plan_fn(scale),
        assemble=lambda scale, executor: run_fn(scale, executor=executor),
        repeatable=repeatable)


def _caseless(key: str, run_fn) -> ExperimentDef:
    return ExperimentDef(
        key=key,
        plan=lambda scale: [],
        assemble=lambda scale, executor: run_fn(scale))


def _registry() -> "Dict[str, ExperimentDef]":
    # Imported lazily to avoid import cycles at package-init time.
    from . import (
        ablations,
        fig1_flush_single,
        fig2_flush_smt,
        fig3_precise_flush,
        fig7_xor_btb,
        fig8_xor_pht,
        fig9_xor_bp,
        fig10_smt_predictors,
        poc_attacks,
        sensitivity,
        table1_security,
        table2_configs,
        table3_benchmarks,
        table4_privilege,
        table5_hwcost,
    )

    defs = [
        _case_based("figure1", fig1_flush_single.plan, fig1_flush_single.run),
        _case_based("figure2", fig2_flush_smt.plan, fig2_flush_smt.run),
        _case_based("figure3", fig3_precise_flush.plan, fig3_precise_flush.run),
        _case_based("figure7", fig7_xor_btb.plan, fig7_xor_btb.run),
        _case_based("figure8", fig8_xor_pht.plan, fig8_xor_pht.run),
        _case_based("figure9", fig9_xor_bp.plan, fig9_xor_bp.run),
        _case_based("figure10", fig10_smt_predictors.plan,
                    fig10_smt_predictors.run),
        _caseless("table1", table1_security.run),
        _caseless("table2", table2_configs.run),
        _caseless("table3", table3_benchmarks.run),
        # Figure-less tabular experiments: their rows cannot carry error
        # bars, so they stay single-trajectory under --repetitions N.
        _case_based("table4", table4_privilege.plan, table4_privilege.run,
                    repeatable=False),
        _caseless("table5", table5_hwcost.run),
        _caseless("poc_attacks", poc_attacks.run),
        _case_based("ablation_encoder", ablations.plan_encoder_ablation,
                    ablations.encoder_ablation, repeatable=False),
        _case_based("ablation_key_refresh", ablations.plan_key_refresh_ablation,
                    ablations.key_refresh_ablation, repeatable=False),
        _caseless("ablation_pht_granularity",
                  ablations.pht_granularity_ablation),
        _case_based("ablation_switch_interval",
                    sensitivity.plan_switch_interval_sensitivity,
                    sensitivity.switch_interval_sensitivity),
        _case_based("ablation_penalty",
                    sensitivity.plan_mispredict_penalty_sensitivity,
                    sensitivity.mispredict_penalty_sensitivity),
        _case_based("smt4_noisy_xor", sensitivity.plan_smt4_noisy_xor,
                    sensitivity.smt4_noisy_xor),
    ]
    return {definition.key: definition for definition in defs}


_REGISTRY_CACHE: "Optional[Dict[str, ExperimentDef]]" = None


def experiment_registry() -> "Dict[str, ExperimentDef]":
    """The full experiment registry, keyed and ordered like ``EXPERIMENTS``."""
    global _REGISTRY_CACHE
    if _REGISTRY_CACHE is None:
        _REGISTRY_CACHE = _registry()
    return _REGISTRY_CACHE


@dataclass
class ExperimentManifest:
    """A set of planned experiments and their deduplicated global case list.

    Attributes:
        scale: the experiment scale every plan was enumerated at.
        definitions: the planned experiments, in selection order.
        plans: per-experiment *base* case lists (``plans[key][i]`` is the
            i-th case the experiment's assembly will read at repetition 0).
        repetitions: how many times each planned case runs, under seed
            offsets ``base..base+N-1``; the global case list
            (:meth:`unique_cases`) is the N-seed expansion of the plans, and
            assembly folds the repetitions into mean ± CI figures.
            ``repetitions=1`` is exactly the historical single-trajectory
            manifest.
    """

    scale: ExperimentScale
    definitions: List[ExperimentDef]
    plans: Dict[str, List[CaseSpec]] = field(default_factory=dict)
    repetitions: int = 1

    @property
    def keys(self) -> List[str]:
        return [definition.key for definition in self.definitions]

    def definition(self, key: str) -> ExperimentDef:
        for definition in self.definitions:
            if definition.key == key:
                return definition
        raise KeyError(key)

    def unique_cases(self) -> "Dict[str, CaseSpec]":
        """Global case list: the N-seed expansion of every plan,
        deduplicated by cache key across experiments and repetitions.

        Each base case expands into ``repetitions`` variants whose seed
        offsets are shifted by the repetition index — repetition 0 *is* the
        base case, so a ``repetitions=1`` manifest and the cases a
        ``repetitions=N`` manifest shares with it carry identical cache keys
        (an N-seed run reuses a single-seed run's stored results).
        Non-``repeatable`` experiments (figure-less tables, whose output
        cannot carry error bars) contribute their base cases only.

        Insertion order is the first-appearance order, so iteration is
        deterministic for a given experiment selection; the *shard assignment*
        (:meth:`shard_cases`) does not depend on this order at all.

        Memoised per manifest (a ``run all`` reads this several times —
        describe, hash, shard split, execution — and each expansion would
        otherwise rebuild and re-hash every repetition variant); the memo is
        keyed on the engine version and repetition count, and callers get a
        shallow copy so the cached mapping cannot be mutated from outside.
        """
        token = (ENGINE_VERSION, self.repetitions)
        memo = self.__dict__.get("_unique_memo")
        if memo is not None and memo[0] == token:
            return dict(memo[1])
        unique: Dict[str, CaseSpec] = {}
        for definition in self.definitions:
            repetitions = self.repetitions if definition.repeatable else 1
            for spec in self.plans[definition.key]:
                for repetition in range(repetitions):
                    expanded = spec if repetition == 0 else replace(
                        spec, seed_offset=spec.seed_offset + repetition)
                    unique.setdefault(expanded.cache_key(), expanded)
        self._unique_memo = (token, unique)
        return dict(unique)

    def caseless_keys(self) -> List[str]:
        """Experiments whose plan is empty (they run whole at shard time)."""
        return [key for key in self.keys if not self.plans[key]]

    def total_planned(self) -> int:
        """Total case references (plans × repetitions) before dedupe."""
        return sum(
            len(self.plans[definition.key])
            * (self.repetitions if definition.repeatable else 1)
            for definition in self.definitions)

    def manifest_hash(self) -> str:
        """Deterministic digest of the planned work.

        Covers the engine version (via every cache key), the scale, the
        experiment selection, the repetition count and the deduplicated
        expanded case set — and is invariant to the order experiments were
        selected in.  CI keys the persistent result cache on this.  The
        repetition count is hashed explicitly (not only through the expanded
        case list) so a ``repetitions=1`` and a ``repetitions=N`` manifest
        can never collide, whatever the case set degenerates to.
        """
        payload = {
            "engine": ENGINE_VERSION,
            "scale": asdict(self.scale),
            "experiments": sorted(self.keys),
            "repetitions": self.repetitions,
            "cases": sorted(self.unique_cases()),
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- sharding ---------------------------------------------------------------
    def shard_cases(self, shard: Optional[ShardSpec]) -> "Dict[str, CaseSpec]":
        """The subset of :meth:`unique_cases` owned by a shard.

        Assignment hashes each case's cache key, so for a given shard count
        the partition is disjoint, covering, and stable under any reordering
        or re-selection of experiments.  ``shard=None`` means "everything".
        """
        unique = self.unique_cases()
        if shard is None:
            return unique
        return {key: spec for key, spec in unique.items()
                if int(key[:16], 16) % shard.count == shard.index}

    def shard_caseless(self, shard: Optional[ShardSpec]) -> List[str]:
        """The caseless experiments owned by a shard (all of them if ``None``)."""
        keys = self.caseless_keys()
        if shard is None:
            return keys
        return [key for key in keys
                if _shard_of(f"experiment:{key}", shard.count) == shard.index]

    def describe(self) -> Dict:
        """JSON-friendly summary (for ``python -m repro plan``)."""
        unique = self.unique_cases()
        return {
            "engine": ENGINE_VERSION,
            "manifest_hash": self.manifest_hash(),
            "scale": asdict(self.scale),
            "experiments": {key: len(self.plans[key]) for key in self.keys},
            "caseless_experiments": self.caseless_keys(),
            "repetitions": self.repetitions,
            "planned_cases": self.total_planned(),
            "unique_cases": len(unique),
            "deduped_cases": self.total_planned() - len(unique),
        }


def build_manifest(keys: Optional[Sequence[str]] = None,
                   scale: Optional[ExperimentScale] = None,
                   experiments: "Optional[Dict[str, ExperimentDef]]" = None,
                   repetitions: int = 1) -> ExperimentManifest:
    """Plan a set of experiments into one manifest.

    Args:
        keys: experiment keys to include (every registered experiment when
            omitted).  Unknown keys raise :class:`ValueError`.
        scale: experiment scale (default honours ``REPRO_SCALE``).
        experiments: alternative experiment registry (tests use this to plan
            reduced-size variants against the golden fixtures).
        repetitions: seed repetitions per planned case (``N`` expands every
            figure/table plan into an N-seed case family whose assembly is
            folded into mean ± 95%-CI series; ``1`` reproduces the
            historical single-trajectory pipeline bit-for-bit).
    """
    registry = experiments if experiments is not None else experiment_registry()
    if keys is None:
        keys = list(registry)
    # First-appearance dedupe: `--experiments figure1 figure1` must plan,
    # render and hash exactly like the single selection.
    keys = list(dict.fromkeys(keys))
    # ``bench:<selector>`` keys are resolved dynamically against the workload
    # registry (the selector space is open-ended: unions, trace corpora), so
    # manifests written by `repro run --bench-set ...` re-plan at merge time
    # exactly like the statically registered experiments.
    dynamic = [key for key in keys
               if key.startswith("bench:") and key not in registry]
    if dynamic:
        from . import bench_suite

        registry = dict(registry)
        for key in dynamic:
            registry[key] = bench_suite.experiment_def(key[len("bench:"):])
    unknown = [key for key in keys if key not in registry]
    if unknown:
        raise ValueError(
            f"unknown experiments: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(registry))}")
    repetitions = parse_repetitions(repetitions, source="repetitions")
    scale = scale or default_scale()
    definitions = [registry[key] for key in keys]
    plans = {definition.key: list(definition.plan(scale))
             for definition in definitions}
    return ExperimentManifest(scale=scale, definitions=definitions,
                              plans=plans, repetitions=repetitions)
