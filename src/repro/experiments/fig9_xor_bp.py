"""Figure 9: combined XOR-BP / Noisy-XOR-BP overhead on the single-threaded core.

Both the BTB and the direction predictor are protected.  The paper reports an
average loss below 1.3% with a worst case around 2.5% (case1), notes that the
impact is largely the sum of the BTB-only and PHT-only overheads, and that it
barely depends on the timer period because privilege switches (Table 4)
dominate the key regenerations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.metrics import arithmetic_mean
from ..cpu.config import fpga_prototype
from ..workloads.pairs import SINGLE_THREAD_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor
from .fig7_xor_btb import setup_interval_sweep
from .runner import overhead_figure_single_thread, plan_overhead_single_thread
from .scaling import ExperimentScale

__all__ = ["run", "plan"]

_PRESETS = [("XOR-BP", "xor_bp"), ("Noisy-XOR-BP", "noisy_xor_bp")]


def plan(scale: Optional[ExperimentScale] = None,
         pairs: Optional[Sequence[BenchmarkPair]] = None,
         intervals: Optional[Sequence[str]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Figure 9 needs (same knobs as ``run``)."""
    scale, pairs, mechanisms = setup_interval_sweep(scale, pairs, intervals, _PRESETS)
    return plan_overhead_single_thread(mechanisms, pairs, fpga_prototype(),
                                       scale)


def run(scale: Optional[ExperimentScale] = None,
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        intervals: Optional[Sequence[str]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 9 (same knobs as Figures 7 and 8)."""
    scale, pairs, mechanisms = setup_interval_sweep(scale, pairs, intervals, _PRESETS)
    figure, _ = overhead_figure_single_thread(
        "Figure 9", "XOR-BP / Noisy-XOR-BP overhead on the single-threaded core",
        mechanisms, pairs, config=fpga_prototype(), scale=scale,
        executor=executor)
    rows = [[label, f"{100 * value:+.2f}%"] for label, value in figure.averages().items()]
    overall = arithmetic_mean(list(figure.averages().values()))
    rows.append(["overall average", f"{100 * overall:+.2f}%"])
    return ExperimentResult(
        name="Figure 9",
        description="Performance overhead of the combined XOR-BP and Noisy-XOR-BP",
        headers=["configuration", "average overhead"],
        rows=rows,
        figure=figure,
        paper_claim="average loss below 1.3%; worst case about 2.5% (case1); "
                    "little sensitivity to the timer period because privilege "
                    "switches dominate key regeneration",
        notes="Scaled simulation inflates absolute percentages; per-case "
              "ordering, near-additivity of the BTB and PHT costs and the "
              "weak dependence on the timer period are the reproduced shapes.")
