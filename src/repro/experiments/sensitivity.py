"""Sensitivity studies beyond the paper's headline figures.

The paper sweeps the context-switch interval only over 4M/8M/12M cycles and
evaluates SMT-4 only for Complete Flush (Figure 2).  These experiments extend
the evaluation along the axes DESIGN.md calls out:

* :func:`switch_interval_sensitivity` — Noisy-XOR-BP overhead as the timer
  period varies from 2M to 24M cycles (does the "insignificant on a
  single-threaded core" conclusion hold at much higher switch rates?);
* :func:`mispredict_penalty_sensitivity` — how the overhead scales with the
  pipeline's misprediction penalty (deeper pipelines pay more per lost
  prediction, the reason the Sunny-Cove model shows larger numbers);
* :func:`smt4_noisy_xor` — Noisy-XOR-BP versus the flush mechanisms on an
  SMT-4 core, completing the comparison the paper only shows for flushes.

Each driver returns an :class:`repro.experiments.base.ExperimentResult` and
is registered in :data:`repro.experiments.EXPERIMENTS`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..analysis.figures import FigureSeries
from ..analysis.metrics import arithmetic_mean, percent
from ..cpu.config import fpga_prototype, sunny_cove_smt
from ..workloads.pairs import case_names, get_pair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor, default_executor
from .scaling import ExperimentScale, default_scale

__all__ = [
    "switch_interval_sensitivity",
    "plan_switch_interval_sensitivity",
    "mispredict_penalty_sensitivity",
    "plan_mispredict_penalty_sensitivity",
    "smt4_noisy_xor",
    "plan_smt4_noisy_xor",
]

_MILLION = 1_000_000


def plan_switch_interval_sensitivity(
        scale: Optional[ExperimentScale] = None, *,
        preset: str = "noisy_xor_bp",
        cases: Sequence[str] = ("case1", "case6", "case7"),
        intervals_m: Sequence[int] = (2, 4, 8, 12, 24),
        predictor: str = "tage") -> List[CaseSpec]:
    """Cases for :func:`switch_interval_sensitivity` (same knobs).

    Order contract: per case, per interval, baseline then protected.
    """
    scale = scale or default_scale()
    config = fpga_prototype(predictor)
    specs: List[CaseSpec] = []
    for case in cases:
        pair = get_pair(case, "single")
        for m in intervals_m:
            interval = m * _MILLION
            specs.append(CaseSpec("single", pair, config, "baseline", scale,
                                  switch_interval=interval,
                                  label=f"baseline-{m}M"))
            specs.append(CaseSpec("single", pair, config, preset, scale,
                                  switch_interval=interval,
                                  label=f"{preset}-{m}M"))
    return specs


def switch_interval_sensitivity(scale: Optional[ExperimentScale] = None, *,
                                preset: str = "noisy_xor_bp",
                                cases: Sequence[str] = ("case1", "case6", "case7"),
                                intervals_m: Sequence[int] = (2, 4, 8, 12, 24),
                                predictor: str = "tage",
                                executor: Optional[SweepExecutor] = None
                                ) -> ExperimentResult:
    """Noisy-XOR-BP overhead versus context-switch interval (single-thread).

    For every case and interval, both the baseline and the protected core run
    with the *same* timer period, so the reported overhead isolates the cost
    of key regeneration rather than of the scheduling change.

    Args:
        scale: experiment scale (default scale when omitted).
        preset: protection preset under study.
        cases: Table 3 single-thread cases to include.
        intervals_m: timer periods in millions of cycles.
        predictor: direction predictor of the core.
        executor: sweep executor (the shared default when omitted).

    Returns:
        An :class:`ExperimentResult` whose figure has one series per case
        (plus the per-interval mean row in the table).
    """
    scale = scale or default_scale()
    executor = executor or default_executor()
    results = executor.run_specs(plan_switch_interval_sensitivity(
        scale, preset=preset, cases=cases, intervals_m=intervals_m,
        predictor=predictor))
    categories = [f"{m}M" for m in intervals_m]
    figure = FigureSeries(
        name="Ablation: switch-interval sensitivity",
        description=f"{preset} overhead vs context-switch interval",
        categories=categories)
    rows = []
    position = 0
    for case in cases:
        pair = get_pair(case, "single")
        overheads = []
        for _m in intervals_m:
            baseline, protected = results[position], results[position + 1]
            position += 2
            overheads.append(protected.overhead_vs(baseline, pair.target))
        figure.add_series(case, overheads)
        rows.append([case] + [percent(value) for value in overheads])
    means = [arithmetic_mean(figure.series[case][i] for case in cases)
             for i in range(len(intervals_m))]
    rows.append(["mean"] + [percent(value) for value in means])
    return ExperimentResult(
        name="Ablation: switch-interval sensitivity",
        description=f"{preset} overhead on the single-threaded core as the "
                    "timer period varies",
        headers=["case"] + categories,
        rows=rows,
        figure=figure,
        paper_claim="Figures 7-9 sweep only 4M/8M/12M and find the overhead "
                    "largely insensitive to the timer period because privilege "
                    "switches dominate key regeneration (Table 4).",
        notes="Extension beyond the paper: a wider interval sweep, including "
              "a 2M-cycle period (1 kHz timer).")


def plan_mispredict_penalty_sensitivity(
        scale: Optional[ExperimentScale] = None, *,
        preset: str = "noisy_xor_bp",
        case: str = "case1",
        penalties: Sequence[int] = (8, 11, 17, 24),
        predictor: str = "tage") -> List[CaseSpec]:
    """Cases for :func:`mispredict_penalty_sensitivity` (same knobs).

    Order contract: per penalty, baseline then protected.
    """
    scale = scale or default_scale()
    base_config = fpga_prototype(predictor)
    pair = get_pair(case, "single")
    specs: List[CaseSpec] = []
    for penalty in penalties:
        config = replace(base_config, mispredict_penalty=penalty,
                         name=f"fpga_prototype_p{penalty}")
        specs.append(CaseSpec("single", pair, config, "baseline", scale,
                              label=f"baseline-p{penalty}"))
        specs.append(CaseSpec("single", pair, config, preset, scale,
                              label=f"{preset}-p{penalty}"))
    return specs


def mispredict_penalty_sensitivity(scale: Optional[ExperimentScale] = None, *,
                                   preset: str = "noisy_xor_bp",
                                   case: str = "case1",
                                   penalties: Sequence[int] = (8, 11, 17, 24),
                                   predictor: str = "tage",
                                   executor: Optional[SweepExecutor] = None
                                   ) -> ExperimentResult:
    """Isolation overhead versus the core's misprediction penalty.

    The paper's two platforms differ mainly in pipeline depth (10 versus 19
    stages), and its Figure 10 discussion notes that more accurate predictors
    — i.e. cores that lose more per extra misprediction — pay more for
    protection.  This study isolates that effect by sweeping the redirect
    penalty on an otherwise fixed core.

    Args:
        scale: experiment scale.
        preset: protection preset under study.
        case: Table 3 single-thread case to run.
        penalties: redirect penalties (cycles) to sweep.
        predictor: direction predictor of the core.
        executor: sweep executor (the shared default when omitted).
    """
    scale = scale or default_scale()
    executor = executor or default_executor()
    results = executor.run_specs(plan_mispredict_penalty_sensitivity(
        scale, preset=preset, case=case, penalties=penalties,
        predictor=predictor))
    pair = get_pair(case, "single")
    rows = []
    overheads = []
    for i, penalty in enumerate(penalties):
        baseline, protected = results[2 * i], results[2 * i + 1]
        overhead = protected.overhead_vs(baseline, pair.target)
        overheads.append(overhead)
        rows.append([f"{penalty} cycles", percent(overhead),
                     f"{baseline.thread(pair.target).mpki:.2f}"])
    figure = FigureSeries(
        name="Ablation: misprediction-penalty sensitivity",
        description=f"{preset} overhead on {case} vs redirect penalty",
        categories=[f"{penalty}" for penalty in penalties])
    figure.add_series(preset, overheads)
    return ExperimentResult(
        name="Ablation: misprediction-penalty sensitivity",
        description=f"{preset} overhead on {case} as the redirect penalty grows",
        headers=["mispredict penalty", "overhead", "baseline MPKI"],
        rows=rows,
        figure=figure,
        paper_claim="Deeper pipelines amplify every extra misprediction; the "
                    "19-stage SMT model shows larger protection costs than "
                    "the 10-stage FPGA core.",
        notes="Extension beyond the paper: explicit penalty sweep on one core.")


def plan_smt4_noisy_xor(scale: Optional[ExperimentScale] = None, *,
                        predictor: str = "tournament",
                        presets: Tuple[str, ...] = ("complete_flush",
                                                    "precise_flush",
                                                    "noisy_xor_bp"),
                        max_quads: int = 4) -> List[CaseSpec]:
    """Cases for :func:`smt4_noisy_xor` (same knobs).

    Order contract: per quad, baseline then one case per preset.
    """
    scale = scale or default_scale()
    config = sunny_cove_smt(predictor, smt_threads=4)
    specs: List[CaseSpec] = []
    for case in case_names("smt4")[:max_quads]:
        pair = get_pair(case, "smt4")
        specs.append(CaseSpec("smt", pair, config, "baseline", scale,
                              label="baseline"))
        specs.extend(CaseSpec("smt", pair, config, preset, scale, label=preset)
                     for preset in presets)
    return specs


def smt4_noisy_xor(scale: Optional[ExperimentScale] = None, *,
                   predictor: str = "tournament",
                   presets: Tuple[str, ...] = ("complete_flush", "precise_flush",
                                               "noisy_xor_bp"),
                   max_quads: int = 4,
                   executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Noisy-XOR-BP versus flush mechanisms on an SMT-4 core.

    Figure 2 shows that Complete Flush degrades further from SMT-2 to SMT-4
    but evaluates no XOR-based mechanism there; this experiment completes the
    comparison on the SMT-4 quads of the benchmark set.

    Args:
        scale: experiment scale.
        predictor: shared direction predictor of the SMT core.
        presets: protection presets to compare (baseline is always run).
        max_quads: number of SMT-4 quads to include.
        executor: sweep executor (the shared default when omitted).
    """
    scale = scale or default_scale()
    executor = executor or default_executor()
    results = executor.run_specs(plan_smt4_noisy_xor(
        scale, predictor=predictor, presets=presets, max_quads=max_quads))
    quads = case_names("smt4")[:max_quads]
    figure = FigureSeries(
        name="Ablation: SMT-4 isolation comparison",
        description=f"overhead of {', '.join(presets)} on an SMT-4 core",
        categories=list(quads))
    per_preset = {preset: [] for preset in presets}
    stride = 1 + len(presets)
    for i, case in enumerate(quads):
        baseline = results[stride * i]
        for j, preset in enumerate(presets):
            protected = results[stride * i + 1 + j]
            per_preset[preset].append(protected.overhead_vs(baseline))
    for preset in presets:
        figure.add_series(preset, per_preset[preset])
    rows = [[preset, percent(arithmetic_mean(values))]
            for preset, values in per_preset.items()]
    return ExperimentResult(
        name="Ablation: SMT-4 isolation comparison",
        description="Noisy-XOR-BP vs flush-based isolation on an SMT-4 core "
                    f"({predictor} predictor)",
        headers=["mechanism", "mean overhead"],
        rows=rows,
        figure=figure,
        paper_claim="Figure 2: flushing costs grow with the SMT thread count; "
                    "Figure 10: Noisy-XOR-BP costs 26-37% less than Complete "
                    "Flush on SMT-2.",
        notes="Extension beyond the paper: the paper evaluates SMT-4 only for "
              "Complete Flush.")
