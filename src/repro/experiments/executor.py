"""Parallel, caching sweep execution.

Every figure/table reproduction in this repo boils down to running many
independent ``(pair, preset, scale)`` simulation cases and merging the
results.  This module provides the shared machinery:

* :class:`CaseSpec` — a self-contained, picklable description of one case
  (single-thread or SMT), with a deterministic cache key;
* :class:`RunResultCache` — a memoisation layer for finished
  :class:`repro.cpu.stats.RunResult` objects, in-memory by default and
  persisted to disk when a cache directory is configured (``REPRO_CACHE_DIR``
  or an explicit path), keyed by
  ``(kind, pair, core config, preset, scale, switch interval, seed offset,
  engine version)``;
* :class:`SweepExecutor` — runs a list of case specs, deduplicating
  identical cases (so a per-pair baseline is simulated exactly once no matter
  how many sweeps and figure drivers ask for it), fanning independent cases
  out over a :class:`concurrent.futures.ProcessPoolExecutor` when
  ``REPRO_JOBS`` (or the ``jobs`` argument) asks for more than one worker,
  and merging results back in deterministic submission order.

The executor is deliberately engine-agnostic: a case's cache key includes
:data:`ENGINE_VERSION`, which must be bumped whenever the simulation
semantics change, so stale on-disk entries can never leak across engine
revisions.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..cpu.config import CoreConfig
from ..cpu.stats import RunResult, run_result_from_dict, run_result_to_dict
from ..workloads.pairs import BenchmarkPair
from .scaling import ExperimentScale

__all__ = [
    "ENGINE_VERSION",
    "CaseSpec",
    "RunResultCache",
    "SweepExecutor",
    "default_executor",
    "env_jobs",
    "parse_jobs",
]

#: Simulation-engine revision; part of every cache key.  Bump whenever a
#: change alters simulated statistics for the same seeds, and on every
#: hot-path storage/kernel rewrite even when statistics are provably
#: unchanged (so on-disk results can never mix engine revisions).  2026.2:
#: packed predictor kernels + fused XOR isolation + batched workload RNG.
#: 2026.3: packed-array BTB + gshare closure kernels + packed TAGE
#: allocation (statistics bit-identical to 2026.2 — the golden-trace suite
#: pins that — but every BTB/gshare hot path was rebuilt).
ENGINE_VERSION = "2026.3-packed-btb"


def parse_jobs(raw: str, *, source: str = "REPRO_JOBS") -> int:
    """Parse a worker count, rejecting malformed values with a clear error.

    A bad value used to slip through here and only blow up (or silently run
    serially) deep inside the process-pool setup; failing at parse time names
    the offending setting instead.
    """
    try:
        jobs = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"{source} must be >= 1, got {jobs}")
    return jobs


def env_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable (default 1).

    Raises:
        ValueError: if ``REPRO_JOBS`` is set to anything but a positive
            integer (``0``, negative, or non-numeric values are all errors).
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return 1
    return parse_jobs(raw)


@dataclass
class CaseSpec:
    """One simulation case, self-contained and picklable.

    Attributes:
        kind: ``"single"`` for the single-threaded core, ``"smt"`` for the
            SMT core.
        pair: the benchmark pair/quad to simulate.
        config: core configuration.
        preset: protection preset name.
        scale: experiment scale.
        switch_interval: optional context-switch period override in real
            cycles (single-thread sweeps only).
        seed_offset: workload/key seed offset (repetition studies).
        se_mode: system-call-emulation mode (SMT only).
        bpu_overrides: optional isolation-config overrides applied when the
            branch prediction unit is built (ablation studies: alternative
            encoders, key-refresh policies).  Part of the cache key.
        label: result label for the caller's bookkeeping; not part of the
            cache key (two labels for the same case share one simulation).
    """

    kind: str
    pair: BenchmarkPair
    config: CoreConfig
    preset: str
    scale: ExperimentScale
    switch_interval: Optional[int] = None
    seed_offset: int = 0
    se_mode: bool = True
    bpu_overrides: Optional[Dict] = None
    label: Optional[str] = None

    def cache_key(self) -> str:
        """Deterministic key identifying this case's simulation output."""
        payload = {
            "engine": ENGINE_VERSION,
            "kind": self.kind,
            "pair": {"case": self.pair.case,
                     "benchmarks": list(self.pair.benchmarks)},
            "config": asdict(self.config),
            "preset": self.preset,
            "scale": asdict(self.scale),
            "switch_interval": self.switch_interval,
            "seed_offset": self.seed_offset,
            "se_mode": self.se_mode if self.kind == "smt" else None,
            "bpu_overrides": self.bpu_overrides or None,
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _execute_spec(spec: CaseSpec) -> RunResult:
    """Run one case (top-level so it is picklable for worker processes)."""
    # Imported here to avoid a circular import (runner imports this module).
    from .runner import run_single_thread_case, run_smt_case

    if spec.kind == "single":
        return run_single_thread_case(
            spec.pair, spec.config, spec.preset, spec.scale,
            switch_interval=spec.switch_interval,
            seed_offset=spec.seed_offset,
            bpu_overrides=spec.bpu_overrides)
    if spec.kind == "smt":
        return run_smt_case(spec.pair, spec.config, spec.preset, spec.scale,
                            se_mode=spec.se_mode,
                            seed_offset=spec.seed_offset,
                            bpu_overrides=spec.bpu_overrides)
    raise ValueError(f"unknown case kind {spec.kind!r}")


class RunResultCache:
    """Two-level (memory + optional disk) cache of finished run results.

    Args:
        directory: on-disk cache directory.  When omitted, the
            ``REPRO_CACHE_DIR`` environment variable is consulted; when that
            is unset too, the cache is memory-only (still deduplicating
            within a process).
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or None
        self.directory = directory
        self._memory: Dict[str, RunResult] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[RunResult]:
        """Return the cached result for a key, or ``None``."""
        result = self._memory.get(key)
        if result is not None:
            self.hits += 1
            return result
        if self.directory:
            path = self._path(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    result = run_result_from_dict(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError):
                result = None
            if result is not None:
                self._memory[key] = result
                self.hits += 1
                return result
        self.misses += 1
        return None

    def put(self, key: str, result: RunResult) -> None:
        """Store a finished result under a key (memory and, if set, disk)."""
        self._memory[key] = result
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)
            path = self._path(key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(run_result_to_dict(result), handle, sort_keys=True)
            os.replace(tmp, path)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)


class SweepExecutor:
    """Runs independent simulation cases with dedupe, caching and fan-out.

    Args:
        jobs: worker processes; values above 1 use a
            :class:`~concurrent.futures.ProcessPoolExecutor`.  Defaults to
            the ``REPRO_JOBS`` environment variable (serial when unset).
        cache: result cache shared across calls; a fresh
            :class:`RunResultCache` (honouring ``REPRO_CACHE_DIR``) when
            omitted.
        allow_simulation: when ``False`` the executor only *replays* cached
            results and raises on any miss.  The sharded pipeline's merge step
            uses this to prove that every case an experiment assembles from
            was planned and executed by some shard — an incomplete ``plan()``
            fails loudly instead of silently re-simulating at merge time.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[RunResultCache] = None,
                 allow_simulation: bool = True) -> None:
        self.jobs = jobs if jobs is not None else env_jobs()
        self.cache = cache if cache is not None else RunResultCache()
        self.allow_simulation = allow_simulation
        #: Cases actually simulated (cache misses) over this executor's life.
        self.simulated = 0

    def run_specs(self, specs: Sequence[CaseSpec]) -> List[RunResult]:
        """Run the given cases and return results in submission order.

        Identical cases (same cache key) are simulated once; previously
        cached cases are not simulated at all.  With ``jobs > 1`` the
        outstanding cases run concurrently in worker processes, but the
        returned list order — and therefore every downstream figure/table —
        is deterministic regardless of completion order.
        """
        specs = list(specs)
        keys = [spec.cache_key() for spec in specs]
        resolved: Dict[str, RunResult] = {}
        pending: List[CaseSpec] = []
        pending_keys: List[str] = []
        pending_seen: set = set()
        for spec, key in zip(specs, keys):
            if key in resolved or key in pending_seen:
                continue
            cached = self.cache.get(key)
            if cached is not None:
                resolved[key] = cached
            else:
                pending.append(spec)
                pending_keys.append(key)
                pending_seen.add(key)

        if pending and not self.allow_simulation:
            missing = ", ".join(
                f"{spec.label or spec.preset}/{spec.pair.case} ({key[:12]}…)"
                for spec, key in zip(pending, pending_keys))
            raise RuntimeError(
                f"replay-only executor has no cached result for "
                f"{len(pending)} case(s): {missing}; the experiment plan() "
                "is missing cases its assembly needs, or the shard artifacts "
                "are incomplete")
        if pending:
            self.simulated += len(pending)
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(_execute_spec, pending))
            else:
                outcomes = [_execute_spec(spec) for spec in pending]
            for key, result in zip(pending_keys, outcomes):
                resolved[key] = result
                self.cache.put(key, result)

        return [resolved[key] for key in keys]

    def run_spec(self, spec: CaseSpec) -> RunResult:
        """Run (or fetch from cache) a single case."""
        return self.run_specs([spec])[0]


_DEFAULT_EXECUTOR: Optional[SweepExecutor] = None


def default_executor() -> SweepExecutor:
    """Process-wide shared executor.

    Sharing one executor (and therefore one cache) across all sweep and
    figure drivers is what lets a baseline simulated for Figure 1 be reused
    by Figure 7 in the same process without re-simulation.
    """
    global _DEFAULT_EXECUTOR
    if _DEFAULT_EXECUTOR is None:
        _DEFAULT_EXECUTOR = SweepExecutor()
    return _DEFAULT_EXECUTOR
