"""Parallel, caching sweep execution.

Every figure/table reproduction in this repo boils down to running many
independent ``(pair, preset, scale)`` simulation cases and merging the
results.  This module provides the shared machinery:

* :class:`CaseSpec` — a self-contained, picklable description of one case
  (single-thread or SMT), with a deterministic cache key;
* :class:`RunResultCache` — a memoisation layer for finished
  :class:`repro.cpu.stats.RunResult` objects, in-memory by default,
  persisted to disk when a cache directory is configured (``REPRO_CACHE_DIR``
  or an explicit path), and backed by a cross-machine
  :class:`repro.experiments.store.ResultStore` when one is configured
  (``REPRO_STORE_DIR`` or an explicit instance), keyed by
  ``(kind, pair, core config, preset, scale, switch interval, seed offset,
  engine version)``;
* :class:`SweepExecutor` — runs a list of case specs, deduplicating
  identical cases (so a per-pair baseline is simulated exactly once no matter
  how many sweeps and figure drivers ask for it), fanning independent cases
  out over a :class:`concurrent.futures.ProcessPoolExecutor` when
  ``REPRO_JOBS`` (or the ``jobs`` argument) asks for more than one worker,
  and merging results back in deterministic submission order.

The fan-out is **fault-tolerant**: dispatch is future-based with a per-case
timeout (``REPRO_CASE_TIMEOUT``), bounded retries with exponential backoff
(``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF``), recovery from a crashed worker
(``BrokenProcessPool`` rebuilds the pool and re-dispatches only unfinished
cases), and structured :class:`CaseFailure` records instead of raw
tracebacks.  After retries are exhausted a run fails fast by default
(:class:`ExecutionError`), or — with ``keep_going`` — completes every healthy
case and reports the failures for a machine-readable failure manifest.
Every completed case is published to the cache (and an optional ``on_result``
journal callback) *as it finishes*, so a killed run can be resumed from what
it already simulated.  All of those paths are certified deterministically by
:mod:`repro.testing.faults` (``REPRO_FAULT_SPEC``).

The executor is deliberately engine-agnostic: a case's cache key includes
:data:`ENGINE_VERSION`, which must be bumped whenever the simulation
semantics change, so stale on-disk entries can never leak across engine
revisions.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cpu.config import CoreConfig
from ..cpu.stats import RunResult, run_result_from_dict, run_result_to_dict
from ..testing.faults import FAULT_SPEC_VAR, InjectedTimeout, active_clauses
from ..workloads.pairs import BenchmarkPair
from .scaling import ExperimentScale

__all__ = [
    "ENGINE_VERSION",
    "CaseFailure",
    "CaseSpec",
    "CaseTimeout",
    "ExecutionError",
    "atomic_write_json",
    "RepetitionExecutor",
    "RunResultCache",
    "SweepExecutor",
    "default_executor",
    "env_case_timeout",
    "env_jobs",
    "env_retries",
    "env_retry_backoff",
    "parse_case_timeout",
    "parse_jobs",
    "parse_retries",
    "parse_retry_backoff",
    "sweep_tmp_files",
]

logger = logging.getLogger(__name__)

#: Simulation-engine revision; part of every cache key.  Bump whenever a
#: change alters simulated statistics for the same seeds, and on every
#: hot-path storage/kernel rewrite even when statistics are provably
#: unchanged (so on-disk results can never mix engine revisions).  2026.2:
#: packed predictor kernels + fused XOR isolation + batched workload RNG.
#: 2026.3: packed-array BTB + gshare closure kernels + packed TAGE
#: allocation (statistics bit-identical to 2026.2 — the golden-trace suite
#: pins that — but every BTB/gshare hot path was rebuilt).
ENGINE_VERSION = "2026.3-packed-btb"


def parse_jobs(raw: str, *, source: str = "REPRO_JOBS") -> int:
    """Parse a worker count, rejecting malformed values with a clear error.

    A bad value used to slip through here and only blow up (or silently run
    serially) deep inside the process-pool setup; failing at parse time names
    the offending setting instead.
    """
    try:
        jobs = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"{source} must be >= 1, got {jobs}")
    return jobs


def parse_case_timeout(raw, *,
                       source: str = "REPRO_CASE_TIMEOUT") -> Optional[float]:
    """Parse a per-case timeout in seconds (``None``/empty disables it)."""
    if raw is None or raw == "":
        return None
    try:
        timeout = float(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive number of seconds, "
            f"got {raw!r}") from None
    if not math.isfinite(timeout) or timeout <= 0:
        raise ValueError(
            f"{source} must be a positive, finite number of seconds, "
            f"got {raw!r}")
    return timeout


def env_case_timeout() -> Optional[float]:
    """Per-case timeout from ``REPRO_CASE_TIMEOUT`` (``None`` when unset)."""
    return parse_case_timeout(os.environ.get("REPRO_CASE_TIMEOUT"))


def parse_retries(raw, *, source: str = "REPRO_RETRIES") -> int:
    """Parse a retry budget (attempts beyond the first; ``0`` disables)."""
    try:
        retries = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative integer, got {raw!r}") from None
    if retries < 0:
        raise ValueError(f"{source} must be >= 0, got {retries}")
    return retries


#: Default retry budget: one transient failure plus one unlucky co-victim of
#: a pool crash must not fail a multi-hour run.
DEFAULT_RETRIES = 2


def env_retries() -> int:
    """Retry budget from ``REPRO_RETRIES`` (default :data:`DEFAULT_RETRIES`)."""
    raw = os.environ.get("REPRO_RETRIES")
    if raw is None or raw == "":
        return DEFAULT_RETRIES
    return parse_retries(raw)


def parse_retry_backoff(raw, *,
                        source: str = "REPRO_RETRY_BACKOFF") -> float:
    """Parse the base retry backoff in seconds (``0`` retries immediately)."""
    try:
        backoff = float(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative number of seconds, "
            f"got {raw!r}") from None
    if not math.isfinite(backoff) or backoff < 0:
        raise ValueError(
            f"{source} must be a non-negative, finite number of seconds, "
            f"got {raw!r}")
    return backoff


#: Base of the exponential retry backoff (seconds); attempt ``a`` waits
#: ``base * 2**(a-1)``, capped at :data:`MAX_BACKOFF_SECONDS`.
DEFAULT_RETRY_BACKOFF = 1.0
MAX_BACKOFF_SECONDS = 30.0


def env_retry_backoff() -> float:
    """Backoff base from ``REPRO_RETRY_BACKOFF`` (default 1.0 s)."""
    raw = os.environ.get("REPRO_RETRY_BACKOFF")
    if raw is None or raw == "":
        return DEFAULT_RETRY_BACKOFF
    return parse_retry_backoff(raw)


def atomic_write_json(path: str, payload, *,
                      trailing_newline: bool = False) -> None:
    """Write canonical (sorted-keys) JSON via tmp-file + atomic replace.

    Shared by the disk cache, the result store and the shard-artifact
    writer: a killed process can leave a stray ``*.tmp.<pid>`` file but
    never a torn JSON document under the real name.  (A ``torn_write``
    clause in ``REPRO_FAULT_SPEC`` deterministically simulates exactly that
    killed writer: truncated document under the real name, orphaned tmp
    file left behind.)
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        if trailing_newline:
            handle.write("\n")
    if os.environ.get(FAULT_SPEC_VAR):
        from ..testing.faults import should_tear_write

        if should_tear_write(path):
            with open(tmp, "r", encoding="utf-8") as handle:
                text = handle.read()
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text[: max(1, len(text) // 2)])
            return
    os.replace(tmp, path)


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown states count as alive."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. PermissionError: exists, owned by someone else
    return True


def sweep_tmp_files(directory: str) -> List[str]:
    """Delete orphaned ``*.tmp.<pid>`` files left by killed writers.

    Walks ``directory`` for the tmp names :func:`atomic_write_json` uses and
    removes those whose writer process is gone; a live writer's in-flight
    tmp file is left alone.  Returns the removed paths.  Shared by
    ``store gc`` and the disk-cache sweep — without it, every killed shard
    leaks one tmp file per in-flight write, forever.
    """
    removed: List[str] = []
    for root, _dirs, files in os.walk(directory):
        for name in files:
            base, sep, pid_text = name.rpartition(".tmp.")
            if not sep or not base or not pid_text.isdigit():
                continue
            if _pid_alive(int(pid_text)):
                continue
            path = os.path.join(root, name)
            try:
                os.remove(path)
            except OSError:
                continue
            removed.append(path)
    return removed


def env_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable (default 1).

    Raises:
        ValueError: if ``REPRO_JOBS`` is set to anything but a positive
            integer (``0``, negative, or non-numeric values are all errors).
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return 1
    return parse_jobs(raw)


@dataclass
class CaseSpec:
    """One simulation case, self-contained and picklable.

    Attributes:
        kind: ``"single"`` for the single-threaded core, ``"smt"`` for the
            SMT core.
        pair: the benchmark pair/quad to simulate.
        config: core configuration.
        preset: protection preset name.
        scale: experiment scale.
        switch_interval: optional context-switch period override in real
            cycles (single-thread sweeps only).
        seed_offset: workload/key seed offset (repetition studies).
        se_mode: system-call-emulation mode (SMT only).
        bpu_overrides: optional isolation-config overrides applied when the
            branch prediction unit is built (ablation studies: alternative
            encoders, key-refresh policies).  Part of the cache key.
        workload_digest: content digest of an externally supplied workload
            (a replayed trace corpus file).  Synthetic cases are fully
            described by benchmark name + seed, but a ``trace:`` benchmark's
            behaviour is the file's *contents* — so the digest joins the
            cache key, and only when set (``None`` leaves every historical
            synthetic cache/store key byte-identical).
        label: result label for the caller's bookkeeping; not part of the
            cache key (two labels for the same case share one simulation).
    """

    kind: str
    pair: BenchmarkPair
    config: CoreConfig
    preset: str
    scale: ExperimentScale
    switch_interval: Optional[int] = None
    seed_offset: int = 0
    se_mode: bool = True
    bpu_overrides: Optional[Dict] = None
    workload_digest: Optional[str] = None
    label: Optional[str] = None

    def cache_key(self) -> str:
        """Deterministic key identifying this case's simulation output.

        Memoised per instance (invalidated on an engine-version change, for
        tests that monkeypatch it): a `run all` recomputes the expanded
        case set several times — describe, shard split, execution — and the
        JSON canonicalisation + SHA-256 per case dominates that planning
        cost.  Specs are treated as immutable once planned;
        :func:`dataclasses.replace` creates a fresh instance, so repetition
        expansion never sees a stale memo.
        """
        memo = self.__dict__.get("_cache_key")
        if memo is not None and memo[0] == ENGINE_VERSION:
            return memo[1]
        payload = {
            "engine": ENGINE_VERSION,
            "kind": self.kind,
            "pair": {"case": self.pair.case,
                     "benchmarks": list(self.pair.benchmarks)},
            "config": asdict(self.config),
            "preset": self.preset,
            "scale": asdict(self.scale),
            "switch_interval": self.switch_interval,
            "seed_offset": self.seed_offset,
            "se_mode": self.se_mode if self.kind == "smt" else None,
            "bpu_overrides": self.bpu_overrides or None,
        }
        if self.workload_digest is not None:
            payload["workload_digest"] = self.workload_digest
        canonical = json.dumps(payload, sort_keys=True, default=str)
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        self._cache_key = (ENGINE_VERSION, digest)
        return digest


def _execute_spec(spec: CaseSpec) -> RunResult:
    """Run one case (top-level so it is picklable for worker processes)."""
    # Imported here to avoid a circular import (runner imports this module).
    from .runner import run_single_thread_case, run_smt_case

    if spec.kind == "single":
        return run_single_thread_case(
            spec.pair, spec.config, spec.preset, spec.scale,
            switch_interval=spec.switch_interval,
            seed_offset=spec.seed_offset,
            bpu_overrides=spec.bpu_overrides)
    if spec.kind == "smt":
        return run_smt_case(spec.pair, spec.config, spec.preset, spec.scale,
                            se_mode=spec.se_mode,
                            seed_offset=spec.seed_offset,
                            bpu_overrides=spec.bpu_overrides)
    raise ValueError(f"unknown case kind {spec.kind!r}")


def _case_label(spec: CaseSpec) -> str:
    return f"{spec.label or spec.preset}/{spec.pair.case}"


def _run_case(spec: CaseSpec, *, index: Optional[int] = None,
              attempt: int = 1, in_worker: bool = False) -> RunResult:
    """Execute one case attempt (top-level so it is picklable for workers).

    The fault-injection hook fires only when ``REPRO_FAULT_SPEC`` is set, so
    the zero-fault hot path pays one environment lookup and nothing else.
    """
    if os.environ.get(FAULT_SPEC_VAR):
        from ..testing.faults import inject_case_faults

        inject_case_faults(key=spec.cache_key(), label=_case_label(spec),
                           index=index, attempt=attempt, in_worker=in_worker)
    return _execute_spec(spec)


class CaseTimeout(Exception):
    """A case exceeded its per-case timeout (``REPRO_CASE_TIMEOUT``)."""


@dataclass
class CaseFailure:
    """Structured record of one case that exhausted its retry budget.

    Attributes:
        key: the case's cache key (joins against manifests and artifacts).
        case: human-readable ``label-or-preset/pair`` tag.
        attempts: attempts consumed (``1 + retries`` unless interrupted).
        error: exception class name of the final attempt.
        message: exception message of the final attempt.
        timed_out: whether the final attempt was a timeout (real or
            injected) rather than an error.
        duration: wall-clock seconds of the final attempt.
    """

    key: str
    case: str
    attempts: int
    error: str
    message: str
    timed_out: bool = False
    duration: float = 0.0

    def to_dict(self) -> Dict:
        """Plain-dict form for the machine-readable failure manifest."""
        return asdict(self)


class ExecutionError(RuntimeError):
    """Raised when one or more cases failed permanently (fail-fast mode).

    Carries the structured :class:`CaseFailure` records in ``failures`` so
    callers can build a failure manifest even from the fail-fast path.
    """

    def __init__(self, failures: Sequence[CaseFailure]) -> None:
        self.failures = list(failures)
        shown = "; ".join(
            f"{f.case} [{f.key[:12]}…] after {f.attempts} attempt(s): "
            f"{f.error}: {f.message}" for f in self.failures[:5])
        if len(self.failures) > 5:
            shown += f"; … and {len(self.failures) - 5} more"
        super().__init__(
            f"{len(self.failures)} case(s) failed permanently: {shown}")


class RunResultCache:
    """Three-level (memory → disk → store) cache of finished run results.

    Args:
        directory: on-disk cache directory.  When omitted (``None``), the
            ``REPRO_CACHE_DIR`` environment variable is consulted; when that
            is unset too, the cache is memory-only (still deduplicating
            within a process).  Pass ``False`` to force a memory-only cache
            regardless of the environment.
        store: optional :class:`~repro.experiments.store.ResultStore` used as
            the third cache level.  When omitted (``None``), ``REPRO_STORE_DIR``
            is consulted (no store when unset); pass ``False`` to force a
            store-less cache regardless of the environment (the replay-only
            merge path needs this so its completeness guarantee cannot be
            voided by a configured store).  Store hits are promoted into
            the faster levels, and every :meth:`put` writes through to the
            store — so any shard or machine sharing a store publishes its
            results for all others.
    """

    def __init__(self, directory: "Optional[object]" = None,
                 store: "Optional[object]" = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or None
        elif directory is False:
            directory = None
        self.directory = directory
        if store is None:
            # Imported lazily: the store module imports ENGINE_VERSION from
            # this one.
            from .store import env_store

            store = env_store()
        elif store is False:
            store = None
        self.store = store
        self._memory: Dict[str, RunResult] = {}
        self.hits = 0
        self.misses = 0
        #: Hits served by the result store (a subset of ``hits``).
        self.store_hits = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _write_disk(self, key: str, result: RunResult) -> None:
        os.makedirs(self.directory, exist_ok=True)
        atomic_write_json(self._path(key), run_result_to_dict(result))

    def _best_effort_disk(self, key: str, result: RunResult) -> None:
        """Disk promotion from the read path: never fail a lookup over a
        read-only cache directory."""
        try:
            self._write_disk(key, result)
        except OSError:
            pass

    def get(self, key: str) -> Optional[RunResult]:
        """Return the cached result for a key, or ``None``."""
        result = self._memory.get(key)
        if result is not None:
            self.hits += 1
            return result
        if self.directory:
            path = self._path(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    result = run_result_from_dict(json.load(handle))
            except FileNotFoundError:
                result = None
            except (OSError, ValueError, KeyError, TypeError) as exc:
                # A present-but-unreadable disk entry (torn write, bit-rot,
                # permissions) degrades to a miss — the case re-simulates —
                # instead of aborting a long run over one bad cache file.
                logger.warning("disk cache entry %s is unreadable (%s: %s); "
                               "re-simulating", path, type(exc).__name__, exc)
                result = None
            if result is not None:
                # Publish disk-cached results too: "every finished
                # simulation reaches the store" must hold for warm-cache
                # runs, or a machine with a warm REPRO_CACHE_DIR would
                # export an empty store.
                if self.store is not None:
                    try:
                        self.store.put(key, result)
                    except ValueError:
                        # The disk entry conflicts with the digest-verified
                        # store entry.  Disk entries carry no integrity
                        # information, so trust the store: serve its result
                        # and heal the disk copy instead of crashing the
                        # read path.
                        verified = self.store.get(key)
                        if verified is not None:
                            result = verified
                            self._best_effort_disk(key, result)
                    except OSError:
                        # Read-only store mount: publication from the read
                        # path is best-effort — the result is already in
                        # hand, a lookup must not fail on it.
                        pass
                self._memory[key] = result
                self.hits += 1
                return result
        if self.store is not None:
            result = self.store.get(key)
            if result is not None:
                # Promote into the faster levels so later lookups (and other
                # processes sharing the cache directory) stay local.
                self._memory[key] = result
                if self.directory:
                    self._best_effort_disk(key, result)
                self.hits += 1
                self.store_hits += 1
                return result
        self.misses += 1
        return None

    def put(self, key: str, result: RunResult) -> None:
        """Store a finished result under a key (memory, disk and store).

        Store publication is best-effort on filesystem errors (a read-only
        shared store must not abort a run whose simulation already
        finished); a digest conflict still raises — that is the
        determinism tripwire, not an IO problem.
        """
        self._memory[key] = result
        if self.directory:
            self._write_disk(key, result)
        if self.store is not None:
            try:
                self.store.put(key, result)
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)


class SweepExecutor:
    """Runs independent simulation cases with dedupe, caching and fan-out.

    Args:
        jobs: worker processes; values above 1 use a
            :class:`~concurrent.futures.ProcessPoolExecutor`.  Defaults to
            the ``REPRO_JOBS`` environment variable (serial when unset).
        cache: result cache shared across calls; a fresh
            :class:`RunResultCache` (honouring ``REPRO_CACHE_DIR``) when
            omitted.
        allow_simulation: when ``False`` the executor only *replays* cached
            results and raises on any miss.  The sharded pipeline's merge step
            uses this to prove that every case an experiment assembles from
            was planned and executed by some shard — an incomplete ``plan()``
            fails loudly instead of silently re-simulating at merge time.
        keep_going: when ``True``, a case that exhausts its retry budget is
            recorded in :attr:`failures` and replaced by ``None`` in the
            returned results instead of aborting the run — every healthy
            case still completes (the ``--keep-going`` contract).
        timeout: per-case timeout in seconds (parallel runs only; an
            in-process case cannot be preempted).  ``None`` reads
            ``REPRO_CASE_TIMEOUT``; ``False`` forces the timeout off.
        retries: attempts allowed beyond the first per case.  ``None`` reads
            ``REPRO_RETRIES`` (default :data:`DEFAULT_RETRIES`).
        backoff: exponential-backoff base in seconds between attempts
            (``0`` retries immediately).  ``None`` reads
            ``REPRO_RETRY_BACKOFF``.
        on_result: optional ``callback(key, result)`` fired once per *newly
            simulated* case, in completion order, after the result has been
            published to the cache.  The shard journal hangs off this hook,
            which is what makes a killed run resumable from everything it
            already finished.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[RunResultCache] = None,
                 allow_simulation: bool = True, *,
                 keep_going: bool = False,
                 timeout: "Optional[object]" = None,
                 retries: Optional[int] = None,
                 backoff: Optional[float] = None,
                 on_result: Optional[Callable[[str, RunResult], None]] = None,
                 ) -> None:
        self.jobs = jobs if jobs is not None else env_jobs()
        self.cache = cache if cache is not None else RunResultCache()
        self.allow_simulation = allow_simulation
        self.keep_going = keep_going
        if timeout is None:
            timeout = env_case_timeout()
        elif timeout is False:
            timeout = None
        self.timeout = timeout
        self.retries = retries if retries is not None else env_retries()
        self.backoff = backoff if backoff is not None else env_retry_backoff()
        self.on_result = on_result
        #: Cases actually simulated (cache misses) over this executor's life.
        self.simulated = 0
        #: Permanent :class:`CaseFailure` records over this executor's life.
        self.failures: List[CaseFailure] = []
        # Surface a malformed REPRO_FAULT_SPEC here, at construction, rather
        # than as a cryptic crash inside the first worker process.
        active_clauses()

    def run_specs(self, specs: Sequence[CaseSpec]) -> List[RunResult]:
        """Run the given cases and return results in submission order.

        Identical cases (same cache key) are simulated once; previously
        cached cases are not simulated at all.  With ``jobs > 1`` the
        outstanding cases run concurrently in worker processes, but the
        returned list order — and therefore every downstream figure/table —
        is deterministic regardless of completion order.

        A case whose final attempt fails raises :class:`ExecutionError`
        (fail-fast default) or, under ``keep_going``, yields ``None`` at its
        positions in the returned list with the details recorded in
        :attr:`failures`.
        """
        specs = list(specs)
        keys = [spec.cache_key() for spec in specs]
        resolved: Dict[str, RunResult] = {}
        pending: List[CaseSpec] = []
        pending_keys: List[str] = []
        pending_seen: set = set()
        failed_before = {failure.key for failure in self.failures}
        for spec, key in zip(specs, keys):
            if key in resolved or key in pending_seen or key in failed_before:
                continue
            cached = self.cache.get(key)
            if cached is not None:
                resolved[key] = cached
            else:
                pending.append(spec)
                pending_keys.append(key)
                pending_seen.add(key)

        if pending and not self.allow_simulation:
            missing = ", ".join(
                f"{_case_label(spec)} ({key[:12]}…)"
                for spec, key in zip(pending, pending_keys))
            raise RuntimeError(
                f"replay-only executor has no cached result for "
                f"{len(pending)} case(s): {missing}; the experiment plan() "
                "is missing cases its assembly needs, or the shard artifacts "
                "are incomplete")
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._execute_parallel(pending, pending_keys, resolved)
            else:
                self._execute_serial(pending, pending_keys, resolved)

        if self.keep_going:
            return [resolved.get(key) for key in keys]
        return [resolved[key] for key in keys]

    def run_spec(self, spec: CaseSpec) -> RunResult:
        """Run (or fetch from cache) a single case."""
        return self.run_specs([spec])[0]

    # ------------------------------------------------------------------
    # fault-tolerant dispatch

    def _complete(self, resolved: Dict[str, RunResult], key: str,
                  result: RunResult) -> None:
        """Publish one newly simulated result (cache first, then journal)."""
        resolved[key] = result
        self.simulated += 1
        self.cache.put(key, result)
        if self.on_result is not None:
            self.on_result(key, result)

    def _backoff_delay(self, attempt: int) -> float:
        """Delay before the retry that follows failed attempt ``attempt``."""
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff * 2.0 ** (attempt - 1), MAX_BACKOFF_SECONDS)

    @staticmethod
    def _retryable(exc: BaseException) -> bool:
        """Whether a failed attempt is worth retrying.

        ``ValueError``/``TypeError`` are deterministic misconfigurations (bad
        spec, unknown kind) — retrying them only burns the backoff budget.
        Everything else (worker crashes, IO errors, injected transients) may
        be transient.
        """
        return not isinstance(exc, (ValueError, TypeError))

    def _record_failure(self, spec: CaseSpec, key: str, attempt: int,
                        exc: BaseException, duration: float) -> CaseFailure:
        failure = CaseFailure(
            key=key, case=_case_label(spec), attempts=attempt,
            error=type(exc).__name__,
            message=str(exc) or type(exc).__name__,
            timed_out=isinstance(exc, (CaseTimeout, InjectedTimeout)),
            duration=round(duration, 3))
        self.failures.append(failure)
        logger.error("case %s [%s…] failed permanently after %d attempt(s): "
                     "%s: %s", failure.case, key[:12], attempt, failure.error,
                     failure.message)
        return failure

    def _execute_serial(self, pending: List[CaseSpec],
                        pending_keys: List[str],
                        resolved: Dict[str, RunResult]) -> None:
        """In-process execution with the same retry/failure contract.

        A real ``REPRO_CASE_TIMEOUT`` cannot preempt in-process cases, but
        injected timeouts (and every other fault kind) classify identically
        to the parallel path.
        """
        for index, (spec, key) in enumerate(zip(pending, pending_keys)):
            attempt = 1
            while True:
                started = time.monotonic()
                try:
                    result = _run_case(spec, index=index, attempt=attempt,
                                       in_worker=False)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    duration = time.monotonic() - started
                    if attempt <= self.retries and self._retryable(exc):
                        delay = self._backoff_delay(attempt)
                        logger.warning(
                            "case %s attempt %d failed (%s: %s); retrying"
                            "%s", _case_label(spec), attempt,
                            type(exc).__name__, exc,
                            f" in {delay:g}s" if delay else "")
                        if delay:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    failure = self._record_failure(spec, key, attempt, exc,
                                                   duration)
                    if not self.keep_going:
                        raise ExecutionError([failure]) from exc
                    break
                else:
                    self._complete(resolved, key, result)
                    break

    def _execute_parallel(self, pending: List[CaseSpec],
                          pending_keys: List[str],
                          resolved: Dict[str, RunResult]) -> None:
        """Future-based fan-out with timeout, retries and pool recovery.

        The submission window equals the worker count, so a submitted case
        starts (almost) immediately and the per-case timeout can be measured
        from submission.  Recovery invariants:

        * a crashed pool (``BrokenProcessPool``) cannot tell the crasher
          apart from its co-victims, so every in-flight case consumes an
          attempt and the pool is rebuilt;
        * a case whose deadline expires is recorded as :class:`CaseTimeout`
          and the pool — which cannot preempt a wedged worker — is
          abandoned and rebuilt; innocent in-flight survivors are re-queued
          at the *same* attempt (interrupted is not failed);
        * ``KeyboardInterrupt`` cancels pending futures, abandons the pool
          and propagates (the CLI maps it to exit code 130).
        """
        workers = min(self.jobs, len(pending))
        queue: List[Tuple[int, int]] = [(i, 1) for i in range(len(pending))]
        waiting: List[Tuple[float, int, int]] = []  # (ready_at, idx, attempt)
        inflight: Dict[object, Tuple[int, int, float]] = {}
        exhausted: List[CaseFailure] = []
        pool = ProcessPoolExecutor(max_workers=workers)

        def submit(index: int, attempt: int) -> None:
            future = pool.submit(_run_case, pending[index], index=index,
                                 attempt=attempt, in_worker=True)
            inflight[future] = (index, attempt, time.monotonic())

        def reschedule(index: int, attempt: int, exc: BaseException,
                       duration: float) -> None:
            """One attempt failed: back off and retry, or record failure."""
            spec = pending[index]
            if attempt <= self.retries and self._retryable(exc):
                delay = self._backoff_delay(attempt)
                logger.warning(
                    "case %s attempt %d failed (%s: %s); retrying%s",
                    _case_label(spec), attempt, type(exc).__name__, exc,
                    f" in {delay:g}s" if delay else "")
                if delay:
                    waiting.append((time.monotonic() + delay, index,
                                    attempt + 1))
                else:
                    queue.append((index, attempt + 1))
                return
            exhausted.append(self._record_failure(spec, pending_keys[index],
                                                  attempt, exc, duration))

        def harvest(future, index: int, attempt: int, started: float) -> bool:
            """Settle one finished future; returns True on BrokenProcessPool."""
            duration = time.monotonic() - started
            try:
                result = future.result(timeout=60)
            except KeyboardInterrupt:
                raise
            except BrokenProcessPool as exc:
                reschedule(index, attempt, exc, duration)
                return True
            except CancelledError:
                # Never started (cancelled while queued): not an attempt.
                queue.append((index, attempt))
            except Exception as exc:
                reschedule(index, attempt, exc, duration)
            else:
                self._complete(resolved, pending_keys[index], result)
            return False

        def rebuild_pool(reason: str) -> None:
            nonlocal pool
            logger.warning("rebuilding worker pool after %s "
                           "(%d case(s) re-queued)", reason,
                           len(queue) + len(waiting))
            pool.shutdown(wait=False, cancel_futures=True)
            pool = ProcessPoolExecutor(max_workers=workers)

        def drain_broken_pool() -> None:
            """Settle every remaining future of a crashed pool, then rebuild.

            All of them were failed (or were already finished) by the pool
            machinery; the crasher is indistinguishable from its co-victims,
            so each unfinished case consumes an attempt.
            """
            dead = list(inflight.items())
            inflight.clear()
            for future, (index, attempt, started) in dead:
                harvest(future, index, attempt, started)
            rebuild_pool("worker crash (BrokenProcessPool)")

        def expire_timeouts(now: float) -> None:
            """Classify overdue cases as timed out and abandon the pool."""
            hung = []
            for future, (index, attempt, started) in list(inflight.items()):
                if future.done() or now - started <= self.timeout:
                    continue
                if future.cancel():
                    # Still queued, never started: just waiting in line, not
                    # hung — re-queue without consuming an attempt.
                    inflight.pop(future)
                    queue.append((index, attempt))
                    continue
                hung.append((future, index, attempt, now - started))
            if not hung:
                return
            for future, index, attempt, overdue in hung:
                inflight.pop(future)
                reschedule(index, attempt,
                           CaseTimeout(f"exceeded {self.timeout:g}s per-case "
                                       f"timeout (ran {overdue:.1f}s)"),
                           overdue)
            # A wedged worker cannot be preempted, so the whole pool is
            # abandoned; innocent in-flight survivors are re-queued at the
            # same attempt (interrupted, not failed).
            survivors = list(inflight.items())
            inflight.clear()
            for future, (index, attempt, started) in survivors:
                if future.done():
                    harvest(future, index, attempt, started)
                else:
                    queue.append((index, attempt))
            rebuild_pool(f"{len(hung)} case timeout(s)")

        try:
            while queue or waiting or inflight:
                now = time.monotonic()
                if waiting:
                    ready = [item for item in waiting if item[0] <= now]
                    if ready:
                        waiting[:] = [item for item in waiting
                                      if item[0] > now]
                        for _ready_at, index, attempt in ready:
                            queue.append((index, attempt))
                while queue and len(inflight) < workers:
                    index, attempt = queue.pop(0)
                    submit(index, attempt)
                if not inflight:
                    # Everything is backing off; sleep to the next deadline.
                    time.sleep(max(0.0, min(item[0] for item in waiting)
                                   - time.monotonic()))
                    continue
                tick = None
                if self.timeout is not None:
                    next_deadline = min(started + self.timeout
                                        for _i, _a, started
                                        in inflight.values())
                    tick = max(0.0, next_deadline - now)
                if waiting:
                    next_ready = max(0.0, min(item[0] for item in waiting)
                                     - now)
                    tick = next_ready if tick is None \
                        else min(tick, next_ready)
                done, _ = wait(list(inflight), timeout=tick,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    index, attempt, started = inflight.pop(future)
                    broken = harvest(future, index, attempt, started) \
                        or broken
                if broken:
                    drain_broken_pool()
                elif self.timeout is not None:
                    expire_timeouts(time.monotonic())
                if exhausted and not self.keep_going:
                    raise ExecutionError(exhausted)
            pool.shutdown(wait=True)
        except KeyboardInterrupt:
            logger.warning("interrupted; cancelling %d in-flight and %d "
                           "queued case(s)", len(inflight),
                           len(queue) + len(waiting))
            raise
        finally:
            # No-op after a clean shutdown; after an error or interrupt it
            # cancels everything still queued and abandons the workers.
            pool.shutdown(wait=False, cancel_futures=True)


class RepetitionExecutor:
    """Executor view that shifts every submitted case to one repetition.

    Repetition-averaged runs execute each planned case N times under seed
    offsets ``base..base+N-1``.  The figure/table drivers stay
    repetition-blind: at assembly time each repetition r re-runs the driver's
    ``assemble()`` against this view, which rewrites ``seed_offset`` before
    delegating to the real executor — so the plan-order contract between a
    driver's ``plan()`` and its assembly is untouched, and repetition 0 is
    exactly the historical single-trajectory case family.
    """

    def __init__(self, base: SweepExecutor, repetition: int) -> None:
        if repetition < 0:
            raise ValueError(f"repetition must be >= 0, got {repetition}")
        self.base = base
        self.repetition = repetition

    def run_specs(self, specs: Sequence[CaseSpec]) -> List[RunResult]:
        """Run the given cases at this view's repetition."""
        shifted = [replace(spec, seed_offset=spec.seed_offset + self.repetition)
                   for spec in specs]
        return self.base.run_specs(shifted)

    def run_spec(self, spec: CaseSpec) -> RunResult:
        """Run (or fetch from cache) a single case at this repetition."""
        return self.run_specs([spec])[0]


_DEFAULT_EXECUTOR: Optional[SweepExecutor] = None


def default_executor() -> SweepExecutor:
    """Process-wide shared executor.

    Sharing one executor (and therefore one cache) across all sweep and
    figure drivers is what lets a baseline simulated for Figure 1 be reused
    by Figure 7 in the same process without re-simulation.
    """
    global _DEFAULT_EXECUTOR
    if _DEFAULT_EXECUTOR is None:
        _DEFAULT_EXECUTOR = SweepExecutor()
    return _DEFAULT_EXECUTOR
