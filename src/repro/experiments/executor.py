"""Parallel, caching sweep execution.

Every figure/table reproduction in this repo boils down to running many
independent ``(pair, preset, scale)`` simulation cases and merging the
results.  This module provides the shared machinery:

* :class:`CaseSpec` — a self-contained, picklable description of one case
  (single-thread or SMT), with a deterministic cache key;
* :class:`RunResultCache` — a memoisation layer for finished
  :class:`repro.cpu.stats.RunResult` objects, in-memory by default,
  persisted to disk when a cache directory is configured (``REPRO_CACHE_DIR``
  or an explicit path), and backed by a cross-machine
  :class:`repro.experiments.store.ResultStore` when one is configured
  (``REPRO_STORE_DIR`` or an explicit instance), keyed by
  ``(kind, pair, core config, preset, scale, switch interval, seed offset,
  engine version)``;
* :class:`SweepExecutor` — runs a list of case specs, deduplicating
  identical cases (so a per-pair baseline is simulated exactly once no matter
  how many sweeps and figure drivers ask for it), fanning independent cases
  out over a :class:`concurrent.futures.ProcessPoolExecutor` when
  ``REPRO_JOBS`` (or the ``jobs`` argument) asks for more than one worker,
  and merging results back in deterministic submission order.

The executor is deliberately engine-agnostic: a case's cache key includes
:data:`ENGINE_VERSION`, which must be bumped whenever the simulation
semantics change, so stale on-disk entries can never leak across engine
revisions.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..cpu.config import CoreConfig
from ..cpu.stats import RunResult, run_result_from_dict, run_result_to_dict
from ..workloads.pairs import BenchmarkPair
from .scaling import ExperimentScale

__all__ = [
    "ENGINE_VERSION",
    "CaseSpec",
    "atomic_write_json",
    "RepetitionExecutor",
    "RunResultCache",
    "SweepExecutor",
    "default_executor",
    "env_jobs",
    "parse_jobs",
]

#: Simulation-engine revision; part of every cache key.  Bump whenever a
#: change alters simulated statistics for the same seeds, and on every
#: hot-path storage/kernel rewrite even when statistics are provably
#: unchanged (so on-disk results can never mix engine revisions).  2026.2:
#: packed predictor kernels + fused XOR isolation + batched workload RNG.
#: 2026.3: packed-array BTB + gshare closure kernels + packed TAGE
#: allocation (statistics bit-identical to 2026.2 — the golden-trace suite
#: pins that — but every BTB/gshare hot path was rebuilt).
ENGINE_VERSION = "2026.3-packed-btb"


def parse_jobs(raw: str, *, source: str = "REPRO_JOBS") -> int:
    """Parse a worker count, rejecting malformed values with a clear error.

    A bad value used to slip through here and only blow up (or silently run
    serially) deep inside the process-pool setup; failing at parse time names
    the offending setting instead.
    """
    try:
        jobs = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"{source} must be >= 1, got {jobs}")
    return jobs


def atomic_write_json(path: str, payload, *,
                      trailing_newline: bool = False) -> None:
    """Write canonical (sorted-keys) JSON via tmp-file + atomic replace.

    Shared by the disk cache, the result store and the shard-artifact
    writer: a killed process can leave a stray ``*.tmp.<pid>`` file but
    never a torn JSON document under the real name.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        if trailing_newline:
            handle.write("\n")
    os.replace(tmp, path)


def env_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable (default 1).

    Raises:
        ValueError: if ``REPRO_JOBS`` is set to anything but a positive
            integer (``0``, negative, or non-numeric values are all errors).
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return 1
    return parse_jobs(raw)


@dataclass
class CaseSpec:
    """One simulation case, self-contained and picklable.

    Attributes:
        kind: ``"single"`` for the single-threaded core, ``"smt"`` for the
            SMT core.
        pair: the benchmark pair/quad to simulate.
        config: core configuration.
        preset: protection preset name.
        scale: experiment scale.
        switch_interval: optional context-switch period override in real
            cycles (single-thread sweeps only).
        seed_offset: workload/key seed offset (repetition studies).
        se_mode: system-call-emulation mode (SMT only).
        bpu_overrides: optional isolation-config overrides applied when the
            branch prediction unit is built (ablation studies: alternative
            encoders, key-refresh policies).  Part of the cache key.
        label: result label for the caller's bookkeeping; not part of the
            cache key (two labels for the same case share one simulation).
    """

    kind: str
    pair: BenchmarkPair
    config: CoreConfig
    preset: str
    scale: ExperimentScale
    switch_interval: Optional[int] = None
    seed_offset: int = 0
    se_mode: bool = True
    bpu_overrides: Optional[Dict] = None
    label: Optional[str] = None

    def cache_key(self) -> str:
        """Deterministic key identifying this case's simulation output.

        Memoised per instance (invalidated on an engine-version change, for
        tests that monkeypatch it): a `run all` recomputes the expanded
        case set several times — describe, shard split, execution — and the
        JSON canonicalisation + SHA-256 per case dominates that planning
        cost.  Specs are treated as immutable once planned;
        :func:`dataclasses.replace` creates a fresh instance, so repetition
        expansion never sees a stale memo.
        """
        memo = self.__dict__.get("_cache_key")
        if memo is not None and memo[0] == ENGINE_VERSION:
            return memo[1]
        payload = {
            "engine": ENGINE_VERSION,
            "kind": self.kind,
            "pair": {"case": self.pair.case,
                     "benchmarks": list(self.pair.benchmarks)},
            "config": asdict(self.config),
            "preset": self.preset,
            "scale": asdict(self.scale),
            "switch_interval": self.switch_interval,
            "seed_offset": self.seed_offset,
            "se_mode": self.se_mode if self.kind == "smt" else None,
            "bpu_overrides": self.bpu_overrides or None,
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        self._cache_key = (ENGINE_VERSION, digest)
        return digest


def _execute_spec(spec: CaseSpec) -> RunResult:
    """Run one case (top-level so it is picklable for worker processes)."""
    # Imported here to avoid a circular import (runner imports this module).
    from .runner import run_single_thread_case, run_smt_case

    if spec.kind == "single":
        return run_single_thread_case(
            spec.pair, spec.config, spec.preset, spec.scale,
            switch_interval=spec.switch_interval,
            seed_offset=spec.seed_offset,
            bpu_overrides=spec.bpu_overrides)
    if spec.kind == "smt":
        return run_smt_case(spec.pair, spec.config, spec.preset, spec.scale,
                            se_mode=spec.se_mode,
                            seed_offset=spec.seed_offset,
                            bpu_overrides=spec.bpu_overrides)
    raise ValueError(f"unknown case kind {spec.kind!r}")


class RunResultCache:
    """Three-level (memory → disk → store) cache of finished run results.

    Args:
        directory: on-disk cache directory.  When omitted (``None``), the
            ``REPRO_CACHE_DIR`` environment variable is consulted; when that
            is unset too, the cache is memory-only (still deduplicating
            within a process).  Pass ``False`` to force a memory-only cache
            regardless of the environment.
        store: optional :class:`~repro.experiments.store.ResultStore` used as
            the third cache level.  When omitted (``None``), ``REPRO_STORE_DIR``
            is consulted (no store when unset); pass ``False`` to force a
            store-less cache regardless of the environment (the replay-only
            merge path needs this so its completeness guarantee cannot be
            voided by a configured store).  Store hits are promoted into
            the faster levels, and every :meth:`put` writes through to the
            store — so any shard or machine sharing a store publishes its
            results for all others.
    """

    def __init__(self, directory: "Optional[object]" = None,
                 store: "Optional[object]" = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or None
        elif directory is False:
            directory = None
        self.directory = directory
        if store is None:
            # Imported lazily: the store module imports ENGINE_VERSION from
            # this one.
            from .store import env_store

            store = env_store()
        elif store is False:
            store = None
        self.store = store
        self._memory: Dict[str, RunResult] = {}
        self.hits = 0
        self.misses = 0
        #: Hits served by the result store (a subset of ``hits``).
        self.store_hits = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _write_disk(self, key: str, result: RunResult) -> None:
        os.makedirs(self.directory, exist_ok=True)
        atomic_write_json(self._path(key), run_result_to_dict(result))

    def _best_effort_disk(self, key: str, result: RunResult) -> None:
        """Disk promotion from the read path: never fail a lookup over a
        read-only cache directory."""
        try:
            self._write_disk(key, result)
        except OSError:
            pass

    def get(self, key: str) -> Optional[RunResult]:
        """Return the cached result for a key, or ``None``."""
        result = self._memory.get(key)
        if result is not None:
            self.hits += 1
            return result
        if self.directory:
            path = self._path(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    result = run_result_from_dict(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError):
                result = None
            if result is not None:
                # Publish disk-cached results too: "every finished
                # simulation reaches the store" must hold for warm-cache
                # runs, or a machine with a warm REPRO_CACHE_DIR would
                # export an empty store.
                if self.store is not None:
                    try:
                        self.store.put(key, result)
                    except ValueError:
                        # The disk entry conflicts with the digest-verified
                        # store entry.  Disk entries carry no integrity
                        # information, so trust the store: serve its result
                        # and heal the disk copy instead of crashing the
                        # read path.
                        verified = self.store.get(key)
                        if verified is not None:
                            result = verified
                            self._best_effort_disk(key, result)
                    except OSError:
                        # Read-only store mount: publication from the read
                        # path is best-effort — the result is already in
                        # hand, a lookup must not fail on it.
                        pass
                self._memory[key] = result
                self.hits += 1
                return result
        if self.store is not None:
            result = self.store.get(key)
            if result is not None:
                # Promote into the faster levels so later lookups (and other
                # processes sharing the cache directory) stay local.
                self._memory[key] = result
                if self.directory:
                    self._best_effort_disk(key, result)
                self.hits += 1
                self.store_hits += 1
                return result
        self.misses += 1
        return None

    def put(self, key: str, result: RunResult) -> None:
        """Store a finished result under a key (memory, disk and store).

        Store publication is best-effort on filesystem errors (a read-only
        shared store must not abort a run whose simulation already
        finished); a digest conflict still raises — that is the
        determinism tripwire, not an IO problem.
        """
        self._memory[key] = result
        if self.directory:
            self._write_disk(key, result)
        if self.store is not None:
            try:
                self.store.put(key, result)
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)


class SweepExecutor:
    """Runs independent simulation cases with dedupe, caching and fan-out.

    Args:
        jobs: worker processes; values above 1 use a
            :class:`~concurrent.futures.ProcessPoolExecutor`.  Defaults to
            the ``REPRO_JOBS`` environment variable (serial when unset).
        cache: result cache shared across calls; a fresh
            :class:`RunResultCache` (honouring ``REPRO_CACHE_DIR``) when
            omitted.
        allow_simulation: when ``False`` the executor only *replays* cached
            results and raises on any miss.  The sharded pipeline's merge step
            uses this to prove that every case an experiment assembles from
            was planned and executed by some shard — an incomplete ``plan()``
            fails loudly instead of silently re-simulating at merge time.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[RunResultCache] = None,
                 allow_simulation: bool = True) -> None:
        self.jobs = jobs if jobs is not None else env_jobs()
        self.cache = cache if cache is not None else RunResultCache()
        self.allow_simulation = allow_simulation
        #: Cases actually simulated (cache misses) over this executor's life.
        self.simulated = 0

    def run_specs(self, specs: Sequence[CaseSpec]) -> List[RunResult]:
        """Run the given cases and return results in submission order.

        Identical cases (same cache key) are simulated once; previously
        cached cases are not simulated at all.  With ``jobs > 1`` the
        outstanding cases run concurrently in worker processes, but the
        returned list order — and therefore every downstream figure/table —
        is deterministic regardless of completion order.
        """
        specs = list(specs)
        keys = [spec.cache_key() for spec in specs]
        resolved: Dict[str, RunResult] = {}
        pending: List[CaseSpec] = []
        pending_keys: List[str] = []
        pending_seen: set = set()
        for spec, key in zip(specs, keys):
            if key in resolved or key in pending_seen:
                continue
            cached = self.cache.get(key)
            if cached is not None:
                resolved[key] = cached
            else:
                pending.append(spec)
                pending_keys.append(key)
                pending_seen.add(key)

        if pending and not self.allow_simulation:
            missing = ", ".join(
                f"{spec.label or spec.preset}/{spec.pair.case} ({key[:12]}…)"
                for spec, key in zip(pending, pending_keys))
            raise RuntimeError(
                f"replay-only executor has no cached result for "
                f"{len(pending)} case(s): {missing}; the experiment plan() "
                "is missing cases its assembly needs, or the shard artifacts "
                "are incomplete")
        if pending:
            self.simulated += len(pending)
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(_execute_spec, pending))
            else:
                outcomes = [_execute_spec(spec) for spec in pending]
            for key, result in zip(pending_keys, outcomes):
                resolved[key] = result
                self.cache.put(key, result)

        return [resolved[key] for key in keys]

    def run_spec(self, spec: CaseSpec) -> RunResult:
        """Run (or fetch from cache) a single case."""
        return self.run_specs([spec])[0]


class RepetitionExecutor:
    """Executor view that shifts every submitted case to one repetition.

    Repetition-averaged runs execute each planned case N times under seed
    offsets ``base..base+N-1``.  The figure/table drivers stay
    repetition-blind: at assembly time each repetition r re-runs the driver's
    ``assemble()`` against this view, which rewrites ``seed_offset`` before
    delegating to the real executor — so the plan-order contract between a
    driver's ``plan()`` and its assembly is untouched, and repetition 0 is
    exactly the historical single-trajectory case family.
    """

    def __init__(self, base: SweepExecutor, repetition: int) -> None:
        if repetition < 0:
            raise ValueError(f"repetition must be >= 0, got {repetition}")
        self.base = base
        self.repetition = repetition

    def run_specs(self, specs: Sequence[CaseSpec]) -> List[RunResult]:
        """Run the given cases at this view's repetition."""
        shifted = [replace(spec, seed_offset=spec.seed_offset + self.repetition)
                   for spec in specs]
        return self.base.run_specs(shifted)

    def run_spec(self, spec: CaseSpec) -> RunResult:
        """Run (or fetch from cache) a single case at this repetition."""
        return self.run_specs([spec])[0]


_DEFAULT_EXECUTOR: Optional[SweepExecutor] = None


def default_executor() -> SweepExecutor:
    """Process-wide shared executor.

    Sharing one executor (and therefore one cache) across all sweep and
    figure drivers is what lets a baseline simulated for Figure 1 be reused
    by Figure 7 in the same process without re-simulation.
    """
    global _DEFAULT_EXECUTOR
    if _DEFAULT_EXECUTOR is None:
        _DEFAULT_EXECUTOR = SweepExecutor()
    return _DEFAULT_EXECUTOR
