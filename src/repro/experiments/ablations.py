"""Ablation studies of the design choices the paper discusses but does not sweep.

Three ablations are provided:

* :func:`encoder_ablation` — Section 5.4 notes that XOR "can be exchanged for
  stronger isolation" (shift/scramble stages, small lookup tables).  The
  ablation confirms the performance cost is identical across encoders — the
  encoding only changes what stale entries decode to, never their accuracy
  for the owning thread.
* :func:`key_refresh_ablation` — Section 5.4 requires key regeneration on
  privilege switches.  The ablation quantifies the (small) performance that
  could be saved by refreshing only at context switches, and demonstrates the
  security consequence: a user-mode attacker can then steer a kernel-mode
  victim branch because both run under the same key.
* :func:`pht_granularity_ablation` — simple 2-bit XOR-PHT versus word-basis
  Enhanced-XOR-PHT (Section 5.2): equal performance, but the calibrated
  BranchScope attack recovers the victim direction through the naive scheme's
  fixed key relationship while the enhanced scheme resists it.
"""

from __future__ import annotations

from typing import List, Optional

from ..attacks.harness import run_attack
from ..attacks.primitives import AttackEnvironment
from ..attacks.spectre_v2 import LEGITIMATE_TARGET, MALICIOUS_TARGET, SHARED_CALL_PC
from ..core.registry import make_bpu
from ..cpu.config import fpga_prototype
from ..types import BranchType, Privilege
from ..workloads.pairs import get_pair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor, default_executor
from .scaling import ExperimentScale, default_scale

__all__ = ["encoder_ablation", "plan_encoder_ablation",
           "key_refresh_ablation", "plan_key_refresh_ablation",
           "pht_granularity_ablation"]

#: Content encoders compared by :func:`encoder_ablation`.
_ENCODERS = ("xor", "shift_xor", "sbox")


def plan_encoder_ablation(scale: Optional[ExperimentScale] = None,
                          case: str = "case6") -> List[CaseSpec]:
    """Cases for :func:`encoder_ablation`: baseline, then one per encoder."""
    scale = scale or default_scale()
    pair = get_pair(case, "single")
    config = fpga_prototype()
    specs = [CaseSpec("single", pair, config, "baseline", scale,
                      label="baseline")]
    specs.extend(CaseSpec("single", pair, config, "noisy_xor_bp", scale,
                          bpu_overrides={"encoder": encoder}, label=encoder)
                 for encoder in _ENCODERS)
    return specs


def encoder_ablation(scale: Optional[ExperimentScale] = None,
                     case: str = "case6",
                     executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Compare the XOR, shift-XOR and S-box content encoders."""
    scale = scale or default_scale()
    executor = executor or default_executor()
    pair = get_pair(case, "single")
    results = executor.run_specs(plan_encoder_ablation(scale, case))
    baseline = results[0]
    rows: List[List] = []
    for encoder, encoded in zip(_ENCODERS, results[1:]):
        overhead = encoded.overhead_vs(baseline, workload=pair.target)
        rows.append([encoder, f"{100 * overhead:+.2f}%"])
    return ExperimentResult(
        name="Ablation: content encoder",
        description=f"Noisy-XOR-BP overhead on {pair.label()} with different "
                    "reversible encoders",
        headers=["encoder", "overhead vs baseline"],
        rows=rows,
        paper_claim="the encoding only needs to be cheaply reversible; stronger "
                    "encodings are drop-in replacements",
        notes="Differences between encoders are run-to-run noise: the encoder "
              "never changes what the owning thread reads back.")


def _cross_privilege_training_rate(rotate_on_privilege: bool,
                                   iterations: int = 400) -> float:
    """Fraction of iterations where user-mode training steers a kernel branch."""
    bpu = make_bpu("bimodal", "noisy_xor_bp",
                   config_overrides={
                       "rotate_on_privilege_switch": rotate_on_privilege})
    env = AttackEnvironment(bpu, smt=False)
    successes = 0
    for _ in range(iterations):
        # Attacker (user mode) trains the shared indirect call site.
        for _ in range(3):
            env.attacker_branch(SHARED_CALL_PC, True, MALICIOUS_TARGET,
                                BranchType.INDIRECT)
        # The same software context enters the kernel, which executes an
        # indirect branch at the aliased address: no context switch occurs,
        # only a privilege switch.
        env.bpu.notify_privilege_switch(env.victim_thread, Privilege.KERNEL)
        result = env.bpu.btb.lookup(SHARED_CALL_PC, env.victim_thread)
        if result.hit and result.target == MALICIOUS_TARGET:
            successes += 1
        env.bpu.execute_branch(SHARED_CALL_PC, True, LEGITIMATE_TARGET,
                               BranchType.INDIRECT, env.victim_thread)
        env.bpu.notify_privilege_switch(env.victim_thread, Privilege.USER)
    return successes / iterations


#: Key-refresh policies compared by :func:`key_refresh_ablation`.
_REFRESH_POLICIES = ((True, "context + privilege switches (paper)"),
                     (False, "context switches only"))


def plan_key_refresh_ablation(scale: Optional[ExperimentScale] = None,
                              case: str = "case1") -> List[CaseSpec]:
    """Cases for :func:`key_refresh_ablation`: baseline, then one per policy."""
    scale = scale or default_scale()
    pair = get_pair(case, "single")
    config = fpga_prototype()
    specs = [CaseSpec("single", pair, config, "baseline", scale,
                      label="baseline")]
    specs.extend(
        CaseSpec("single", pair, config, "noisy_xor_bp", scale,
                 bpu_overrides={"rotate_on_privilege_switch": rotate},
                 label=label)
        for rotate, label in _REFRESH_POLICIES)
    return specs


def key_refresh_ablation(scale: Optional[ExperimentScale] = None,
                         case: str = "case1",
                         executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Refresh keys on privilege switches (paper design) vs context switches only."""
    scale = scale or default_scale()
    executor = executor or default_executor()
    pair = get_pair(case, "single")
    results = executor.run_specs(plan_key_refresh_ablation(scale, case))
    baseline = results[0]
    rows: List[List] = []
    for (rotate, label), result in zip(_REFRESH_POLICIES, results[1:]):
        overhead = result.overhead_vs(baseline, workload=pair.target)
        steering = _cross_privilege_training_rate(rotate)
        rows.append([label, f"{100 * overhead:+.2f}%", f"{100 * steering:.1f}%"])
    return ExperimentResult(
        name="Ablation: key refresh policy",
        description=f"Cost and consequence of the key-refresh policy on {pair.label()}",
        headers=["key refresh policy", "overhead vs baseline",
                 "user-to-kernel BTB steering success"],
        rows=rows,
        paper_claim="keys must be regenerated on privilege switches to isolate "
                    "privilege levels of the same program (Section 5.4)",
        notes="Skipping privilege-switch refresh recovers a little performance "
              "but lets user-mode training steer kernel-mode indirect branches.")


def pht_granularity_ablation(scale: Optional[ExperimentScale] = None,
                             iterations: int = 250) -> ExperimentResult:
    """Simple 2-bit XOR-PHT versus word-basis Enhanced-XOR-PHT (Section 5.2)."""
    scale = scale or default_scale()
    rows: List[List] = []
    for preset, label in (("xor_pht_simple", "XOR-PHT (2-bit words, fixed key)"),
                          ("xor_pht", "Enhanced-XOR-PHT (32-bit words)"),
                          ("noisy_xor_pht", "Noisy-XOR-PHT")):
        plain = run_attack("branchscope", preset, smt=True, iterations=iterations)
        calibrated = run_attack("branchscope_calibrated", preset, smt=True,
                                iterations=iterations)
        rows.append([label, f"{100 * plain.success_rate:.1f}%",
                     f"{100 * calibrated.success_rate:.1f}%"])
    return ExperimentResult(
        name="Ablation: XOR-PHT granularity",
        description="Direction-perception success against the PHT content-encoding "
                    "variants on an SMT core (chance level 50%)",
        headers=["scheme", "BranchScope success", "calibrated BranchScope success"],
        rows=rows,
        paper_claim="encoding 2-bit entries with a narrow fixed key gives "
                    "insufficient obfuscation; word-basis Enhanced-XOR-PHT (and "
                    "breaking the fixed key mapping) is required",
        notes="The calibrated attack uses a reference branch with a known "
              "direction, the Section 5.5 Scenario 4 corner case.")
