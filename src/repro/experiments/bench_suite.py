"""Benchmark-suite runs over registry-selected workloads (``--bench-set``).

The paper's figures run the fixed Table 3 pairs; this experiment opens the
workload axis: any benchmark-set selector of
:class:`repro.workloads.registry.WorkloadRegistry` (``int``, ``fp``,
``large_footprint``, ``indirect_heavy``, ``all``, ``traces``, or a
``+``-joined union) runs *solo* on the single-threaded FPGA-prototype core
under the two headline isolation mechanisms, and the result carries
SPEC-style **per-set geomean** summary rows next to the per-benchmark
figure — the reporting shape of the vusec ``instrumentation-infra`` SPEC2006
harness.

Trace-corpus workloads (``trace:*``) ride the same plumbing: their
:class:`~repro.experiments.executor.CaseSpec`\\ s carry the trace file's
content digest, so they shard, cache and store-address like any synthetic
case without perturbing existing keys.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import geometric_mean
from ..cpu.config import fpga_prototype
from ..workloads.pairs import BenchmarkPair
from ..workloads.registry import WorkloadEntry, get_registry
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor, default_executor
from .runner import (assemble_overhead_single_thread,
                     plan_overhead_single_thread)
from .scaling import ExperimentScale, default_scale

__all__ = ["MECHANISMS", "plan", "run", "experiment_def"]

#: The two headline mechanisms the suite compares (series label, preset,
#: switch-interval override).
MECHANISMS: List[Tuple[str, str, Optional[int]]] = [
    ("Complete-Flush", "complete_flush", None),
    ("Noisy-XOR-BP", "noisy_xor_bp", None),
]


def _solo_pairs(entries: Sequence[WorkloadEntry]) -> List[BenchmarkPair]:
    """Each selected workload runs alone; the case label is the name."""
    return [BenchmarkPair(entry.name, (entry.name,)) for entry in entries]


def _setup(selector: str, scale: Optional[ExperimentScale]):
    scale = scale or default_scale()
    registry = get_registry()
    entries = registry.select(selector)
    return scale, registry, entries, _solo_pairs(entries)


def plan(selector: str,
         scale: Optional[ExperimentScale] = None) -> List[CaseSpec]:
    """Enumerate the cases of one benchmark-set selector.

    Same order contract as
    :func:`repro.experiments.runner.plan_overhead_single_thread`; trace-backed
    specs additionally carry the corpus file's content digest in
    ``workload_digest`` (a replayed trace's behaviour is the file contents,
    not its name).
    """
    scale, registry, entries, pairs = _setup(selector, scale)
    specs = plan_overhead_single_thread(MECHANISMS, pairs, fpga_prototype(),
                                        scale)
    digests = {entry.name: entry.digest for entry in entries
               if entry.digest is not None}
    return [replace(spec, workload_digest=digests[spec.pair.case])
            if spec.pair.case in digests else spec
            for spec in specs]


def _set_geomean(values: List[float]) -> float:
    """SPEC-style geomean of fraction overheads (over the ``1+x`` ratios)."""
    return geometric_mean([1.0 + value for value in values]) - 1.0


def _summary_rows(figure, registry, entries: Sequence[WorkloadEntry]):
    """Per-set geomean rows for every named set intersecting the selection."""
    selected = [entry.name for entry in entries]
    index = {name: i for i, name in enumerate(figure.categories)}
    labels = list(figure.series)
    rows: List[List] = []
    for set_name, members in registry.sets().items():
        chosen = [name for name in selected if name in set(members)]
        if not chosen:
            continue
        row: List = [set_name, len(chosen)]
        for label in labels:
            series = figure.series[label]
            row.append(_set_geomean([series[index[name]] for name in chosen]))
        rows.append(row)
    rows.append(["selection", len(selected)]
                + [figure.geomean(label) for label in labels])
    return rows


def run(selector: str, scale: Optional[ExperimentScale] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Run one benchmark-set selector and assemble its geomean summary.

    Args:
        selector: benchmark-set selector (see
            :meth:`repro.workloads.registry.WorkloadRegistry.select`).
        scale: experiment scale (default honours ``REPRO_SCALE``).
        executor: sweep executor (the shared default when omitted; the merge
            step of the sharded pipeline passes a replay-only executor).

    Returns:
        An :class:`~repro.experiments.base.ExperimentResult` whose figure
        holds the per-benchmark overheads and whose rows are the per-set
        geomean summaries.
    """
    scale, registry, entries, pairs = _setup(selector, scale)
    executor = executor or default_executor()
    results = executor.run_specs(plan(selector, scale))
    figure, _ = assemble_overhead_single_thread(
        f"Benchmark suite [{selector}]",
        "isolation overhead per benchmark, solo on the single-threaded core",
        MECHANISMS, pairs, results)
    labels = [label for label, _preset, _interval in MECHANISMS]
    rows = _summary_rows(figure, registry, entries)
    display = [[row[0], row[1]]
               + [f"{100 * value:+.2f}%" for value in row[2:]]
               for row in rows]
    return ExperimentResult(
        name=f"Benchmark suite [{selector}]",
        description="per-set geometric-mean isolation overhead "
                    "(SPEC-harness-style summary)",
        headers=["set", "benchmarks"] + [f"{label} geomean" for label in labels],
        rows=display,
        figure=figure,
        notes="Geomeans are taken over the 1+overhead ratios, the SPEC "
              "convention for normalised runtimes; sets are the registry's "
              "named selectors intersected with the selection.")


def experiment_def(selector: str):
    """Manifest :class:`~repro.experiments.manifest.ExperimentDef` for a
    selector, keyed ``bench:<selector>``.

    The selector is validated eagerly (including the trace corpus scan), so
    an unknown set or a broken corpus fails at manifest-build time with a
    named error, not deep inside a shard.
    """
    from .manifest import ExperimentDef

    get_registry().select(selector)
    return ExperimentDef(
        key=f"bench:{selector}",
        plan=lambda scale: plan(selector, scale),
        assemble=lambda scale, executor: run(selector, scale,
                                             executor=executor))
