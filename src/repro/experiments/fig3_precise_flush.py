"""Figure 3: Complete Flush versus Precise Flush on the SMT-2 core.

Observation 3: tagging every entry with a thread ID and flushing only the
switching thread's entries reduces — but does not eliminate — the SMT flush
cost, at the price of extra storage and control logic, and still does not
protect against contention-based attacks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cpu.config import sunny_cove_smt
from ..workloads.pairs import SMT2_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor
from .runner import overhead_figure_smt, plan_overhead_smt
from .scaling import ExperimentScale, default_scale

__all__ = ["run", "plan"]

_MECHANISMS = [("Complete Flush", "complete_flush"),
               ("Precise Flush", "precise_flush")]


def _setup(scale, predictor, pairs):
    scale = scale or default_scale()
    pairs = list(pairs) if pairs is not None else list(SMT2_PAIRS)
    return scale, sunny_cove_smt(predictor, 2), pairs


def plan(scale: Optional[ExperimentScale] = None, predictor: str = "tournament",
         pairs: Optional[Sequence[BenchmarkPair]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Figure 3 needs (same knobs as ``run``)."""
    scale, config, pairs = _setup(scale, predictor, pairs)
    return plan_overhead_smt(_MECHANISMS, pairs, config, scale)


def run(scale: Optional[ExperimentScale] = None, predictor: str = "tournament",
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 3.

    Args:
        scale: experiment scale.
        predictor: direction predictor of the SMT core.
        pairs: subset of the SMT-2 pairs (all 12 by default).
        executor: sweep executor (the shared default when omitted).
    """
    scale, config, pairs = _setup(scale, predictor, pairs)
    figure, _ = overhead_figure_smt(
        "Figure 3", "Complete Flush vs Precise Flush on the SMT-2 core",
        list(_MECHANISMS), pairs, config=config, scale=scale,
        executor=executor)
    rows = [[label, f"{100 * value:+.2f}%"] for label, value in figure.averages().items()]
    return ExperimentResult(
        name="Figure 3",
        description="Comparison between Complete Flush and Precise Flush on SMT-2 "
                    "(normalised to the unprotected baseline)",
        headers=["mechanism", "average overhead"],
        rows=rows,
        figure=figure,
        paper_claim="Precise Flush reduces the loss relative to Complete Flush "
                    "but it remains elevated",
        notes=f"Predictor: {predictor}.")
