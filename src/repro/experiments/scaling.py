"""Experiment scaling.

The paper simulates billions of instructions per configuration; a pure-Python
model cannot.  All experiments therefore run *scaled*: one simulated cycle
stands for ``time_scale`` real cycles, so the OS-event intervals (timer
context switches, system calls) shrink by that factor while the predictor
warm-up cost — a property of the workload's branch working set — stays the
same.  Relative overheads keep their per-case ordering and crossovers but are
inflated in absolute terms; EXPERIMENTS.md quantifies this per figure.

The ``REPRO_SCALE`` environment variable multiplies the trace-length budgets
(values above 1 increase fidelity and run time; values below 1 speed up smoke
runs).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace

__all__ = ["ExperimentScale", "default_scale", "quick_scale",
           "env_scale_factor", "parse_scale_factor"]


def parse_scale_factor(raw, *, source: str = "REPRO_SCALE") -> float:
    """Parse a trace-length scale factor, naming the offending setting.

    A typo'd ``REPRO_SCALE`` (or ``--scale``) used to fall back to ``1.0``
    silently — a full-fidelity run the user thought was a smoke run — or, for
    a zero/negative value, surface as an empty-trace crash deep inside trace
    generation.  Valid positive values are clamped to ``[0.05, 100.0]``, the
    range the scaled-model calibration covers.
    """
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a number, got {raw!r}") from None
    if not math.isfinite(value) or value <= 0:
        raise ValueError(
            f"{source} must be a positive, finite number, got {raw!r}")
    return max(0.05, min(value, 100.0))


def env_scale_factor() -> float:
    """Trace-length multiplier from ``REPRO_SCALE`` (default ``1.0``).

    Raises:
        ValueError: if ``REPRO_SCALE`` is set to a non-numeric, zero,
            negative or non-finite value.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None or raw == "":
        return 1.0
    return parse_scale_factor(raw)


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how much work each experiment simulates.

    Attributes:
        time_scale: real cycles represented by one simulated cycle (applied to
            the context-switch interval) on the single-threaded core.
        smt_time_scale: the same scale for the SMT experiments; larger because
            the SMT runs are driven by an instruction budget shared between
            threads and need several timer ticks per thread within it.
        syscall_time_scale: scale applied to system-call intervals; kept
            smaller than ``time_scale`` so that per-syscall warm-up amortises
            over a window closer to its real relative size.
        st_target_branches: branches the target benchmark commits in each
            single-threaded measurement.
        st_warmup_branches: single-threaded warm-up branches.
        smt_instructions: combined instructions per SMT measurement.
        smt_warmup_instructions: SMT warm-up instructions.
        poc_iterations: iterations for the proof-of-concept attacks.
        table1_iterations: attack iterations per Table 1 cell.
        seed: base RNG seed shared by the experiments.
    """

    time_scale: float = 200.0
    smt_time_scale: float = 600.0
    syscall_time_scale: float = 25.0
    st_target_branches: int = 12_000
    st_warmup_branches: int = 3_000
    smt_instructions: int = 120_000
    smt_warmup_instructions: int = 30_000
    poc_iterations: int = 2_000
    table1_iterations: int = 120
    seed: int = 2021

    def scaled_by(self, factor: float) -> "ExperimentScale":
        """Scale the trace-length budgets by ``factor``."""
        return replace(
            self,
            st_target_branches=max(1_000, int(self.st_target_branches * factor)),
            st_warmup_branches=max(500, int(self.st_warmup_branches * factor)),
            smt_instructions=max(20_000, int(self.smt_instructions * factor)),
            smt_warmup_instructions=max(5_000, int(self.smt_warmup_instructions * factor)),
            poc_iterations=max(100, int(self.poc_iterations * factor)),
            table1_iterations=max(40, int(self.table1_iterations * factor)),
        )


def default_scale() -> ExperimentScale:
    """Default experiment scale, honouring ``REPRO_SCALE``."""
    return ExperimentScale().scaled_by(env_scale_factor())


def quick_scale() -> ExperimentScale:
    """A small scale for smoke tests and examples."""
    return ExperimentScale().scaled_by(0.25)
