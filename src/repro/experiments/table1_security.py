"""Table 1: security comparison of the isolation mechanisms.

Every mechanism × structure row is attacked with the applicable reuse-based
and contention-based attacks on both core types; the best attacker success
rate is mapped to a Defend / Mitigate / No-Protection verdict and compared
cell-by-cell with the paper's table.
"""

from __future__ import annotations

from typing import List, Optional

from ..security.analysis import TABLE1_COLUMNS, build_security_table
from .base import ExperimentResult
from .scaling import ExperimentScale, default_scale

__all__ = ["run"]


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Reproduce Table 1.

    Args:
        scale: experiment scale (controls attack iterations per cell).
    """
    scale = scale or default_scale()
    rows_data = build_security_table(iterations=scale.table1_iterations,
                                     seed=scale.seed)
    headers = ["structure", "mechanism"]
    for core, kind in TABLE1_COLUMNS:
        headers.append(f"{core}/{kind}")
    headers.append("matches paper")

    rows: List[List] = []
    total_cells = 0
    matching_cells = 0
    for row in rows_data:
        cells = []
        all_match = True
        for column in TABLE1_COLUMNS:
            cell = row.cells[column]
            total_cells += 1
            matching_cells += int(cell.matches_paper)
            all_match &= cell.matches_paper
            text = cell.verdict.value
            if cell.paper_verdict and not cell.matches_paper:
                text += f" (paper: {cell.paper_verdict})"
            cells.append(text)
        rows.append([row.structure.upper(), row.label] + cells
                    + ["yes" if all_match else "no"])

    agreement = matching_cells / total_cells if total_cells else 0.0
    return ExperimentResult(
        name="Table 1",
        description="Security comparison of isolation mechanisms "
                    "(empirical verdicts from the attack framework)",
        headers=headers,
        rows=rows,
        paper_claim="XOR-based mechanisms defend reuse and contention attacks on "
                    "single-threaded cores and are stronger than flush-based "
                    "mechanisms on SMT cores",
        notes=f"Cell agreement with the paper's Table 1: {agreement:.0%}. "
              "Verdict thresholds: normalised attacker advantage <= 0.15 is "
              "Defend, <= 0.60 is Mitigate, else No Protection.")
