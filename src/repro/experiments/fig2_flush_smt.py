"""Figure 2: Complete-Flush overhead on SMT-2 and SMT-4 cores.

Observation 2: the flush cost grows sharply on an SMT core, because every
hardware thread's timer tick wipes the state of *all* co-running threads, and
grows further with the thread count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.figures import FigureSeries
from ..analysis.metrics import arithmetic_mean
from ..cpu.config import sunny_cove_smt
from ..workloads.pairs import SMT2_PAIRS, SMT4_QUADS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor, default_executor
from .scaling import ExperimentScale, default_scale

__all__ = ["run", "plan"]


def _group_specs(pairs: Sequence[BenchmarkPair], smt_threads: int,
                 predictor: str, scale: ExperimentScale) -> List[CaseSpec]:
    """Baseline + Complete-Flush specs for one SMT thread-count group."""
    config = sunny_cove_smt(predictor, smt_threads)
    specs: List[CaseSpec] = []
    for pair in pairs:
        specs.append(CaseSpec("smt", pair, config, "baseline", scale,
                              label="baseline"))
        specs.append(CaseSpec("smt", pair, config, "complete_flush", scale,
                              label="complete_flush"))
    return specs


def _setup(scale, smt2_pairs, smt4_quads):
    scale = scale or default_scale()
    smt2 = list(smt2_pairs) if smt2_pairs is not None else list(SMT2_PAIRS)
    smt4 = list(smt4_quads) if smt4_quads is not None else list(SMT4_QUADS)
    return scale, smt2, smt4


def plan(scale: Optional[ExperimentScale] = None, predictor: str = "tournament",
         smt2_pairs: Optional[Sequence[BenchmarkPair]] = None,
         smt4_quads: Optional[Sequence[BenchmarkPair]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Figure 2 needs (same knobs as ``run``)."""
    scale, smt2, smt4 = _setup(scale, smt2_pairs, smt4_quads)
    return (_group_specs(smt2, 2, predictor, scale)
            + _group_specs(smt4, 4, predictor, scale))


def _assemble_overheads(results: Sequence) -> tuple:
    """Per-pair overheads from (baseline, flushed) result pairs, plus mean."""
    overheads = [flushed.overhead_vs(baseline)
                 for baseline, flushed in zip(results[::2], results[1::2])]
    return overheads, arithmetic_mean(overheads)


def run(scale: Optional[ExperimentScale] = None, predictor: str = "tournament",
        smt2_pairs: Optional[Sequence[BenchmarkPair]] = None,
        smt4_quads: Optional[Sequence[BenchmarkPair]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 2.

    Args:
        scale: experiment scale.
        predictor: direction predictor of the SMT core (the paper does not
            name the one used for this figure; the Tournament predictor keeps
            the run time moderate and the conclusion is predictor-independent).
        smt2_pairs: subset of the SMT-2 pairs (all 12 by default).
        smt4_quads: subset of the SMT-4 quads (all 6 by default).
        executor: sweep executor (the shared default when omitted).
    """
    scale, smt2, smt4 = _setup(scale, smt2_pairs, smt4_quads)
    executor = executor or default_executor()
    specs = plan(scale, predictor, smt2, smt4)
    results = executor.run_specs(specs)

    split = 2 * len(smt2)
    smt2_overheads, smt2_avg = _assemble_overheads(results[:split])
    smt4_overheads, smt4_avg = _assemble_overheads(results[split:])

    figure = FigureSeries(
        name="Figure 2",
        description="Complete Flush overhead on SMT cores",
        categories=["SMT-2", "SMT-4"])
    figure.add_series("Complete Flush", [smt2_avg, smt4_avg])

    rows = [["SMT-2", f"{100 * smt2_avg:+.2f}%", len(smt2)],
            ["SMT-4", f"{100 * smt4_avg:+.2f}%", len(smt4)]]
    per_case = [[pair.case, pair.label(), f"{100 * ov:+.2f}%"]
                for pair, ov in zip(smt2, smt2_overheads)]
    per_case += [[pair.case, pair.label(), f"{100 * ov:+.2f}%"]
                 for pair, ov in zip(smt4, smt4_overheads)]
    return ExperimentResult(
        name="Figure 2",
        description="Performance overhead of flushing branch history on an SMT core",
        headers=["core", "average overhead", "workload sets"],
        rows=rows + [["--- per case ---", "", ""]] + per_case,
        figure=figure,
        paper_claim="flush overhead grows markedly versus the single-threaded "
                    "core and increases again from SMT-2 to SMT-4 "
                    "(several percent up to ~13%)",
        notes=f"Predictor: {predictor}. SMT-4 sets are formed by merging "
              "consecutive SMT-2 pairs (the paper does not list its SMT-4 sets).")
