"""Sharded execution of experiment manifests, and the merge that follows.

The pipeline turns a planned :class:`~repro.experiments.manifest.ExperimentManifest`
into finished figures/tables in three composable steps:

* :func:`execute_shard` — run the cases (and caseless experiments) owned by
  one shard over the process pool, and write a self-describing **shard
  artifact** (JSON: engine version, manifest hash, scale, executed case
  results keyed by cache key, and any whole experiment results);
* :func:`merge_artifacts` — validate a set of shard artifacts (same engine /
  manifest / scale; shards disjoint; **every planned case executed exactly
  once across the union**), pre-populate a
  :class:`~repro.experiments.executor.RunResultCache` from them, and
  re-assemble every experiment through a *replay-only*
  :class:`~repro.experiments.executor.SweepExecutor` — so the merge simulates
  nothing and fails loudly if any plan was incomplete;
* :func:`run_serial` — the degenerate single-machine path (one implicit
  shard, assembly in-process).

Because a case's :class:`~repro.cpu.stats.RunResult` serialises through JSON
with exact float round-tripping (the same mechanism the on-disk result cache
uses), a sharded run merged from artifacts is **bit-identical** to a serial
run of the same manifest; ``tests/experiments/test_pipeline.py`` pins that
against the committed golden traces.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.export import result_from_dict, result_to_dict
from ..analysis.stats import fold_experiment_results
from ..cpu.stats import run_result_from_dict, run_result_to_dict
from .base import ExperimentResult
from .executor import (
    ENGINE_VERSION,
    RepetitionExecutor,
    RunResultCache,
    SweepExecutor,
    atomic_write_json,
)
from .manifest import ExperimentDef, ExperimentManifest, ShardSpec

__all__ = [
    "ARTIFACT_SCHEMA",
    "FAILURE_SCHEMA",
    "shard_artifact_path",
    "journal_path",
    "failure_manifest_path",
    "assemble_experiment",
    "execute_shard",
    "load_artifact",
    "load_journal",
    "merge_artifacts",
    "register_store_manifest",
    "run_serial",
    "write_failure_manifest",
    "write_outputs",
]

logger = logging.getLogger(__name__)

#: Shard-artifact schema revision (bumped on incompatible layout changes).
#: 2: artifacts carry the manifest's ``repetitions`` so a merge re-plans the
#: exact repetition family the shards executed.
ARTIFACT_SCHEMA = 2

#: Shard-journal schema revision (the append-only per-case checkpoint log).
JOURNAL_SCHEMA = 1

#: Failure-manifest schema revision (the machine-readable ``--keep-going``
#: failure report).
FAILURE_SCHEMA = 1


def shard_artifact_path(out_dir: str, shard: Optional[ShardSpec]) -> str:
    """Canonical artifact filename for a shard (``shard-i-of-n.json``)."""
    if shard is None:
        return os.path.join(out_dir, "shard-0-of-1.json")
    return os.path.join(out_dir, f"shard-{shard.index}-of-{shard.count}.json")


def journal_path(out_dir: str, shard: Optional[ShardSpec]) -> str:
    """Canonical shard-journal filename (``journal-i-of-n.jsonl``)."""
    if shard is None:
        return os.path.join(out_dir, "journal-0-of-1.jsonl")
    return os.path.join(out_dir, f"journal-{shard.index}-of-{shard.count}.jsonl")


def failure_manifest_path(out_dir: str, shard: Optional[ShardSpec]) -> str:
    """Canonical failure-manifest filename (``failures-i-of-n.json``)."""
    if shard is None:
        return os.path.join(out_dir, "failures-0-of-1.json")
    return os.path.join(out_dir,
                        f"failures-{shard.index}-of-{shard.count}.json")


def _journal_header(manifest: ExperimentManifest,
                    shard: Optional[ShardSpec]) -> dict:
    return {
        "kind": "shard-journal",
        "schema": JOURNAL_SCHEMA,
        "engine": ENGINE_VERSION,
        "manifest_hash": manifest.manifest_hash(),
        "repetitions": manifest.repetitions,
        "shard": {"index": shard.index if shard else 0,
                  "count": shard.count if shard else 1},
    }


def load_journal(path: str, header: dict) -> "Tuple[Dict[str, object], int]":
    """Replay a shard journal; return ``(results by key, valid byte count)``.

    The journal is append-only JSONL: one header line, then one
    ``{"key": …, "result": …}`` record per completed case.  A process killed
    mid-append leaves a torn final line; everything before it is salvaged and
    ``valid bytes`` marks where the journal can be truncated and appending
    resumed.  A missing journal — or one whose header line itself is torn —
    yields ``({}, 0)`` (start fresh).  A journal whose *valid* header does
    not match ``header`` (different engine, manifest, repetitions or shard)
    raises ``ValueError``: resuming someone else's run would poison the
    artifact.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return {}, 0
    results: Dict[str, object] = {}
    valid = 0
    have_header = False
    pos = 0
    while True:
        newline = data.find(b"\n", pos)
        if newline == -1:
            break  # torn trailing line (or EOF): salvage what came before
        line = data[pos:newline]
        next_pos = newline + 1
        if line.strip():
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break  # corrupt line mid-file: salvage the prefix
            if not have_header:
                if not isinstance(record, dict) \
                        or record.get("kind") != "shard-journal":
                    raise ValueError(
                        f"{path}: not a shard journal (unexpected first "
                        "record)")
                for field in ("schema", "engine", "manifest_hash",
                              "repetitions", "shard"):
                    if record.get(field) != header[field]:
                        raise ValueError(
                            f"{path}: journal belongs to a different run "
                            f"({field} {record.get(field)!r} != "
                            f"{header[field]!r}); refusing to resume from it")
                have_header = True
            else:
                if not isinstance(record, dict) or "key" not in record \
                        or "result" not in record:
                    break
                try:
                    results[record["key"]] = run_result_from_dict(
                        record["result"])
                except (ValueError, KeyError, TypeError):
                    break
        pos = next_pos
        valid = next_pos
    if not have_header:
        return {}, 0
    return results, valid


class _ShardJournal:
    """Append-only per-case checkpoint log for one shard execution.

    Each completed case is flushed and fsynced as its own JSONL record the
    moment it finishes, so a ``kill -9`` (or injected worker crash) loses at
    most the in-flight cases — never a finished one.  ``valid_bytes`` from
    :func:`load_journal` truncates any torn tail before appending resumes.
    """

    def __init__(self, path: str, header: dict, valid_bytes: int) -> None:
        self.path = path
        if valid_bytes > 0:
            with open(path, "rb+") as handle:
                handle.truncate(valid_bytes)
            self._handle = open(path, "a", encoding="utf-8")
        else:
            self._handle = open(path, "w", encoding="utf-8")
            self._append(header)

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, key: str, result) -> None:
        """Journal one finished case (the executor's ``on_result`` hook)."""
        self._append({"key": key, "result": run_result_to_dict(result)})

    def close(self) -> None:
        self._handle.close()


def register_store_manifest(manifest: ExperimentManifest,
                            cache: RunResultCache) -> bool:
    """Record the manifest's case ownership in the cache's result store.

    Called after a run completes (serial or shard): the store's manifest
    index is what makes ``store gc --manifest-hash`` / ``export --manifest``
    able to scope to live work.  Best-effort — a read-only store mount or a
    racing registration must never fail a run whose simulations already
    finished — and a no-op without a store.  Returns whether an index is in
    place.
    """
    store = getattr(cache, "store", None)
    if store is None:
        return False
    try:
        store.register_manifest(manifest.manifest_hash(),
                                sorted(manifest.unique_cases()))
        return True
    except (OSError, ValueError) as exc:
        logger.warning("could not register manifest %s in the result store "
                       "(%s); scoped gc/export will not know this run",
                       manifest.manifest_hash()[:12], exc)
        return False


def write_failure_manifest(out_dir: str, shard: Optional[ShardSpec],
                           failures: Sequence,
                           failed_experiments: Optional[Dict[str, str]] = None
                           ) -> Optional[str]:
    """Write (or clear) the machine-readable failure manifest for a shard.

    With failures, writes ``failures-i-of-n.json`` and returns its path;
    without, removes any stale manifest from a previous attempt and returns
    ``None`` — so the file's existence is itself the signal a run completed
    with failures.
    """
    path = failure_manifest_path(out_dir, shard)
    if not failures and not failed_experiments:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        return None
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "schema": FAILURE_SCHEMA,
        "engine": ENGINE_VERSION,
        "shard": {"index": shard.index if shard else 0,
                  "count": shard.count if shard else 1},
        "failures": [failure.to_dict() for failure in failures],
        "failed_experiments": dict(failed_experiments or {}),
    }
    atomic_write_json(path, payload, trailing_newline=True)
    return path


def execute_shard(manifest: ExperimentManifest, shard: Optional[ShardSpec],
                  out_dir: str, *, jobs: Optional[int] = None,
                  cache: Optional[RunResultCache] = None,
                  keep_going: bool = False, resume: bool = False) -> str:
    """Execute one shard of a manifest and write its artifact.

    Every completed case is checkpointed to an append-only shard journal
    (``journal-i-of-n.jsonl``) as it finishes; a killed run restarted with
    ``resume=True`` replays the journal into the cache and simulates only the
    remainder, producing an artifact bit-identical to an uninterrupted run.

    Args:
        manifest: the planned manifest (must be planned identically on every
            shard — same experiments, same scale).
        shard: this worker's slice; ``None`` executes everything.
        out_dir: directory receiving ``shard-i-of-n.json`` (and the journal).
        jobs: process-pool width (``REPRO_JOBS`` when omitted).
        cache: result cache (a fresh ``REPRO_CACHE_DIR``-honouring cache when
            omitted, so CI can persist results across runs).
        keep_going: complete healthy cases when some fail permanently, and
            write a ``failures-i-of-n.json`` manifest instead of raising
            (failed cases are excluded from the artifact, so a later merge
            still enforces the exactly-once invariant loudly).
        resume: replay the existing journal (header-checked against this
            manifest/shard) before executing; without it a pre-existing
            journal is overwritten.

    Returns:
        The artifact path.
    """
    os.makedirs(out_dir, exist_ok=True)
    owned = manifest.shard_cases(shard)
    header = _journal_header(manifest, shard)
    jpath = journal_path(out_dir, shard)
    replayed: Dict[str, object] = {}
    valid_bytes = 0
    if resume:
        replayed, valid_bytes = load_journal(jpath, header)
        unknown = set(replayed) - set(owned)
        if unknown:
            # The header hash pins manifest+shard, so this is only reachable
            # through manual journal surgery — but refuse to replay it.
            raise ValueError(
                f"{jpath}: journal contains {len(unknown)} case(s) this "
                "shard does not own")
    if cache is None:
        cache = RunResultCache()
    for key, result in replayed.items():
        cache.put(key, result)

    journal = _ShardJournal(jpath, header, valid_bytes)
    try:
        executor = SweepExecutor(jobs=jobs, cache=cache,
                                 keep_going=keep_going,
                                 on_result=journal.record)
        results = executor.run_specs(list(owned.values()))
    finally:
        # Close even when retries are exhausted mid-run: everything that
        # finished is journaled and a later ``resume`` picks it up.
        journal.close()

    cases = {key: run_result_to_dict(result)
             for key, result in zip(owned, results) if result is not None}
    experiment_results: Dict[str, dict] = {}
    failed_experiments: Dict[str, str] = {}
    for key in manifest.shard_caseless(shard):
        try:
            experiment_results[key] = result_to_dict(
                manifest.definition(key).assemble(manifest.scale, executor))
        except Exception as exc:
            if not keep_going:
                raise
            failed_experiments[key] = f"{type(exc).__name__}: {exc}"

    write_failure_manifest(out_dir, shard, executor.failures,
                           failed_experiments)

    payload = {
        "schema": ARTIFACT_SCHEMA,
        "engine": ENGINE_VERSION,
        "manifest_hash": manifest.manifest_hash(),
        "scale": asdict(manifest.scale),
        "experiments": manifest.keys,
        "repetitions": manifest.repetitions,
        "shard": {"index": shard.index if shard else 0,
                  "count": shard.count if shard else 1},
        "stats": {"simulated": executor.simulated,
                  "cache_hits": executor.cache.hits,
                  "store_hits": executor.cache.store_hits},
        "cases": cases,
        "experiment_results": experiment_results,
    }
    path = shard_artifact_path(out_dir, shard)
    atomic_write_json(path, payload, trailing_newline=True)
    if not executor.failures and not failed_experiments:
        # Every shard registers the same full-manifest index (idempotent):
        # any one completing shard is enough for scoped gc/export to know
        # the manifest, and a failed shard registers nothing it didn't run.
        register_store_manifest(manifest, cache)
    return path


def load_artifact(path: str) -> dict:
    """Read one shard artifact, validating its schema marker."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported shard-artifact schema {schema!r} "
            f"(expected {ARTIFACT_SCHEMA})")
    return payload


def _validate_artifacts(manifest: ExperimentManifest,
                        artifacts: "Sequence[Tuple[str, dict]]") -> None:
    """Check artifact consistency and the exactly-once execution invariant."""
    expected_hash = manifest.manifest_hash()
    shard_counts = set()
    seen_shards: Dict[int, str] = {}
    executed: Dict[str, List[str]] = {}
    caseless_seen: Dict[str, List[str]] = {}
    for path, payload in artifacts:
        if payload["engine"] != ENGINE_VERSION:
            raise ValueError(
                f"{path}: artifact was produced by engine "
                f"{payload['engine']!r}, this build is {ENGINE_VERSION!r}")
        if payload.get("repetitions", 1) != manifest.repetitions:
            raise ValueError(
                f"{path}: artifact was executed with "
                f"--repetitions {payload.get('repetitions', 1)}, the merge "
                f"is planning {manifest.repetitions}")
        if payload["manifest_hash"] != expected_hash:
            raise ValueError(
                f"{path}: manifest hash {payload['manifest_hash'][:12]}… does "
                f"not match the planned manifest {expected_hash[:12]}… "
                "(different experiment selection, scale, or engine)")
        shard = payload["shard"]
        shard_counts.add(shard["count"])
        if shard["index"] in seen_shards:
            raise ValueError(
                f"{path}: shard {shard['index']} already provided by "
                f"{seen_shards[shard['index']]}")
        seen_shards[shard["index"]] = path
        for key in payload["cases"]:
            executed.setdefault(key, []).append(path)
        for key in payload["experiment_results"]:
            caseless_seen.setdefault(key, []).append(path)
    if len(shard_counts) > 1:
        raise ValueError(
            f"artifacts disagree on the shard count: {sorted(shard_counts)}")

    planned = manifest.unique_cases()
    duplicated = {key: paths for key, paths in executed.items()
                  if len(paths) > 1}
    if duplicated:
        worst = next(iter(sorted(duplicated)))
        raise ValueError(
            f"{len(duplicated)} case(s) were executed by more than one shard "
            f"(e.g. {worst[:12]}… in {', '.join(duplicated[worst])}); shard "
            "partitions must be disjoint")
    unplanned = sorted(set(executed) - set(planned))
    if unplanned:
        raise ValueError(
            f"artifacts contain {len(unplanned)} case(s) the manifest never "
            f"planned (e.g. {unplanned[0][:12]}…); were they produced with a "
            "different experiment selection?")
    missing = sorted(set(planned) - set(executed))
    if missing:
        raise ValueError(
            f"{len(missing)} planned case(s) were executed by no shard "
            f"(e.g. {missing[0][:12]}…); are all shard artifacts present?")

    # Caseless experiments must obey the same exactly-once invariant as
    # cases: a missing shard that happened to own only caseless experiments
    # would otherwise pass the case checks and be silently re-simulated at
    # merge time.
    expected_caseless = set(manifest.caseless_keys())
    duplicated_caseless = sorted(key for key, owners in caseless_seen.items()
                                 if len(owners) > 1)
    if duplicated_caseless:
        raise ValueError(
            f"caseless experiment(s) executed by more than one shard: "
            f"{', '.join(duplicated_caseless)}; shard partitions must be "
            "disjoint")
    unplanned_caseless = sorted(set(caseless_seen) - expected_caseless)
    if unplanned_caseless:
        raise ValueError(
            f"artifacts contain result(s) for experiment(s) the manifest "
            f"does not treat as caseless: {', '.join(unplanned_caseless)}")
    missing_caseless = sorted(expected_caseless - set(caseless_seen))
    if missing_caseless:
        raise ValueError(
            f"caseless experiment(s) executed by no shard: "
            f"{', '.join(missing_caseless)}; are all shard artifacts present?")


def assemble_experiment(definition: ExperimentDef,
                        manifest: ExperimentManifest,
                        executor: SweepExecutor) -> ExperimentResult:
    """Assemble one experiment, folding repetitions when the manifest has any.

    Case-based experiments assemble once per repetition — each pass sees a
    :class:`~repro.experiments.executor.RepetitionExecutor` view that shifts
    every case to that repetition's seed offset — and the per-seed results
    fold into one mean ± 95%-CI result
    (:func:`repro.analysis.stats.fold_experiment_results`).  The fold indexes
    by repetition, never by shard or artifact order, so serial, sharded and
    store-replayed runs of the same manifest aggregate bit-identically.
    Caseless experiments (attack studies, configuration tables) run their own
    seeded harnesses outside the executor, and non-``repeatable`` experiments
    (figure-less tables) cannot express error bars; both assemble exactly
    once.  With ``repetitions=1`` this is a plain pass-through — byte-for-byte
    the historical single-trajectory assembly.
    """
    repeatable = definition.repeatable and bool(manifest.plans[definition.key])
    repetitions = manifest.repetitions if repeatable else 1
    if repetitions == 1:
        return definition.assemble(manifest.scale, executor)
    per_seed = [
        definition.assemble(manifest.scale,
                            RepetitionExecutor(executor, repetition))
        for repetition in range(repetitions)]
    return fold_experiment_results(per_seed)


def merge_artifacts(paths: Iterable[str], manifest: ExperimentManifest,
                    *, out_dir: Optional[str] = None
                    ) -> Dict[str, ExperimentResult]:
    """Merge shard artifacts into final figures/tables.

    Validates that the artifacts cover the manifest exactly once, then
    re-assembles every case-based experiment through a **replay-only**
    executor over the merged results, and loads the caseless experiments'
    results straight from the artifacts.  Any union of shard outputs that
    passes validation produces output bit-identical to a serial run.

    Args:
        paths: shard artifact files (any order).
        manifest: the manifest the shards were executed from (re-planned
            locally; the artifact hash check proves it matches).
        out_dir: when given, final results are also written there via
            :func:`write_outputs`.

    Returns:
        Experiment results keyed like the manifest.
    """
    artifacts = [(path, load_artifact(path)) for path in paths]
    if not artifacts:
        raise ValueError("no shard artifacts to merge")
    _validate_artifacts(manifest, artifacts)

    # directory=False / store=False: the replay must be a pure function of
    # the artifacts — a configured REPRO_CACHE_DIR or REPRO_STORE_DIR could
    # otherwise serve cases no shard executed (voiding the exactly-once
    # proof), and the artifact loading would silently write through into the
    # user's cache/store.
    cache = RunResultCache(directory=False, store=False)
    for _path, payload in artifacts:
        for key, data in payload["cases"].items():
            cache.put(key, run_result_from_dict(data))
    replay = SweepExecutor(jobs=1, cache=cache, allow_simulation=False)

    caseless: Dict[str, ExperimentResult] = {}
    for _path, payload in artifacts:
        for key, data in payload["experiment_results"].items():
            caseless[key] = result_from_dict(data)

    results: Dict[str, ExperimentResult] = {}
    for definition in manifest.definitions:
        if definition.key in caseless:
            results[definition.key] = caseless[definition.key]
        else:
            results[definition.key] = assemble_experiment(definition,
                                                          manifest, replay)
    if out_dir:
        write_outputs(results, manifest, out_dir)
    return results


def run_serial(manifest: ExperimentManifest, *, jobs: Optional[int] = None,
               cache: Optional[RunResultCache] = None,
               out_dir: Optional[str] = None,
               executor: Optional[SweepExecutor] = None
               ) -> Dict[str, ExperimentResult]:
    """Execute and assemble a whole manifest in-process (no shard artifacts).

    The global (repetition-expanded) case list still runs through one
    :class:`~repro.experiments.executor.SweepExecutor` batch first — fanning
    out over worker processes and deduplicating across experiments — before
    the per-experiment assembly replays it from the warm cache.

    Args:
        manifest: the planned manifest.
        jobs: process-pool width (ignored when ``executor`` is given).
        cache: result cache (ignored when ``executor`` is given).
        out_dir: when given, final results are written there.
        executor: pre-built executor; callers pass one to read its
            simulation/cache-hit counters afterwards (the CLI reports them).
    """
    if executor is None:
        executor = SweepExecutor(jobs=jobs, cache=cache)
    executor.run_specs(list(manifest.unique_cases().values()))
    if executor.failures:
        # keep-going executor: every healthy case finished (and is cached/
        # journaled), but experiments cannot assemble around the holes.  The
        # caller reports the structured failures; nothing is written.
        return {}
    results = {
        definition.key: assemble_experiment(definition, manifest, executor)
        for definition in manifest.definitions}
    register_store_manifest(manifest, executor.cache)
    if out_dir:
        write_outputs(results, manifest, out_dir)
    return results


def write_outputs(results: Dict[str, ExperimentResult],
                  manifest: ExperimentManifest, out_dir: str) -> List[str]:
    """Write per-experiment JSON + rendered text and a run summary.

    The JSON artifacts are serialised deterministically (sorted keys, exact
    floats), so two runs of the same manifest can be compared with ``diff``.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for key, result in results.items():
        json_path = os.path.join(out_dir, f"{key}.json")
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)
            handle.write("\n")
        text_path = os.path.join(out_dir, f"{key}.txt")
        with open(text_path, "w", encoding="utf-8") as handle:
            handle.write(result.render())
            handle.write("\n")
        written.extend([json_path, text_path])
    summary_path = os.path.join(out_dir, "summary.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(manifest.describe(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written.append(summary_path)
    return written
