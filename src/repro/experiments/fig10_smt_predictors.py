"""Figure 10: three isolation mechanisms on four predictors on the SMT-2 core.

For each of Gshare, Tournament, LTAGE and TAGE-SC-L, the figure shows the
per-case overhead of Complete Flush, Precise Flush and Noisy-XOR-BP relative
to the same predictor without protection.  The paper's three observations:

1. per-case impacts span a wide range (some cases exceed 20%), but averages
   stay at a few percent;
2. Noisy-XOR-BP generally costs less than both flush mechanisms (26–37%
   lower than Complete Flush on average), with exceptions;
3. more accurate predictors show somewhat higher protection overhead
   (2.3% for the least accurate up to 4.9% for the most accurate), and the
   measured baseline MPKIs are 8.45 / 5.17 / 4.10 / 3.99.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.figures import FigureSeries
from ..analysis.metrics import arithmetic_mean
from ..cpu.config import sunny_cove_smt
from ..workloads.pairs import SMT2_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor, default_executor
from .scaling import ExperimentScale, default_scale

__all__ = ["run", "plan", "PREDICTORS", "MECHANISMS", "PAPER_BASELINE_MPKI"]

#: Predictors evaluated in Figure 10, in the paper's accuracy order.
PREDICTORS = ["gshare", "tournament", "ltage", "tage_sc_l"]

#: Mechanisms evaluated in Figure 10: (figure label suffix, preset).
MECHANISMS = [("CF", "complete_flush"), ("PF", "precise_flush"),
              ("Noisy-XOR-BP", "noisy_xor_bp")]

#: Baseline MPKI the paper measured for the four predictors.
PAPER_BASELINE_MPKI = {"gshare": 8.45, "tournament": 5.17,
                       "ltage": 4.10, "tage_sc_l": 3.99}


def _setup(scale, predictors, pairs):
    scale = scale or default_scale()
    predictors = list(predictors) if predictors is not None else list(PREDICTORS)
    pairs = list(pairs) if pairs is not None else list(SMT2_PAIRS)
    return scale, predictors, pairs


def plan(scale: Optional[ExperimentScale] = None,
         predictors: Optional[Sequence[str]] = None,
         pairs: Optional[Sequence[BenchmarkPair]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Figure 10 needs (same knobs as ``run``).

    Order contract with ``run``: per predictor, one baseline per pair first,
    then one block of pairs per mechanism.
    """
    scale, predictors, pairs = _setup(scale, predictors, pairs)
    specs: List[CaseSpec] = []
    for predictor in predictors:
        config = sunny_cove_smt(predictor, 2)
        specs.extend(CaseSpec("smt", pair, config, "baseline", scale,
                              label=f"{predictor}-baseline") for pair in pairs)
        for suffix, preset in MECHANISMS:
            specs.extend(CaseSpec("smt", pair, config, preset, scale,
                                  label=f"{predictor}-{suffix}")
                         for pair in pairs)
    return specs


def run(scale: Optional[ExperimentScale] = None,
        predictors: Optional[Sequence[str]] = None,
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 10.

    Args:
        scale: experiment scale.
        predictors: subset of :data:`PREDICTORS` (all four by default; this
            is the most expensive experiment in the suite).
        pairs: subset of the SMT-2 pairs (all 12 by default).
        executor: sweep executor (the shared default when omitted).
    """
    scale, predictors, pairs = _setup(scale, predictors, pairs)
    executor = executor or default_executor()
    results = executor.run_specs(plan(scale, predictors, pairs))

    figure = FigureSeries(
        name="Figure 10",
        description="Isolation overhead per predictor and mechanism on SMT-2",
        categories=[pair.case for pair in pairs])
    baseline_mpki: Dict[str, float] = {}
    averages: List[List] = []

    position = 0
    for predictor in predictors:
        baselines = {}
        mpkis = []
        for pair in pairs:
            baselines[pair.case] = results[position]
            position += 1
            mpkis.append(baselines[pair.case].direction_mpki)
        baseline_mpki[predictor] = arithmetic_mean(mpkis)
        for suffix, preset in MECHANISMS:
            label = f"{predictor}-{suffix}"
            values = []
            for pair in pairs:
                values.append(results[position].overhead_vs(baselines[pair.case]))
                position += 1
            figure.add_series(label, values)
            averages.append([predictor, suffix,
                             f"{100 * arithmetic_mean(values):+.2f}%"])

    rows = [[predictor, f"{baseline_mpki[predictor]:.2f}",
             PAPER_BASELINE_MPKI.get(predictor, float('nan'))]
            for predictor in predictors]
    return ExperimentResult(
        name="Figure 10",
        description="Performance cost of three isolation mechanisms on four "
                    "predictors on an SMT-2 core",
        headers=["predictor", "measured baseline MPKI", "paper baseline MPKI"],
        rows=rows + [["--- averages ---", "", ""]] + averages,
        figure=figure,
        paper_claim="Noisy-XOR-BP is on average cheaper than Complete/Precise "
                    "Flush (26-37% lower loss than CF); overhead grows mildly "
                    "with predictor accuracy; baseline MPKI 8.45/5.17/4.10/3.99",
        notes="Synthetic workloads inflate absolute MPKI; the predictor "
              "accuracy ordering and the CF > PF ordering are reproduced. "
              "For history-indexed untagged predictors our traces exaggerate "
              "cross-thread constructive aliasing, which raises the apparent "
              "steady-state cost of content encoding (see EXPERIMENTS.md).")
