"""Shared experiment plumbing: building systems and running cases."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.registry import make_bpu
from ..core.secure import BranchPredictionUnit
from ..cpu.config import CoreConfig, fpga_prototype, sunny_cove_smt
from ..cpu.core import SingleThreadCore
from ..cpu.smt import SmtCore
from ..cpu.stats import RunResult
from ..workloads.pairs import BenchmarkPair, make_pair_workloads
from .executor import CaseSpec, SweepExecutor, default_executor
from .scaling import ExperimentScale, default_scale

__all__ = ["build_bpu", "run_single_thread_case", "run_smt_case",
           "sweep_single_thread", "sweep_smt",
           "plan_overhead_single_thread", "assemble_overhead_single_thread",
           "plan_overhead_smt", "assemble_overhead_smt",
           "overhead_figure_single_thread", "overhead_figure_smt"]


def build_bpu(config: CoreConfig, preset: str, seed: int,
              overrides: Optional[Dict] = None) -> BranchPredictionUnit:
    """Build a branch prediction unit matching a core configuration."""
    return make_bpu(config.predictor, preset, seed=seed,
                    btb_sets=config.btb_sets, btb_ways=config.btb_ways,
                    btb_miss_forces_not_taken=config.btb_miss_forces_not_taken,
                    predictor_kwargs=dict(config.predictor_kwargs),
                    config_overrides=dict(overrides) if overrides else None)


def run_single_thread_case(pair: BenchmarkPair, config: CoreConfig, preset: str,
                           scale: ExperimentScale, *,
                           switch_interval: Optional[int] = None,
                           seed_offset: int = 0,
                           bpu_overrides: Optional[Dict] = None) -> RunResult:
    """Run one Table 3 pair on the single-threaded core under one mechanism.

    Args:
        pair: the benchmark pair; the first benchmark is the measured target.
        config: core configuration (usually the FPGA prototype).
        preset: protection preset name.
        scale: experiment scale.
        switch_interval: context-switch period in (real) cycles; defaults to
            the configuration's standard Linux period.
        seed_offset: varies workload and key seeds between repetitions.
        bpu_overrides: isolation-config overrides for the BPU (ablations).
    """
    if switch_interval is not None:
        config = config.with_switch_interval(switch_interval)
    workloads = make_pair_workloads(pair, seed=scale.seed + seed_offset)
    bpu = build_bpu(config, preset, seed=scale.seed + 7 * seed_offset + 1,
                    overrides=bpu_overrides)
    core = SingleThreadCore(config, bpu, workloads,
                            time_scale=scale.time_scale,
                            syscall_time_scale=scale.syscall_time_scale)
    return core.run(target_branches=scale.st_target_branches,
                    warmup_branches=scale.st_warmup_branches,
                    mechanism_name=preset)


def run_smt_case(pair: BenchmarkPair, config: CoreConfig, preset: str,
                 scale: ExperimentScale, *, se_mode: bool = True,
                 seed_offset: int = 0,
                 bpu_overrides: Optional[Dict] = None) -> RunResult:
    """Run one Table 3 pair/quad on the SMT core under one mechanism."""
    workloads = make_pair_workloads(pair, seed=scale.seed + seed_offset)
    if len(workloads) != config.smt_threads:
        raise ValueError(
            f"pair {pair.case} has {len(workloads)} benchmarks but the core has "
            f"{config.smt_threads} hardware threads")
    bpu = build_bpu(config, preset, seed=scale.seed + 7 * seed_offset + 1,
                    overrides=bpu_overrides)
    core = SmtCore(config, bpu, workloads, time_scale=scale.smt_time_scale,
                   se_mode=se_mode)
    return core.run(instructions=scale.smt_instructions,
                    warmup_instructions=scale.smt_warmup_instructions,
                    mechanism_name=preset)


def sweep_single_thread(pairs: Iterable[BenchmarkPair], config: CoreConfig,
                        presets: Iterable[str], scale: Optional[ExperimentScale] = None,
                        *, switch_intervals: Optional[Dict[str, int]] = None,
                        executor: Optional[SweepExecutor] = None
                        ) -> Dict[Tuple[str, str], RunResult]:
    """Run every (pair, preset) combination on the single-threaded core.

    All cases go through a :class:`repro.experiments.executor.SweepExecutor`:
    the per-pair baseline is simulated exactly once per (pair, config, scale)
    no matter how often it is requested, cached results are reused across
    sweeps and figure drivers, and independent cases fan out over worker
    processes when ``REPRO_JOBS > 1``.

    Args:
        pairs: benchmark pairs to run.
        config: core configuration.
        presets: protection presets; ``baseline`` is always run once per pair.
        scale: experiment scale (default scale when omitted).
        switch_intervals: optional per-preset context-switch period override
            (used for the ``-4M/-8M/-12M`` sweeps; keys are preset labels in
            the returned dictionary).
        executor: sweep executor; the shared process-wide default when
            omitted.

    Returns:
        Results keyed by ``(case, preset_label)``.
    """
    scale = scale or default_scale()
    executor = executor or default_executor()
    specs: List[CaseSpec] = []
    keys: List[Tuple[str, str]] = []
    for pair in pairs:
        specs.append(CaseSpec("single", pair, config, "baseline", scale,
                              label="baseline"))
        keys.append((pair.case, "baseline"))
        for label in presets:
            if label == "baseline":
                continue
            preset = label
            interval = None
            if switch_intervals and label in switch_intervals:
                interval = switch_intervals[label]
                preset = label.rsplit("-", 1)[0]
            specs.append(CaseSpec("single", pair, config, preset, scale,
                                  switch_interval=interval, label=label))
            keys.append((pair.case, label))
    results = executor.run_specs(specs)
    return dict(zip(keys, results))


def sweep_smt(pairs: Iterable[BenchmarkPair], config: CoreConfig,
              presets: Iterable[str], scale: Optional[ExperimentScale] = None,
              *, executor: Optional[SweepExecutor] = None
              ) -> Dict[Tuple[str, str], RunResult]:
    """Run every (pair, preset) combination on the SMT core.

    Like :func:`sweep_single_thread`, the cases run through a
    :class:`repro.experiments.executor.SweepExecutor`, so a per-pair
    ``baseline`` appearing in ``presets`` (or already simulated by another
    sweep or figure driver sharing the executor's cache) is not re-simulated.
    """
    scale = scale or default_scale()
    executor = executor or default_executor()
    specs: List[CaseSpec] = []
    keys: List[Tuple[str, str]] = []
    for pair in pairs:
        for preset in presets:
            specs.append(CaseSpec("smt", pair, config, preset, scale,
                                  label=preset))
            keys.append((pair.case, preset))
    results = executor.run_specs(specs)
    return dict(zip(keys, results))


def plan_overhead_single_thread(mechanisms: "Sequence[Tuple[str, str, Optional[int]]]",
                                pairs: Sequence[BenchmarkPair],
                                config: CoreConfig,
                                scale: ExperimentScale) -> List[CaseSpec]:
    """Enumerate the cases behind a single-thread overhead figure.

    The order is the contract between :func:`plan_overhead_single_thread` and
    :func:`assemble_overhead_single_thread`: one baseline per pair first, then
    one block of pairs per mechanism series.
    """
    specs = [CaseSpec("single", pair, config, "baseline", scale,
                      label="baseline") for pair in pairs]
    for label, preset, interval in mechanisms:
        specs.extend(CaseSpec("single", pair, config, preset, scale,
                              switch_interval=interval, label=label)
                     for pair in pairs)
    return specs


def assemble_overhead_single_thread(name: str, description: str,
                                    mechanisms: "Sequence[Tuple[str, str, Optional[int]]]",
                                    pairs: Sequence[BenchmarkPair],
                                    results: Sequence[RunResult]):
    """Build the overhead figure from results ordered as the plan emits them."""
    from ..analysis.figures import FigureSeries

    figure = FigureSeries(name=name, description=description,
                          categories=[pair.case for pair in pairs])
    baselines: Dict[str, RunResult] = {
        pair.case: result for pair, result in zip(pairs, results[:len(pairs)])}
    position = len(pairs)
    for label, _preset, _interval in mechanisms:
        values = []
        for pair in pairs:
            result = results[position]
            position += 1
            values.append(result.overhead_vs(baselines[pair.case],
                                             workload=pair.target))
        figure.add_series(label, values)
    return figure, baselines


def overhead_figure_single_thread(name: str, description: str,
                                  mechanisms: "List[Tuple[str, str, Optional[int]]]",
                                  pairs: List[BenchmarkPair],
                                  config: Optional[CoreConfig] = None,
                                  scale: Optional[ExperimentScale] = None,
                                  executor: Optional[SweepExecutor] = None):
    """Build a per-case overhead figure on the single-threaded core.

    All cases — the per-pair baselines and every mechanism series — are
    planned by :func:`plan_overhead_single_thread`, submitted to a
    :class:`repro.experiments.executor.SweepExecutor` in one batch (so they
    deduplicate against each other and against previously cached runs, and
    fan out over worker processes when ``REPRO_JOBS > 1``), then assembled by
    :func:`assemble_overhead_single_thread`.

    Args:
        name: figure name.
        description: figure description.
        mechanisms: list of ``(series label, preset, switch_interval)``; the
            interval is in real cycles (``None`` keeps the default).
        pairs: benchmark pairs (x-axis categories).
        config: core configuration; the FPGA prototype by default.
        scale: experiment scale.
        executor: sweep executor; the shared process-wide default when
            omitted.

    Returns:
        A tuple ``(figure, baselines)`` where ``figure`` is the populated
        :class:`repro.analysis.figures.FigureSeries` of overheads versus the
        per-case baseline and ``baselines`` maps case name to its baseline
        :class:`repro.cpu.stats.RunResult`.
    """
    scale = scale or default_scale()
    config = config or fpga_prototype()
    executor = executor or default_executor()
    specs = plan_overhead_single_thread(mechanisms, pairs, config, scale)
    results = executor.run_specs(specs)
    return assemble_overhead_single_thread(name, description, mechanisms,
                                           pairs, results)


def plan_overhead_smt(mechanisms: "Sequence[Tuple[str, str]]",
                      pairs: Sequence[BenchmarkPair],
                      config: CoreConfig,
                      scale: ExperimentScale) -> List[CaseSpec]:
    """Enumerate the cases behind an SMT overhead figure (same order contract
    as :func:`plan_overhead_single_thread`)."""
    specs = [CaseSpec("smt", pair, config, "baseline", scale,
                      label="baseline") for pair in pairs]
    for label, preset in mechanisms:
        specs.extend(CaseSpec("smt", pair, config, preset, scale, label=label)
                     for pair in pairs)
    return specs


def assemble_overhead_smt(name: str, description: str,
                          mechanisms: "Sequence[Tuple[str, str]]",
                          pairs: Sequence[BenchmarkPair],
                          results: Sequence[RunResult]):
    """Build the SMT overhead figure from plan-ordered results."""
    from ..analysis.figures import FigureSeries

    figure = FigureSeries(name=name, description=description,
                          categories=[pair.case for pair in pairs])
    baselines: Dict[str, RunResult] = {
        pair.case: result for pair, result in zip(pairs, results[:len(pairs)])}
    position = len(pairs)
    for label, _preset in mechanisms:
        values = []
        for pair in pairs:
            result = results[position]
            position += 1
            values.append(result.overhead_vs(baselines[pair.case]))
        figure.add_series(label, values)
    return figure, baselines


def overhead_figure_smt(name: str, description: str,
                        mechanisms: "List[Tuple[str, str]]",
                        pairs: List[BenchmarkPair],
                        config: Optional[CoreConfig] = None,
                        scale: Optional[ExperimentScale] = None,
                        executor: Optional[SweepExecutor] = None):
    """Build a per-case overhead figure on the SMT core.

    Args:
        name: figure name.
        description: figure description.
        mechanisms: list of ``(series label, preset)``.
        pairs: benchmark pairs or quads (must match the core's thread count).
        config: core configuration; the Sunny-Cove-like SMT-2 core by default.
        scale: experiment scale.
        executor: sweep executor; the shared process-wide default when
            omitted.

    Returns:
        ``(figure, baselines)`` as for :func:`overhead_figure_single_thread`,
        with overheads computed on total elapsed cycles.
    """
    scale = scale or default_scale()
    config = config or sunny_cove_smt()
    executor = executor or default_executor()
    specs = plan_overhead_smt(mechanisms, pairs, config, scale)
    results = executor.run_specs(specs)
    return assemble_overhead_smt(name, description, mechanisms, pairs, results)
