"""Common experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.figures import FigureSeries
from ..analysis.tables import render_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Result of reproducing one paper table or figure.

    Attributes:
        name: experiment identifier (``"Figure 7"``, ``"Table 5"``, ...).
        description: what the experiment measures.
        headers: column headers of the tabular result.
        rows: tabular result rows.
        figure: optional figure data series (for the bar-chart figures).
        paper_claim: the paper's headline numbers for this experiment.
        notes: reproduction caveats (scaling, substitutions).
        replicates: the per-repetition figures that ``figure`` was folded
            from (one entry per seed offset, in repetition order).  Empty for
            single-trajectory runs and figure-less experiments; consumed by
            ``repro.analysis.significance`` for paired per-seed tests.
    """

    name: str
    description: str
    headers: Sequence[str] = field(default_factory=list)
    rows: List[Sequence] = field(default_factory=list)
    figure: Optional[FigureSeries] = None
    paper_claim: str = ""
    notes: str = ""
    replicates: List[FigureSeries] = field(default_factory=list)

    def render(self) -> str:
        """Render the experiment result as text."""
        parts = [f"== {self.name}: {self.description} =="]
        if self.paper_claim:
            parts.append(f"Paper: {self.paper_claim}")
        if self.figure is not None:
            parts.append(self.figure.render())
        if self.rows:
            parts.append(render_table(self.headers, self.rows))
        if self.notes:
            parts.append(f"Notes: {self.notes}")
        return "\n".join(parts)
