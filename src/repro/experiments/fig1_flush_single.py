"""Figure 1: Complete-Flush overhead on the single-threaded core.

The paper flushes the whole predictor at every timer context switch and
sweeps the switch period (4 M / 8 M / 12 M cycles at 2 GHz).  The headline
observation is Observation 1: on a single-threaded core the loss is under 1%
on average, because each scheduling window is long enough to re-warm the
predictor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cpu.config import fpga_prototype
from ..workloads.pairs import SINGLE_THREAD_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor
from .runner import overhead_figure_single_thread, plan_overhead_single_thread
from .scaling import ExperimentScale, default_scale

__all__ = ["run", "plan", "FLUSH_INTERVALS"]

#: Flush periods swept by the paper, in real cycles.
FLUSH_INTERVALS = {"flush-4M": 4_000_000, "flush-8M": 8_000_000,
                   "flush-12M": 12_000_000}


def _setup(scale, pairs):
    scale = scale or default_scale()
    pairs = list(pairs) if pairs is not None else list(SINGLE_THREAD_PAIRS)
    mechanisms: List = [(label, "complete_flush", interval)
                        for label, interval in FLUSH_INTERVALS.items()]
    return scale, pairs, mechanisms


def plan(scale: Optional[ExperimentScale] = None,
         pairs: Optional[Sequence[BenchmarkPair]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Figure 1 needs (same knobs as ``run``)."""
    scale, pairs, mechanisms = _setup(scale, pairs)
    return plan_overhead_single_thread(mechanisms, pairs, fpga_prototype(),
                                       scale)


def run(scale: Optional[ExperimentScale] = None,
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 1.

    Args:
        scale: experiment scale (default honours ``REPRO_SCALE``).
        pairs: subset of the Table 3 single-thread pairs (all 12 by default).
        executor: sweep executor (the shared default when omitted; the merge
            step of the sharded pipeline passes a replay-only executor).

    Returns:
        An :class:`repro.experiments.base.ExperimentResult` whose figure holds
        one overhead series per flush period.
    """
    scale, pairs, mechanisms = _setup(scale, pairs)
    figure, _ = overhead_figure_single_thread(
        "Figure 1", "Complete Flush overhead on a single-threaded core",
        mechanisms, pairs, config=fpga_prototype(), scale=scale,
        executor=executor)
    averages = figure.averages()
    rows = [[label, f"{100 * value:+.2f}%"] for label, value in averages.items()]
    return ExperimentResult(
        name="Figure 1",
        description="Performance overhead of flushing the branch predictor on a "
                    "single-threaded core, by flush period",
        headers=["flush period", "average overhead"],
        rows=rows,
        figure=figure,
        paper_claim="average performance loss below 1%, shrinking as the flush "
                    "period grows from 4M to 12M cycles",
        notes="Scaled simulation (one simulated cycle = "
              f"{scale.time_scale:.0f} real cycles) inflates absolute "
              "percentages; the per-period ordering is the reproduced shape.")
