"""Figure 8: XOR-PHT and Noisy-XOR-PHT overhead on the single-threaded core.

Only the direction predictor is protected (with word-basis Enhanced-XOR-PHT
content encoding); the BTB is untouched.  The paper reports an average loss
below 1.1%, decreasing with the context-switch period, with case1
(gcc+calculix — high static-branch ratios of 12.1% / 8.1%) the costliest and
case7 (gromacs+GemsFDTD, whose training scratches each other anyway) barely
affected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cpu.config import fpga_prototype
from ..workloads.pairs import SINGLE_THREAD_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .executor import CaseSpec, SweepExecutor
from .fig7_xor_btb import setup_interval_sweep
from .runner import overhead_figure_single_thread, plan_overhead_single_thread
from .scaling import ExperimentScale

__all__ = ["run", "plan"]

_PRESETS = [("XOR-PHT", "xor_pht"), ("Noisy-XOR-PHT", "noisy_xor_pht")]


def plan(scale: Optional[ExperimentScale] = None,
         pairs: Optional[Sequence[BenchmarkPair]] = None,
         intervals: Optional[Sequence[str]] = None) -> List[CaseSpec]:
    """Enumerate every simulation case Figure 8 needs (same knobs as ``run``)."""
    scale, pairs, mechanisms = setup_interval_sweep(scale, pairs, intervals, _PRESETS)
    return plan_overhead_single_thread(mechanisms, pairs, fpga_prototype(),
                                       scale)


def run(scale: Optional[ExperimentScale] = None,
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        intervals: Optional[Sequence[str]] = None,
        executor: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Reproduce Figure 8 (same knobs as Figure 7)."""
    scale, pairs, mechanisms = setup_interval_sweep(scale, pairs, intervals, _PRESETS)
    figure, _ = overhead_figure_single_thread(
        "Figure 8", "XOR-PHT / Noisy-XOR-PHT overhead on the single-threaded core",
        mechanisms, pairs, config=fpga_prototype(), scale=scale,
        executor=executor)
    rows = [[label, f"{100 * value:+.2f}%"] for label, value in figure.averages().items()]
    return ExperimentResult(
        name="Figure 8",
        description="Performance overhead of XOR-PHT and Noisy-XOR-PHT",
        headers=["configuration", "average overhead"],
        rows=rows,
        figure=figure,
        paper_claim="average overhead below 1.1%, decreasing with longer switch "
                    "intervals; case1 (gcc+calculix) is the costliest case",
        notes="Scaled simulation inflates absolute percentages; the per-case "
              "ordering (case1 worst) and the interval trend are the "
              "reproduced shapes.")
