"""Figure 8: XOR-PHT and Noisy-XOR-PHT overhead on the single-threaded core.

Only the direction predictor is protected (with word-basis Enhanced-XOR-PHT
content encoding); the BTB is untouched.  The paper reports an average loss
below 1.1%, decreasing with the context-switch period, with case1
(gcc+calculix — high static-branch ratios of 12.1% / 8.1%) the costliest and
case7 (gromacs+GemsFDTD, whose training scratches each other anyway) barely
affected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cpu.config import fpga_prototype
from ..workloads.pairs import SINGLE_THREAD_PAIRS, BenchmarkPair
from .base import ExperimentResult
from .fig7_xor_btb import SWITCH_INTERVALS
from .runner import overhead_figure_single_thread
from .scaling import ExperimentScale, default_scale

__all__ = ["run"]


def run(scale: Optional[ExperimentScale] = None,
        pairs: Optional[Sequence[BenchmarkPair]] = None,
        intervals: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Reproduce Figure 8 (same knobs as Figure 7)."""
    scale = scale or default_scale()
    pairs = list(pairs) if pairs is not None else list(SINGLE_THREAD_PAIRS)
    labels = list(intervals) if intervals is not None else list(SWITCH_INTERVALS)
    mechanisms: List = []
    for label in labels:
        cycles = SWITCH_INTERVALS[label]
        mechanisms.append((f"XOR-PHT-{label}", "xor_pht", cycles))
        mechanisms.append((f"Noisy-XOR-PHT-{label}", "noisy_xor_pht", cycles))
    figure, _ = overhead_figure_single_thread(
        "Figure 8", "XOR-PHT / Noisy-XOR-PHT overhead on the single-threaded core",
        mechanisms, pairs, config=fpga_prototype(), scale=scale)
    rows = [[label, f"{100 * value:+.2f}%"] for label, value in figure.averages().items()]
    return ExperimentResult(
        name="Figure 8",
        description="Performance overhead of XOR-PHT and Noisy-XOR-PHT",
        headers=["configuration", "average overhead"],
        rows=rows,
        figure=figure,
        paper_claim="average overhead below 1.1%, decreasing with longer switch "
                    "intervals; case1 (gcc+calculix) is the costliest case",
        notes="Scaled simulation inflates absolute percentages; the per-case "
              "ordering (case1 worst) and the interval trend are the "
              "reproduced shapes.")
