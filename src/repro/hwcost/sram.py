"""SRAM macro area and access-time model."""

from __future__ import annotations

import math

from .gates import TSMC28_LIKE, TechnologyParameters

__all__ = ["sram_area_um2", "sram_access_ps"]


def sram_area_um2(total_bits: int,
                  tech: TechnologyParameters = TSMC28_LIKE) -> float:
    """Area of an SRAM macro storing ``total_bits`` bits.

    The effective per-bit constant already folds in the array periphery, so
    the model is linear in capacity — adequate for the *relative* overheads
    Table 5 reports.
    """
    if total_bits < 0:
        raise ValueError("total_bits must be non-negative")
    return total_bits * tech.sram_bit_area_um2


def sram_access_ps(rows: int, tech: TechnologyParameters = TSMC28_LIKE) -> float:
    """Access time of an SRAM macro with ``rows`` rows.

    Wordline/bitline delay grows roughly logarithmically with the row count
    for the macro sizes branch predictors use.
    """
    if rows < 1:
        raise ValueError("rows must be positive")
    extra_doublings = max(0.0, math.log2(rows) - 7)  # relative to a 128-row macro
    return tech.sram_base_access_ps + tech.sram_access_per_log2_row_ps * extra_doublings
