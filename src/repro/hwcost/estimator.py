"""Analytic area/timing overhead estimator for Noisy-XOR-BP (Table 5).

Two structures are costed, matching the rows of Table 5:

* a set-associative **BTB** (2-way, 128/256/512 entries per way) augmented
  with content encoding of tag and target plus index encoding;
* a **TAGE PHT** (six tagged tables of 1K/2K/4K entries) augmented the same
  way.

The added hardware per structure is: the XOR stages on the read/write data
paths (most of which fold into existing compare/decode logic — the residual
unhidden delay is a couple of picoseconds), and the key-distribution network
whose delay grows with the physical size of the array (which is why the
relative timing overhead *increases* with BTB size in Table 5 while the
relative area overhead *decreases*).  Per-thread key registers are shared by
every predictor structure in the core, so they are not charged to an
individual table — consistent with the paper comparing "with original BTB
and PHT".
"""

from __future__ import annotations

from dataclasses import dataclass

from .gates import TSMC28_LIKE, TechnologyParameters
from .sram import sram_access_ps, sram_area_um2

__all__ = ["CostEstimate", "btb_cost", "tage_pht_cost"]


@dataclass
class CostEstimate:
    """Overhead of adding Noisy-XOR protection to one structure.

    Attributes:
        structure: description of the structure costed.
        base_area_um2: area of the unprotected structure.
        added_area_um2: area added by the protection logic.
        base_delay_ps: critical-path delay of the unprotected structure.
        added_delay_ps: delay added by the protection logic.
    """

    structure: str
    base_area_um2: float
    added_area_um2: float
    base_delay_ps: float
    added_delay_ps: float

    @property
    def area_overhead(self) -> float:
        """Relative area overhead (fraction)."""
        if self.base_area_um2 == 0:
            return 0.0
        return self.added_area_um2 / self.base_area_um2

    @property
    def timing_overhead(self) -> float:
        """Relative critical-path overhead (fraction)."""
        if self.base_delay_ps == 0:
            return 0.0
        return self.added_delay_ps / self.base_delay_ps


def btb_cost(entries_per_way: int, n_ways: int = 2, *, tag_bits: int = 16,
             target_bits: int = 32, branch_type_bits: int = 3,
             tech: TechnologyParameters = TSMC28_LIKE) -> CostEstimate:
    """Cost of Noisy-XOR-BTB relative to the unprotected BTB.

    Args:
        entries_per_way: rows per way (Table 5 uses 128 / 256 / 512).
        n_ways: associativity (Table 5 uses 2).
        tag_bits: stored partial-tag width.
        target_bits: stored target width.
        branch_type_bits: stored branch-type field width.
        tech: technology constants.
    """
    entry_bits = 1 + branch_type_bits + tag_bits + target_bits
    total_entries = entries_per_way * n_ways
    total_bits = total_entries * entry_bits

    base_area = sram_area_um2(total_bits, tech)
    # Synthesis reports timing against the clock period of the design; the
    # SRAM path itself fits comfortably within it.
    base_delay = max(tech.cycle_time_ps,
                     sram_access_ps(entries_per_way, tech)
                     + tag_bits * tech.compare_per_bit_ps)

    # Added logic: the target-address XOR bank (the tag XOR folds into the
    # existing XNOR comparator and the index XOR into the decoder's input
    # stage) plus the key-distribution network, whose buffers grow with the
    # physical array size.
    added_area = (target_bits * tech.xor2_area_um2
                  + tech.key_buffer_area_per_entry_um2 * total_entries)
    added_delay = (tech.xor_hidden_path_ps
                   + tech.key_distribution_ps_per_entry * total_entries)

    return CostEstimate(
        structure=f"BTB {n_ways}w{entries_per_way}",
        base_area_um2=base_area, added_area_um2=added_area,
        base_delay_ps=base_delay, added_delay_ps=added_delay)


def tage_pht_cost(entries_per_table: int, n_tables: int = 6, *,
                  entry_bits: int = 16, index_bits: int = None,
                  tech: TechnologyParameters = TSMC28_LIKE) -> CostEstimate:
    """Cost of Noisy-XOR protection on a TAGE predictor's tagged tables.

    Args:
        entries_per_table: rows per tagged table (Table 5 uses 1K / 2K / 4K).
        n_tables: number of tagged tables (the FPGA TAGE uses six).
        entry_bits: bits per tagged entry (tag + counter + useful).
        index_bits: index width; derived from the row count when omitted.
        tech: technology constants.
    """
    if index_bits is None:
        index_bits = max(1, entries_per_table.bit_length() - 1)
    total_bits = entries_per_table * entry_bits * n_tables

    base_area = sram_area_um2(total_bits, tech)
    base_delay = max(tech.cycle_time_ps,
                     sram_access_ps(entries_per_table, tech)
                     + entry_bits * tech.compare_per_bit_ps)

    # Added logic per table: entry-wide XOR on the read path plus the index
    # XOR (the write-path XOR shares the same gates across the banked
    # tables); the key-distribution delay is per table macro, so unlike the
    # BTB it does not grow with the total predictor size.
    added_xor_gates = n_tables * (2 * entry_bits + index_bits) // 2
    added_area = added_xor_gates * tech.xor2_area_um2
    added_delay = (tech.xor_hidden_path_ps
                   + 0.08 * n_tables * entry_bits)

    return CostEstimate(
        structure=f"TAGE {n_tables}x{entries_per_table}",
        base_area_um2=base_area, added_area_um2=added_area,
        base_delay_ps=base_delay, added_delay_ps=added_delay)
