"""Analytic hardware cost model for Noisy-XOR-BP (Table 5, plus energy)."""

from .energy import EnergyEstimate, btb_energy, pht_energy
from .estimator import CostEstimate, btb_cost, tage_pht_cost
from .gates import TSMC28_LIKE, TechnologyParameters
from .sram import sram_access_ps, sram_area_um2

__all__ = [
    "CostEstimate",
    "btb_cost",
    "tage_pht_cost",
    "EnergyEstimate",
    "btb_energy",
    "pht_energy",
    "TechnologyParameters",
    "TSMC28_LIKE",
    "sram_access_ps",
    "sram_area_um2",
]
