"""Gate-level technology constants (28 nm class).

The paper's Table 5 comes from synthesising the RTL of Noisy-XOR-BP with a
TSMC 28 nm library.  Synthesis is replaced here by an analytic model built on
a handful of technology constants; they are calibrated so that the reference
configurations land in the ballpark of Table 5, and the *trends* (timing
overhead growing with BTB size, area overhead shrinking as tables grow,
everything well under a few percent) follow from the model structure rather
than from the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParameters", "TSMC28_LIKE"]


@dataclass(frozen=True)
class TechnologyParameters:
    """Analytic technology constants.

    Attributes:
        xor2_area_um2: area of a 2-input XOR gate.
        xor2_delay_ps: propagation delay of a 2-input XOR gate.
        flop_area_um2: area of a scan flip-flop (key registers).
        sram_bit_area_um2: effective SRAM bit area including array periphery
            (decoders, sense amplifiers, redundancy).
        sram_base_access_ps: access time of a small (≤128-row) SRAM macro.
        sram_access_per_log2_row_ps: access-time growth per doubling of rows.
        compare_per_bit_ps: tag comparator delay contribution per bit (log-ish
            trees make this small).
        key_distribution_ps_per_entry: wire/buffer delay of distributing the
            key across the array, per entry (the component that makes the
            relative timing overhead grow with BTB size in Table 5).
        key_buffer_area_per_entry_um2: buffer/repeater area of the key
            distribution network, per entry.
        xor_hidden_path_ps: residual XOR delay that cannot be hidden behind
            the comparator/decoder (most of the XOR folds into existing
            XNOR-compare and decode logic).
        cycle_time_ps: target cycle time of the synthesised design (2 GHz);
            synthesis timing overheads are reported against the clock period.
    """

    xor2_area_um2: float = 0.45
    xor2_delay_ps: float = 14.0
    flop_area_um2: float = 2.1
    sram_bit_area_um2: float = 0.45
    sram_base_access_ps: float = 160.0
    sram_access_per_log2_row_ps: float = 28.0
    compare_per_bit_ps: float = 2.2
    key_distribution_ps_per_entry: float = 0.005
    key_buffer_area_per_entry_um2: float = 0.012
    xor_hidden_path_ps: float = 2.2
    cycle_time_ps: float = 500.0


#: Default 28 nm-class constants used by Table 5.
TSMC28_LIKE = TechnologyParameters()
