"""Per-access energy overhead of the Noisy-XOR-BP additions.

Table 5 of the paper covers area and timing; reviewers of such designs also
routinely ask about energy.  This module extends the same cost model with a
first-order dynamic-energy estimate: the XOR gates toggled per access and the
key-register read are compared against the energy of the SRAM array access
they accompany.  Like the rest of :mod:`repro.hwcost` it models a 28 nm-class
technology; the meaningful output is the *relative* overhead, which stays a
small fraction of the array access energy for every configuration in Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyEstimate", "btb_energy", "pht_energy"]

#: Dynamic energy of toggling one minimum-size XOR gate, in femtojoules.
_XOR_ENERGY_FJ = 0.1
#: Dynamic energy of reading one bit of a small register file, in femtojoules.
_REGISTER_READ_ENERGY_FJ = 0.05
#: Dynamic read energy per SRAM bit accessed, in femtojoules.  Bitline and
#: sense-amplifier capacitance dominate, so the per-bit figure is an order of
#: magnitude above a logic-gate toggle.
_SRAM_READ_ENERGY_FJ_PER_BIT = 1.5
#: Fixed per-array-access energy (address decoder, wordline drive), in
#: femtojoules.
_SRAM_ACCESS_FIXED_FJ = 25.0
#: Fraction of accessed bits that actually toggle downstream logic.
_ACTIVITY_FACTOR = 0.5


@dataclass(frozen=True)
class EnergyEstimate:
    """Per-access energy of a protected structure versus its baseline.

    Attributes:
        structure: human-readable structure label.
        baseline_fj: per-access energy of the unprotected structure (fJ).
        added_fj: extra energy per access due to content/index encoding (fJ).
    """

    structure: str
    baseline_fj: float
    added_fj: float

    @property
    def total_fj(self) -> float:
        """Per-access energy of the protected structure."""
        return self.baseline_fj + self.added_fj

    @property
    def energy_overhead(self) -> float:
        """Relative per-access energy overhead (``added / baseline``)."""
        if self.baseline_fj <= 0:
            return 0.0
        return self.added_fj / self.baseline_fj


def _encoding_energy_fj(encoded_bits: int, index_bits: int, key_bits: int) -> float:
    """Energy of the XOR network plus key-register reads for one access."""
    if encoded_bits < 0 or index_bits < 0 or key_bits < 0:
        raise ValueError("bit counts must be non-negative")
    xor_energy = (encoded_bits + index_bits) * _XOR_ENERGY_FJ * _ACTIVITY_FACTOR
    key_energy = key_bits * _REGISTER_READ_ENERGY_FJ
    return xor_energy + key_energy


def btb_energy(entries_per_way: int, n_ways: int = 2, *, tag_bits: int = 16,
               target_bits: int = 32) -> EnergyEstimate:
    """Per-access energy overhead of Noisy-XOR-BTB.

    Args:
        entries_per_way: BTB entries per way.
        n_ways: associativity (all ways are read on a lookup).
        tag_bits: tag width per entry.
        target_bits: stored target-address width per entry.
    """
    if entries_per_way < 1 or n_ways < 1:
        raise ValueError("BTB geometry must be positive")
    entry_bits = tag_bits + target_bits
    baseline = n_ways * (entry_bits * _SRAM_READ_ENERGY_FJ_PER_BIT
                         + _SRAM_ACCESS_FIXED_FJ)
    index_bits = max(1, entries_per_way.bit_length() - 1)
    added = _encoding_energy_fj(encoded_bits=n_ways * entry_bits,
                                index_bits=index_bits,
                                key_bits=entry_bits + index_bits)
    return EnergyEstimate(structure=f"BTB {n_ways}w{entries_per_way}",
                          baseline_fj=baseline, added_fj=added)


def pht_energy(entries_per_table: int, n_tables: int = 6, *,
               word_bits: int = 32) -> EnergyEstimate:
    """Per-access energy overhead of Noisy-XOR on a TAGE-style PHT.

    Args:
        entries_per_table: entries per tagged table.
        n_tables: tables read per prediction.
        word_bits: physical word width used for Enhanced-XOR encoding.
    """
    if entries_per_table < 1 or n_tables < 1:
        raise ValueError("PHT geometry must be positive")
    baseline = n_tables * (word_bits * _SRAM_READ_ENERGY_FJ_PER_BIT
                           + _SRAM_ACCESS_FIXED_FJ)
    index_bits = max(1, entries_per_table.bit_length() - 1)
    added = _encoding_energy_fj(encoded_bits=n_tables * word_bits,
                                index_bits=n_tables * index_bits,
                                key_bits=word_bits + index_bits)
    return EnergyEstimate(structure=f"TAGE PHT {entries_per_table}x{n_tables}",
                          baseline_fj=baseline, added_fj=added)
