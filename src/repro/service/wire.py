"""Wire schemas for the simulation service.

One strict parsing layer between HTTP bodies and the planning machinery.
Every field of a job submission is validated by the *same* named-source
parsers the CLI flags use (``parse_scale_factor``, ``parse_repetitions``,
``parse_backend``), so a malformed submission fails with the exact error a
malformed flag would — attributed to the offending field, at submission
time, never deep inside a worker.  Unknown fields are rejected outright:
the wire format is a contract, and a typo'd ``"repetitons"`` silently
running one repetition would be the service-shaped version of the silent
``REPRO_SCALE`` fallback the parsers exist to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["JOB_SCHEMA", "JobRequest", "parse_job_request", "parse_port"]

#: Wire schema revision of job submissions and job documents.
JOB_SCHEMA = 1

#: Fields a ``POST /v1/jobs`` body may carry.
_REQUEST_FIELDS = ("experiments", "bench_sets", "scale", "repetitions",
                   "backend")


@dataclass(frozen=True)
class JobRequest:
    """One validated manifest submission.

    Attributes:
        experiments: experiment keys to plan (``None`` + no bench sets plans
            the full registry, exactly like ``repro run all``).
        bench_sets: benchmark-set selectors planned as ``bench:<selector>``
            experiments alongside ``experiments``.
        scale: trace-length scale *factor* applied on top of the server's
            base scale (``None`` runs at the server's ``REPRO_SCALE``), so a
            served job and a serial ``repro run all --scale F`` plan the
            same manifest hash.
        repetitions: seed repetitions per planned case.
        backend: requested execution backend.  Backends are bit-identical by
            contract (results, cache keys and store digests never depend on
            them), so the scheduler only accepts its own active backend —
            the field exists to let a client *assert* what it expects.
    """

    experiments: Optional[List[str]] = None
    bench_sets: Optional[List[str]] = None
    scale: Optional[float] = None
    repetitions: int = 1
    backend: Optional[str] = None

    def manifest_keys(self) -> Optional[List[str]]:
        """Combine experiments and bench sets into manifest keys.

        Mirrors the CLI's ``--experiments``/``--bench-set`` combination:
        ``None`` (plan everything) only when neither field was given.
        """
        if self.experiments is None and self.bench_sets is None:
            return None
        keys = list(self.experiments or [])
        keys.extend(f"bench:{selector}" for selector in self.bench_sets or [])
        return keys

    def to_wire(self) -> dict:
        """The submission as a JSON-ready body (``None`` fields omitted)."""
        body = {"experiments": self.experiments,
                "bench_sets": self.bench_sets,
                "scale": self.scale,
                "backend": self.backend}
        body = {name: value for name, value in body.items()
                if value is not None}
        if self.repetitions != 1:
            body["repetitions"] = self.repetitions
        return body


def _parse_name_list(raw, field: str, *, source: str) -> List[str]:
    if not isinstance(raw, list) or not raw \
            or not all(isinstance(item, str) and item.strip()
                       for item in raw):
        raise ValueError(
            f"{source}: {field!r} must be a non-empty list of names, "
            f"got {raw!r}")
    return [item.strip() for item in raw]


def parse_job_request(payload, *, source: str = "job request") -> JobRequest:
    """Validate one ``POST /v1/jobs`` body into a :class:`JobRequest`.

    Raises:
        ValueError: non-object body, unknown fields, or any field value the
            corresponding CLI parser would reject — always naming the field.
    """
    from ..engine import parse_backend
    from ..experiments.manifest import parse_repetitions
    from ..experiments.scaling import parse_scale_factor

    if not isinstance(payload, dict):
        raise ValueError(
            f"{source}: body must be a JSON object, got "
            f"{type(payload).__name__}")
    unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
    if unknown:
        raise ValueError(
            f"{source}: unknown field(s) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(_REQUEST_FIELDS)})")
    fields = {}
    if payload.get("experiments") is not None:
        fields["experiments"] = _parse_name_list(
            payload["experiments"], "experiments", source=source)
    if payload.get("bench_sets") is not None:
        fields["bench_sets"] = _parse_name_list(
            payload["bench_sets"], "bench_sets", source=source)
    if payload.get("scale") is not None:
        fields["scale"] = parse_scale_factor(
            payload["scale"], source=f"{source} field 'scale'")
    if payload.get("repetitions") is not None:
        fields["repetitions"] = parse_repetitions(
            payload["repetitions"], source=f"{source} field 'repetitions'")
    if payload.get("backend") is not None:
        raw = payload["backend"]
        if not isinstance(raw, str):
            raise ValueError(
                f"{source} field 'backend' must be a string, got {raw!r}")
        fields["backend"] = parse_backend(
            raw, source=f"{source} field 'backend'")
    return JobRequest(**fields)


def parse_port(raw, *, source: str = "REPRO_SERVE_PORT") -> int:
    """Parse a TCP port, naming the offending setting.

    ``0`` is valid — the OS picks a free port (the test harness relies on
    it) and the serve banner reports the bound one.
    """
    try:
        port = int(raw)
        if port != float(raw):  # int() would silently truncate 1.5
            raise ValueError
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be an integer port, got {raw!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(
            f"{source} must be in [0, 65535], got {port}")
    return port
