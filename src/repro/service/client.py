"""Thin ``urllib`` client of the simulation service.

``repro submit|watch|fetch`` run through this class, so the CLI is a client
of exactly the HTTP API any other consumer sees — no private side channel.
Errors surface as :class:`ServiceError` carrying the server's named
``{"error": ...}`` message (a validation rejection reads identically to the
same mistake on a local CLI flag) or the connection failure.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A failed service interaction (HTTP error or unreachable server)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks to one ``repro serve`` endpoint.

    Args:
        base_url: service root, e.g. ``http://127.0.0.1:8378``.
        timeout: per-socket-operation timeout in seconds.  The watch stream
            stays under it through the server's heartbeat events.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport --------------------------------------------------------------
    def _open(self, path: str, payload: Optional[dict] = None):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error")
            except (ValueError, UnicodeDecodeError, AttributeError):
                detail = None
            raise ServiceError(detail or f"{url}: HTTP {exc.code}",
                               status=exc.code) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach the service at {self.base_url} ({exc}); is "
                "'repro serve' running?") from None

    def _json(self, path: str, payload: Optional[dict] = None) -> dict:
        with self._open(path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- API --------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("/v1/health")

    def submit(self, payload: dict) -> dict:
        """Submit one job; returns the job document (``id``, ``state``...)."""
        return self._json("/v1/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._json(f"/v1/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        return self._json("/v1/jobs")["jobs"]

    def watch(self, job_id: str,
              on_event: Optional[Callable[[dict], None]] = None) -> dict:
        """Follow a job's event stream to a terminal state.

        Streams ``/v1/jobs/<id>/events`` (chunked JSONL), invoking
        ``on_event`` for every real event (heartbeats are swallowed), and
        returns the final job document.  If the stream drops mid-job the
        watch resumes from the last seen event index — progress is never
        double-reported.
        """
        index = 0
        while True:
            try:
                with self._open(f"/v1/jobs/{job_id}/events?from={index}") \
                        as response:
                    for line in response:
                        event = json.loads(line.decode("utf-8"))
                        if event.get("event") == "pending":
                            continue
                        index += 1
                        if on_event is not None:
                            on_event(event)
            except (OSError, ValueError):
                # Torn stream (server restart, proxy hiccup): fall back to
                # the job document; resume streaming if it is still running.
                pass
            document = self.job(job_id)
            if document["state"] in ("done", "failed"):
                return document

    def fetch(self, job_id: str, out_dir: str) -> List[str]:
        """Download every output file of a finished job into ``out_dir``.

        Returns the written paths.  The files are the exact bytes a serial
        ``repro run all --out`` writes, so ``diff -r`` against one passes.
        """
        listing = self._json(f"/v1/jobs/{job_id}/files")
        os.makedirs(out_dir, exist_ok=True)
        written: List[str] = []
        for name in listing["files"]:
            with self._open(f"/v1/jobs/{job_id}/files/{name}") as response:
                body = response.read()
            path = os.path.join(out_dir, name)
            with open(path, "wb") as handle:
                handle.write(body)
            written.append(path)
        return written

    def stats_line(self, document: Dict) -> str:
        """The job's statistics in the CLI's assertable format.

        Matches :func:`repro.cli._stats_line` byte for byte, so the CI grep
        that certifies 100% store hit rates works identically on a served
        run and a local one.
        """
        stats = document.get("stats", {})
        return (f"cases: {stats.get('unique', 0)} unique, "
                f"{stats.get('simulated', 0)} simulated, "
                f"{stats.get('store_hits', 0)} store hit(s)")
