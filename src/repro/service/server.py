"""The HTTP face of the simulation service (stdlib ``http.server`` only).

``repro serve`` binds a :class:`SimulationService`: a
``ThreadingHTTPServer`` front-end over the :class:`~repro.service.scheduler.
JobScheduler` worker pool and one shared result store.  The API surface:

====== =============================== =====================================
Method Path                            Meaning
====== =============================== =====================================
POST   ``/v1/jobs``                    submit a manifest (JSON body)
GET    ``/v1/jobs``                    list every job document
GET    ``/v1/jobs/<id>``               one job document (poll this)
GET    ``/v1/jobs/<id>/events``        chunked JSONL event stream
GET    ``/v1/jobs/<id>/files``         list finished output files
GET    ``/v1/jobs/<id>/files/<name>``  one output file (figure JSON/text)
GET    ``/v1/jobs/<id>/report``        self-contained HTML report of the job
GET    ``/v1/store/export``            store export (``?manifest=H`` scopes)
GET    ``/v1/health``                  liveness + engine/backend + job counts
====== =============================== =====================================

Every error body is ``{"error": "<named message>"}`` — validation failures
carry the same field-attributed messages the CLI parsers print, with status
400; unknown paths/jobs 404; handler crashes 500.  The event stream uses
HTTP/1.1 chunked transfer encoding with one JSON object per line and an
``{"event": "pending"}`` heartbeat while the job makes no progress, so a
client's socket timeout never trips on a long simulation.
"""

from __future__ import annotations

import json
import logging
import os
import re
import tempfile
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from ..experiments.executor import ENGINE_VERSION
from .scheduler import JobScheduler

__all__ = ["DEFAULT_PORT", "SimulationService"]

logger = logging.getLogger(__name__)

#: Default TCP port of ``repro serve`` (and the client's default URL).
DEFAULT_PORT = 8378

#: Served output files are the flat ``write_outputs`` names
#: (``<experiment>.json``/``.txt``, ``summary.json``); anything else —
#: separators, dots-only names, traversal — is rejected before it reaches
#: the filesystem.
_FILE_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._+:-]*")


class _ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Bound by :class:`SimulationService` after construction.
    service: "Optional[SimulationService]" = None


class SimulationService:
    """One bound server socket + scheduler pool, ready to start.

    Args:
        store: shared :class:`~repro.experiments.store.ResultStore`.
        data_dir: per-job output root.
        host: bind address.
        port: bind port (``0`` lets the OS choose; read :attr:`port` after).
        jobs: executor width per job.
        workers: concurrent job worker threads.
        registry: alternative experiment registry (tests).
    """

    def __init__(self, store, data_dir: str, *, host: str = "127.0.0.1",
                 port: int = 0, jobs: int = 1, workers: int = 1,
                 registry=None) -> None:
        self.scheduler = JobScheduler(store, data_dir, jobs=jobs,
                                      workers=workers, registry=registry)
        self._httpd = _ServiceServer((host, port), _Handler)
        self._httpd.service = self
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve in a background thread (the test-harness mode)."""
        self.scheduler.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve-http", daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI mode)."""
        self.scheduler.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self.scheduler.stop()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- plumbing ---------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _route(self) -> Tuple[str, dict]:
        parsed = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(parsed.query)
        return parsed.path.rstrip("/") or "/", query

    # -- dispatch ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        path, query = self._route()
        try:
            if path == "/v1/health":
                return self._get_health()
            if path == "/v1/jobs":
                return self._get_jobs()
            match = re.fullmatch(r"/v1/jobs/([^/]+)", path)
            if match:
                return self._get_job(match.group(1))
            match = re.fullmatch(r"/v1/jobs/([^/]+)/events", path)
            if match:
                return self._get_events(match.group(1), query)
            match = re.fullmatch(r"/v1/jobs/([^/]+)/files", path)
            if match:
                return self._get_files(match.group(1))
            match = re.fullmatch(r"/v1/jobs/([^/]+)/files/([^/]+)", path)
            if match:
                return self._get_file(match.group(1), match.group(2))
            match = re.fullmatch(r"/v1/jobs/([^/]+)/report", path)
            if match:
                return self._get_report(match.group(1))
            if path == "/v1/store/export":
                return self._get_store_export(query)
            self._send_error(404, f"unknown path {path!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — one request must not kill the server
            logger.exception("GET %s failed", path)
            try:
                self._send_error(500, f"{type(exc).__name__}: {exc}")
            except OSError:
                pass

    def do_POST(self) -> None:  # noqa: N802 — http.server contract
        path, _query = self._route()
        try:
            if path == "/v1/jobs":
                return self._post_job()
            self._send_error(404, f"unknown path {path!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001
            logger.exception("POST %s failed", path)
            try:
                self._send_error(500, f"{type(exc).__name__}: {exc}")
            except OSError:
                pass

    # -- endpoints --------------------------------------------------------------
    def _get_health(self) -> None:
        from ..engine import env_backend

        self._send_json(200, {
            "status": "ok",
            "engine": ENGINE_VERSION,
            "backend": env_backend(),
            "jobs": self.service.scheduler.queue.counts(),
        })

    def _post_job(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return self._send_error(400, "malformed Content-Length")
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            return self._send_error(400, "job request: body is not valid "
                                         "JSON")
        try:
            job = self.service.scheduler.submit(payload)
        except ValueError as exc:
            return self._send_error(400, str(exc))
        self._send_json(202, job.to_wire())

    def _get_jobs(self) -> None:
        self._send_json(200, {
            "jobs": [job.to_wire()
                     for job in self.service.scheduler.queue.jobs()]})

    def _job_or_404(self, job_id: str):
        job = self.service.scheduler.queue.get(job_id)
        if job is None:
            self._send_error(404, f"unknown job {job_id!r}")
        return job

    def _get_job(self, job_id: str) -> None:
        job = self._job_or_404(job_id)
        if job is not None:
            self._send_json(200, job.to_wire())

    def _get_events(self, job_id: str, query: dict) -> None:
        job = self._job_or_404(job_id)
        if job is None:
            return
        try:
            index = int(query.get("from", ["0"])[0])
        except ValueError:
            return self._send_error(400, "events 'from' must be an integer")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            while True:
                events = job.wait_events(index, timeout=10.0)
                if events:
                    index += len(events)
                    for event in events:
                        self._write_chunk(event)
                    continue
                if job.is_terminal():
                    break
                self._write_chunk({"event": "pending", "job": job.id,
                                   "state": job.state})
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            return  # client stopped watching; the job carries on

    def _write_chunk(self, event: dict) -> None:
        data = json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _get_files(self, job_id: str) -> None:
        job = self._job_or_404(job_id)
        if job is None:
            return
        if job.state != "done":
            return self._send_error(
                409, f"job {job_id} is {job.state}; files are served once "
                     "it is done")
        self._send_json(200, {"job": job.id, "files": job.files()})

    def _get_file(self, job_id: str, name: str) -> None:
        job = self._job_or_404(job_id)
        if job is None:
            return
        if not _FILE_RE.fullmatch(name) or ".." in name:
            return self._send_error(400, f"malformed file name {name!r}")
        path = os.path.join(job.files_dir, name)
        if os.path.realpath(path) != os.path.join(
                os.path.realpath(job.files_dir), name):
            return self._send_error(400, f"malformed file name {name!r}")
        try:
            with open(path, "rb") as handle:
                body = handle.read()
        except FileNotFoundError:
            return self._send_error(404, f"job {job_id} has no file {name!r}")
        content_type = ("application/json" if name.endswith(".json")
                        else "text/plain; charset=utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _get_report(self, job_id: str) -> None:
        """The job's figures/tables as one self-contained HTML report.

        Rebuilt from the finished job's output files (the same
        ``write_outputs`` artifacts ``/files`` serves), so the report shows
        exactly what the client can fetch — with the job's manifest hash and
        executor statistics as provenance.
        """
        from ..analysis.export import load_result_json
        from ..analysis.htmlreport import build_html_report

        job = self._job_or_404(job_id)
        if job is None:
            return
        if job.state != "done":
            return self._send_error(
                409, f"job {job_id} is {job.state}; the report is served "
                     "once it is done")
        results = {}
        for key in job.manifest.keys:
            path = os.path.join(job.files_dir, f"{key}.json")
            try:
                results[key] = load_result_json(path)
            except (OSError, ValueError, KeyError):
                continue  # a missing/foreign file drops out of the report
        stats = job.stats
        stats_line = (f"cases: {stats['unique']} unique, "
                      f"{stats['simulated']} simulated, "
                      f"{stats['store_hits']} store hit(s)")
        provenance = {
            "Engine": ENGINE_VERSION,
            "Manifest": job.manifest_hash,
            "Job": job.id,
            "Experiments": ", ".join(job.manifest.keys),
            "Repetitions": str(job.manifest.repetitions),
            "Executor": stats_line,
        }
        body = build_html_report(results, provenance).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _get_store_export(self, query: dict) -> None:
        manifests: List[str] = query.get("manifest", [])
        store = self.service.scheduler.store
        handle = tempfile.NamedTemporaryFile(
            mode="rb", suffix=".json", prefix="repro-export-", delete=False)
        handle.close()
        try:
            try:
                store.export(handle.name, manifest_hashes=manifests or None)
            except ValueError as exc:
                return self._send_error(400, str(exc))
            with open(handle.name, "rb") as reader:
                body = reader.read()
        finally:
            try:
                os.remove(handle.name)
            except OSError:
                pass
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
