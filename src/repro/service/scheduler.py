"""The worker pool that turns queued jobs into served results.

Each worker thread drains the :class:`~repro.service.jobs.JobQueue` and runs
one job at a time through the *existing* execution stack — a
:class:`~repro.experiments.executor.SweepExecutor` over a
:class:`~repro.experiments.executor.RunResultCache` whose third level is the
service's shared :class:`~repro.experiments.store.ResultStore` — so every
reliability property of the PR 6 layer (per-case timeout, retries, broken
pool recovery, fault injection) and every dedupe property of the PR 5 store
hold unchanged inside the service.  Each job gets a *fresh* memory cache:
a re-submission's hit rate therefore measures the store, which is what the
warm-resubmission CI assertion (0 simulated, 100% store hits) certifies.

A job can only leave the queue into a terminal state: the worker loop wraps
execution in a ``BaseException`` barrier, so an injected crash — or any real
bug in the machinery around the executor — surfaces as a structured job
failure the client sees, never a silently hung job.
"""

from __future__ import annotations

import os
import threading
from typing import List, Optional

from ..experiments.executor import (
    ExecutionError,
    RunResultCache,
    SweepExecutor,
)
from ..experiments.manifest import build_manifest
from ..experiments.pipeline import run_serial
from ..experiments.scaling import default_scale
from ..testing.faults import FAULT_SPEC_VAR, inject_stage_fault
from .jobs import Job, JobQueue
from .wire import JobRequest, parse_job_request

__all__ = ["JobScheduler"]


class JobScheduler:
    """Validates submissions into jobs and executes them on worker threads.

    Args:
        store: the shared result store every job deduplicates against and
            publishes into.  Mandatory — a store-less service would simulate
            every submission from scratch, which is exactly the architecture
            this daemon exists to replace.
        data_dir: per-job output root (files + journals live under
            ``<data_dir>/<job id>/``).
        jobs: executor width per job (worker *processes* inside one job).
        workers: worker threads (jobs executed concurrently).
        registry: alternative experiment registry (tests submit reduced
            golden-scale experiments through it, exactly like
            ``build_manifest(experiments=...)``).
    """

    def __init__(self, store, data_dir: str, *, jobs: int = 1,
                 workers: int = 1, registry=None) -> None:
        if store is None:
            raise ValueError(
                "the simulation service needs a result store: pass --dir "
                "or set REPRO_STORE_DIR")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.data_dir = data_dir
        self.jobs = jobs
        self.workers = workers
        self.registry = registry
        self.queue = JobQueue()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # -- submission -------------------------------------------------------------
    def submit(self, payload) -> Job:
        """Validate one submission body and enqueue it as a job.

        Raises:
            ValueError: anything :func:`~repro.service.wire.parse_job_request`
                or :func:`~repro.experiments.manifest.build_manifest`
                rejects, plus a backend assertion naming the server's active
                backend — all surfaced to the client as HTTP 400.
        """
        request = payload if isinstance(payload, JobRequest) \
            else parse_job_request(payload)
        self._check_backend(request)
        scale = default_scale()
        if request.scale is not None:
            scale = scale.scaled_by(request.scale)
        manifest = build_manifest(keys=request.manifest_keys(), scale=scale,
                                  experiments=self.registry,
                                  repetitions=request.repetitions)
        job = Job(self.queue.next_id(manifest.manifest_hash()), request,
                  manifest, self.data_dir)
        self.queue.submit(job)
        return job

    def _check_backend(self, request: JobRequest) -> None:
        from ..engine import env_backend

        active = env_backend()
        if request.backend is not None and request.backend != active:
            raise ValueError(
                f"job request field 'backend': this service executes "
                f"backend {active!r} (results are backend-invariant by "
                f"contract); omit the field or request {active!r}")

    # -- worker pool ------------------------------------------------------------
    def start(self) -> None:
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"repro-serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=0.2)
            if job is None:
                continue
            # The BaseException barrier is the no-hung-jobs guarantee: a
            # worker death of any shape (injected crash, KeyboardInterrupt,
            # a bug in assembly) lands the job in a terminal state with the
            # error attached, and the thread survives for the next job.
            try:
                self._run_job(job)
            except ExecutionError as exc:
                job.fail(str(exc),
                         [failure.to_dict() for failure in exc.failures])
            except BaseException as exc:  # noqa: BLE001 — see above
                job.fail(f"{type(exc).__name__}: {exc}")

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        if os.environ.get(FAULT_SPEC_VAR):
            inject_stage_fault(f"service:job:{job.id}")
        # Fresh memory cache per job, shared store underneath: dedupe across
        # jobs (and machines) is the store's, measured by store_hits.
        cache = RunResultCache(directory=False, store=self.store)

        def on_result(key, result) -> None:
            job.add_event("case", key=key)

        executor = SweepExecutor(jobs=self.jobs, cache=cache,
                                 on_result=on_result)
        # run_serial also registers the manifest index in the store on
        # success, which is what scoped gc/export key on.
        run_serial(job.manifest, out_dir=job.files_dir, executor=executor)
        job.finish(simulated=executor.simulated,
                   store_hits=cache.store_hits)
