"""Thread-safe job records and the FIFO queue the scheduler drains.

A :class:`Job` is the unit the service tracks: one validated manifest
submission, its lifecycle state (``queued → running → done|failed``), an
append-only event list (mirrored to a per-job ``journal.jsonl`` via the
executor's ``on_result`` hook), executor statistics, and — on failure — the
same structured :class:`~repro.experiments.executor.CaseFailure` records the
CLI's ``--keep-going`` failure manifests carry.  Every mutation happens
under one condition variable, which is also what the event-streaming
endpoint and ``wait()`` block on: there is no polling loop anywhere inside
the server.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time
from typing import Dict, List, Optional

from .wire import JOB_SCHEMA, JobRequest

__all__ = ["JOB_STATES", "Job", "JobQueue"]

#: Lifecycle states, in order; the last two are terminal.
JOB_STATES = ("queued", "running", "done", "failed")


class Job:
    """One submitted manifest run and everything observable about it."""

    def __init__(self, job_id: str, request: JobRequest, manifest,
                 data_dir: str) -> None:
        self.id = job_id
        self.request = request
        self.manifest = manifest
        self.manifest_hash = manifest.manifest_hash()
        self.unique_cases = len(manifest.unique_cases())
        self.dir = os.path.join(data_dir, job_id)
        #: Directory the finished figures/tables land in (``repro fetch``
        #: serves these; they are written by the same ``write_outputs`` a
        #: serial ``repro run all --out`` uses, hence byte-identical).
        self.files_dir = os.path.join(self.dir, "files")
        self.journal_path = os.path.join(self.dir, "journal.jsonl")
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.state = "queued"
        self.stats: Dict[str, int] = {"unique": self.unique_cases,
                                      "simulated": 0, "store_hits": 0}
        self.failures: List[dict] = []
        self.error: Optional[str] = None
        self.events: List[dict] = []
        self._cond = threading.Condition()
        os.makedirs(self.files_dir, exist_ok=True)
        self.add_event("queued", cases=self.unique_cases,
                       manifest_hash=self.manifest_hash)

    # -- event log --------------------------------------------------------------
    def add_event(self, kind: str, **data) -> None:
        """Append one event, journal it, and wake every waiter."""
        event = {"event": kind, "job": self.id, **data}
        with self._cond:
            self.events.append(event)
            try:
                with open(self.journal_path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(event, sort_keys=True))
                    handle.write("\n")
            except OSError:
                pass  # the journal is a diagnostic mirror, never load-bearing
            self._cond.notify_all()

    def wait_events(self, index: int, timeout: float = 10.0) -> List[dict]:
        """Events from ``index`` on, blocking up to ``timeout`` for new ones.

        Returns an empty list on timeout (the streaming endpoint turns that
        into a heartbeat) and immediately once the job is terminal and the
        caller has drained everything.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self.events) <= index and not self.is_terminal():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return list(self.events[index:])

    # -- lifecycle --------------------------------------------------------------
    def is_terminal(self) -> bool:
        return self.state in ("done", "failed")

    def mark_running(self) -> None:
        with self._cond:
            self.state = "running"
            self.started = time.time()
        self.add_event("running")

    def finish(self, *, simulated: int, store_hits: int) -> None:
        with self._cond:
            self.stats["simulated"] = simulated
            self.stats["store_hits"] = store_hits
            self.state = "done"
            self.finished = time.time()
        self.add_event("done", stats=dict(self.stats))

    def fail(self, error: str, failures: Optional[List[dict]] = None,
             *, simulated: int = 0, store_hits: int = 0) -> None:
        with self._cond:
            self.stats["simulated"] = simulated
            self.stats["store_hits"] = store_hits
            self.error = error
            self.failures = list(failures or [])
            self.state = "failed"
            self.finished = time.time()
        self.add_event("failed", error=error, failures=len(self.failures))

    def wait(self, timeout: float = 60.0) -> bool:
        """Block until the job is terminal; ``True`` when it got there."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self.is_terminal():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def files(self) -> List[str]:
        """Sorted relative names of the job's output files."""
        try:
            return sorted(name for name in os.listdir(self.files_dir)
                          if os.path.isfile(os.path.join(self.files_dir,
                                                         name)))
        except OSError:
            return []

    def to_wire(self) -> dict:
        """The job document ``GET /v1/jobs/<id>`` serves."""
        with self._cond:
            return {
                "schema": JOB_SCHEMA,
                "id": self.id,
                "state": self.state,
                "manifest_hash": self.manifest_hash,
                "request": self.request.to_wire(),
                "repetitions": self.request.repetitions,
                "stats": dict(self.stats),
                "failures": list(self.failures),
                "error": self.error,
                "events": len(self.events),
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
            }


class JobQueue:
    """FIFO queue plus the registry of every job the service has seen."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._pending: "collections.deque[Job]" = collections.deque()
        self._jobs: "Dict[str, Job]" = {}
        self._sequence = 0

    def next_id(self, manifest_hash: str) -> str:
        """Allocate the next job id (``job-<seq>-<hash prefix>``)."""
        with self._cond:
            self._sequence += 1
            return f"job-{self._sequence:04d}-{manifest_hash[:8]}"

    def submit(self, job: Job) -> None:
        with self._cond:
            self._jobs[job.id] = job
            self._pending.append(job)
            self._cond.notify()

    def next_job(self, timeout: float = 0.5) -> Optional[Job]:
        """Pop the oldest queued job, blocking up to ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._pending.popleft()

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        with self._cond:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (the health endpoint reports this)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
