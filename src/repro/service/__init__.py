"""Store-backed simulation service: ``repro serve`` and its thin client.

The manifest pipeline (PR 4), content-addressed store (PR 5) and
fault-tolerant executor (PR 6) compose into a served API here: a stdlib
``ThreadingHTTPServer`` accepts manifest submissions, a worker pool executes
them with store-backed dedupe, and clients poll, stream events, and fetch
figures that are byte-identical to a local ``repro run all``.  No
dependencies beyond the standard library.
"""

from .client import ServiceClient, ServiceError
from .jobs import JOB_STATES, Job, JobQueue
from .scheduler import JobScheduler
from .server import DEFAULT_PORT, SimulationService
from .wire import JOB_SCHEMA, JobRequest, parse_job_request, parse_port

__all__ = [
    "DEFAULT_PORT",
    "JOB_SCHEMA",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobScheduler",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "parse_job_request",
    "parse_port",
]
