"""repro: reproduction of "A Lightweight Isolation Mechanism for Secure Branch Predictors".

The package is organised as follows:

* :mod:`repro.predictors` — branch-predictor substrate (Gshare, Tournament,
  TAGE/LTAGE/TAGE-SC-L, BTB, RAS) built on a storage layer that accepts
  pluggable isolation policies;
* :mod:`repro.core` — the paper's contribution: XOR-BP, Enhanced-XOR-PHT and
  Noisy-XOR-BP, plus the flush-based baselines and key management;
* :mod:`repro.cpu` — trace-driven out-of-order CPU timing model with an OS
  scheduler (context switches, privilege switches) and SMT support;
* :mod:`repro.workloads` — SPEC-CPU2006-like synthetic branch workloads and
  the paper's benchmark pairings;
* :mod:`repro.attacks` — reuse-based and contention-based attack framework
  (BranchScope, Spectre-V2 training, SBPA, Branch Shadowing, Jump-over-ASLR);
* :mod:`repro.security` — the Table-1 security-classification analysis;
* :mod:`repro.hwcost` — analytic area/timing cost model (Table 5);
* :mod:`repro.experiments` — one driver per paper table/figure;
* :mod:`repro.analysis` — metrics, table and figure rendering helpers.
"""

from .types import BranchType, Privilege

__version__ = "1.0.0"

__all__ = ["BranchType", "Privilege", "__version__"]
