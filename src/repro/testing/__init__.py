"""Test-support machinery shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection layer the
fault-tolerance suite and the CI chaos job drive through the
``REPRO_FAULT_SPEC`` environment variable.  It lives under ``src`` (not
``tests``) because the injection points sit inside the worker processes and
the atomic-write path of the real execution layer — the hooks must be
importable wherever a simulation runs, including pool workers on another
machine.
"""
