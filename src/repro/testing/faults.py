"""Deterministic fault injection for the execution layer.

Every recovery path in :mod:`repro.experiments.executor` — retry after a
transient failure, rebuilding a broken process pool, classifying a hung case
as timed out, salvaging a journal after a kill — exists to handle events that
are rare and nondeterministic in production.  This module makes those events
*deterministic and cheap*, so the fault-tolerance suite and the CI chaos job
certify each path on every run instead of hoping for it.

Faults are described by the ``REPRO_FAULT_SPEC`` environment variable (the
environment propagates into pool workers, which is where most injections must
fire).  The spec is a comma-separated list of clauses::

    REPRO_FAULT_SPEC="crash:case_idx=1,timeout:key~fig8;attempts=99"

Each clause is ``kind:selector[;selector...]``:

``kind``
    * ``fail`` — raise :class:`InjectedFault` (a transient worker error);
    * ``crash`` — hard-kill the worker process via ``os._exit`` (the parent
      observes ``BrokenProcessPool``); in-process (serial) execution raises
      :class:`InjectedCrash` instead, since killing the only process would
      take the harness down with it;
    * ``timeout`` — raise :class:`InjectedTimeout`, which the dispatch loop
      classifies exactly like a parent-observed case timeout;
    * ``hang`` — sleep ``seconds`` (default 30) in the worker, so a real
      ``REPRO_CASE_TIMEOUT`` expiry and pool abandonment can be exercised;
      in-process execution raises :class:`InjectedTimeout` instead of
      blocking the harness;
    * ``interrupt`` — raise :class:`KeyboardInterrupt` (Ctrl-C mid-run);
    * ``torn_write`` — make :func:`repro.experiments.executor.atomic_write_json`
      behave like a writer killed mid-write: a truncated document under the
      real name plus an orphaned ``*.tmp.<pid>`` file.

``selector``
    * ``case_idx=N`` — only the N-th pending case of a dispatch batch
      (0-based submission order);
    * ``key~SUBSTR`` — only cases whose cache key or label contains
      ``SUBSTR`` (for ``torn_write``: paths containing it);
    * ``path~SUBSTR`` — alias of ``key~`` (reads better for ``torn_write``);
    * ``attempts=N`` — inject on attempts 1..N only (default 1, so a
      retried case succeeds; ``attempts=99`` exhausts any retry budget);
    * ``seconds=X`` — ``hang`` sleep length.

Parsing is strict: an unknown kind or selector raises :class:`ValueError`
naming ``REPRO_FAULT_SPEC``, at executor construction time rather than deep
inside a worker.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULT_SPEC_VAR",
    "FaultClause",
    "InjectedCrash",
    "InjectedFault",
    "InjectedTimeout",
    "active_clauses",
    "inject_case_faults",
    "inject_stage_fault",
    "parse_fault_spec",
    "should_tear_write",
]

#: Environment variable carrying the fault spec.
FAULT_SPEC_VAR = "REPRO_FAULT_SPEC"

_KINDS = ("fail", "crash", "timeout", "hang", "interrupt", "torn_write")

#: Exit status of a hard-crashed worker (any non-zero value breaks the pool;
#: a recognisable one makes post-mortems less mysterious).
CRASH_EXIT_STATUS = 70


class InjectedFault(Exception):
    """A deterministic, transient worker failure (retryable)."""


class InjectedTimeout(Exception):
    """A deterministic stand-in for a case exceeding its timeout."""


class InjectedCrash(Exception):
    """Serial-mode stand-in for a hard worker crash.

    In-process execution cannot ``os._exit`` without killing the harness, so
    a ``crash`` clause degrades to this exception outside pool workers.
    """


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a ``REPRO_FAULT_SPEC``."""

    kind: str
    case_idx: Optional[int] = None
    match: Optional[str] = None
    attempts: int = 1
    seconds: float = 30.0

    def matches_case(self, *, index: Optional[int], key: str, label: str,
                     attempt: int) -> bool:
        """Whether this clause fires for one case-execution attempt."""
        if self.kind == "torn_write":
            return False
        if attempt > self.attempts:
            return False
        if self.case_idx is not None and self.case_idx != index:
            return False
        if self.match is not None and self.match not in key \
                and self.match not in label:
            return False
        return True

    def matches_path(self, path: str) -> bool:
        """Whether a ``torn_write`` clause fires for one output path."""
        if self.kind != "torn_write":
            return False
        return self.match is None or self.match in path

    def __str__(self) -> str:
        parts = [self.kind]
        if self.case_idx is not None:
            parts.append(f"case_idx={self.case_idx}")
        if self.match is not None:
            parts.append(f"key~{self.match}")
        if self.attempts != 1:
            parts.append(f"attempts={self.attempts}")
        return ":".join(parts[:1] + [";".join(parts[1:])]) if parts[1:] \
            else parts[0]


def _parse_int(value: str, clause: str, name: str, *, source: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(
            f"{source}: {name} needs an integer in clause {clause!r}, "
            f"got {value!r}") from None
    if parsed < 0:
        raise ValueError(
            f"{source}: {name} must be >= 0 in clause {clause!r}")
    return parsed


def parse_fault_spec(raw: str, *,
                     source: str = FAULT_SPEC_VAR) -> List[FaultClause]:
    """Parse a fault spec, rejecting malformed clauses with a named error."""
    clauses: List[FaultClause] = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, rest = chunk.partition(":")
        kind = kind.strip()
        if kind not in _KINDS:
            raise ValueError(
                f"{source}: unknown fault kind {kind!r} in clause {chunk!r} "
                f"(known: {', '.join(_KINDS)})")
        fields: Dict[str, object] = {"kind": kind}
        for selector in filter(None, (part.strip()
                                      for part in rest.split(";"))):
            if selector.startswith("case_idx="):
                fields["case_idx"] = _parse_int(
                    selector[len("case_idx="):], chunk, "case_idx",
                    source=source)
            elif selector.startswith("key~"):
                fields["match"] = selector[len("key~"):]
            elif selector.startswith("path~"):
                fields["match"] = selector[len("path~"):]
            elif selector.startswith("attempts="):
                fields["attempts"] = _parse_int(
                    selector[len("attempts="):], chunk, "attempts",
                    source=source)
            elif selector.startswith("seconds="):
                try:
                    fields["seconds"] = float(selector[len("seconds="):])
                except ValueError:
                    raise ValueError(
                        f"{source}: seconds needs a number in clause "
                        f"{chunk!r}") from None
            else:
                raise ValueError(
                    f"{source}: unknown selector {selector!r} in clause "
                    f"{chunk!r} (known: case_idx=, key~, path~, attempts=, "
                    "seconds=)")
        clauses.append(FaultClause(**fields))  # type: ignore[arg-type]
    return clauses


#: Memoised parse of the last few raw spec strings (the hooks sit on hot
#: paths — every worker attempt and every atomic write consult them).
_PARSE_CACHE: Dict[str, Tuple[FaultClause, ...]] = {}


def active_clauses() -> Tuple[FaultClause, ...]:
    """The parsed clauses of the current ``REPRO_FAULT_SPEC`` (empty when
    unset)."""
    raw = os.environ.get(FAULT_SPEC_VAR)
    if not raw:
        return ()
    cached = _PARSE_CACHE.get(raw)
    if cached is None:
        cached = tuple(parse_fault_spec(raw))
        if len(_PARSE_CACHE) > 16:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[raw] = cached
    return cached


def inject_case_faults(*, key: str, label: str, index: Optional[int],
                       attempt: int, in_worker: bool) -> None:
    """Fire the first matching case fault, if any.

    Called at the top of every case-execution attempt.  ``in_worker`` is
    ``True`` only inside a pool worker process, where hard faults (process
    exit, real hangs) are safe; in-process execution degrades them to
    exceptions so the harness survives.
    """
    for clause in active_clauses():
        if not clause.matches_case(index=index, key=key, label=label,
                                   attempt=attempt):
            continue
        detail = (f"injected {clause.kind} ({clause}) for case "
                  f"{label} [{key[:12]}…] attempt {attempt}")
        if clause.kind == "fail":
            raise InjectedFault(detail)
        if clause.kind == "timeout":
            raise InjectedTimeout(detail)
        if clause.kind == "interrupt":
            raise KeyboardInterrupt(detail)
        if clause.kind == "crash":
            if in_worker:
                os._exit(CRASH_EXIT_STATUS)
            raise InjectedCrash(detail)
        if clause.kind == "hang":
            if not in_worker:
                raise InjectedTimeout(detail + " (in-process hang degraded)")
            time.sleep(clause.seconds)
            return  # a hung worker eventually finishes its (abandoned) case


def inject_stage_fault(stage: str) -> None:
    """Fire the first fault clause matching a named pipeline *stage*.

    The service scheduler (and any future non-case execution path) calls
    this with a stage token like ``service:job:<id>`` so the chaos suite can
    kill the machinery *around* the executor — proving a dead worker thread
    surfaces as a structured job failure, never a hung job.  Only clauses
    with an explicit ``key~``/``path~`` selector participate: a bare
    ``crash`` or ``crash:case_idx=1`` aimed at case execution must not also
    detonate every stage it passes through.  Stage execution is always
    in-process, so ``crash`` raises :class:`InjectedCrash` and ``hang``
    degrades to :class:`InjectedTimeout` exactly like serial case execution.
    """
    for clause in active_clauses():
        if clause.kind == "torn_write" or clause.match is None:
            continue
        if clause.match not in stage:
            continue
        detail = f"injected {clause.kind} ({clause}) at stage {stage}"
        if clause.kind == "fail":
            raise InjectedFault(detail)
        if clause.kind == "timeout":
            raise InjectedTimeout(detail)
        if clause.kind == "interrupt":
            raise KeyboardInterrupt(detail)
        if clause.kind == "crash":
            raise InjectedCrash(detail)
        if clause.kind == "hang":
            raise InjectedTimeout(detail + " (in-process hang degraded)")


def should_tear_write(path: str) -> bool:
    """Whether an atomic JSON write to ``path`` should be torn."""
    return any(clause.matches_path(path) for clause in active_clauses())
