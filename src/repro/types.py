"""Shared low-level types used across the package.

These enums are deliberately kept in a dependency-free module so that the
predictor substrate (:mod:`repro.predictors`), the isolation mechanisms
(:mod:`repro.core`), the CPU model (:mod:`repro.cpu`) and the workload
generator (:mod:`repro.workloads`) can all share them without import cycles.
"""

from __future__ import annotations

import enum

__all__ = ["Privilege", "BranchType"]


class Privilege(enum.IntEnum):
    """Privilege level of the code executing a branch.

    The paper requires isolation not only between different programs but also
    between privilege levels of the *same* program (Section 5.4): the
    thread-private keys are regenerated whenever the privilege level changes
    (system call, exception, hypervisor entry).
    """

    USER = 0
    KERNEL = 1
    HYPERVISOR = 2


class BranchType(enum.IntEnum):
    """Classification of a branch instruction.

    Only the structures relevant to the paper are modelled: conditional
    branches train the direction predictor (PHT-style structures), indirect
    branches and calls train the BTB, and returns use the (thread-private)
    return address stack.
    """

    CONDITIONAL = 0
    DIRECT = 1
    INDIRECT = 2
    CALL = 3
    RETURN = 4

    @property
    def uses_direction_predictor(self) -> bool:
        """True when the branch direction is predicted by the PHT."""
        return self is BranchType.CONDITIONAL

    @property
    def uses_btb(self) -> bool:
        """True when the branch target is predicted by the BTB."""
        return self in (BranchType.CONDITIONAL, BranchType.DIRECT,
                        BranchType.INDIRECT, BranchType.CALL)

    @property
    def uses_ras(self) -> bool:
        """True when the branch target is predicted by the return address stack."""
        return self is BranchType.RETURN
