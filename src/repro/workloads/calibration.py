"""Calibration checks for the synthetic SPEC-like workloads.

The reproduction replaces SPEC CPU2006 binaries with synthetic branch-trace
generators (`repro.workloads.generator`) whose per-benchmark profiles encode
the characteristics the isolation mechanisms interact with.  Each profile
carries two *reporting hints* — the approximate baseline direction-prediction
accuracy and BTB hit rate the benchmark should exhibit — plus the
privilege-switch rate that Table 4 reports.  This module measures those
quantities by actually running the generated trace through a baseline
predictor, so the calibration can be inspected (and regression-tested)
instead of trusted blindly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.registry import make_bpu
from ..types import BranchType
from .generator import make_workload
from .spec_profiles import get_profile, profile_names
from .trace import collect_stats

__all__ = ["CalibrationPoint", "calibrate_benchmark", "calibrate_suite"]


@dataclass
class CalibrationPoint:
    """Measured versus profiled behaviour of one synthetic benchmark.

    Attributes:
        benchmark: benchmark name.
        branches: number of branch records measured.
        measured_direction_accuracy: baseline conditional-branch accuracy on
            the generated trace.
        hinted_direction_accuracy: the profile's ``pht_accuracy_hint``.
        measured_btb_hit_rate: baseline BTB hit rate on the generated trace.
        hinted_btb_hit_rate: the profile's ``btb_hit_hint``.
        measured_conditional_ratio: conditional branches per instruction.
        syscalls_per_million_instructions: syscall markers in the trace.
    """

    benchmark: str
    branches: int
    measured_direction_accuracy: float
    hinted_direction_accuracy: float
    measured_btb_hit_rate: float
    hinted_btb_hit_rate: float
    measured_conditional_ratio: float
    syscalls_per_million_instructions: float

    @property
    def direction_accuracy_error(self) -> float:
        """Measured minus hinted direction accuracy."""
        return self.measured_direction_accuracy - self.hinted_direction_accuracy

    @property
    def btb_hit_rate_error(self) -> float:
        """Measured minus hinted BTB hit rate."""
        return self.measured_btb_hit_rate - self.hinted_btb_hit_rate

    def within(self, tolerance: float = 0.10) -> bool:
        """True when both measured figures are within ``tolerance`` of the hints."""
        return (abs(self.direction_accuracy_error) <= tolerance
                and abs(self.btb_hit_rate_error) <= tolerance)


def calibrate_benchmark(benchmark: str, *, branches: int = 20_000,
                        predictor: str = "tage", seed: int = 2021,
                        btb_sets: int = 256, btb_ways: int = 2
                        ) -> CalibrationPoint:
    """Measure one benchmark's baseline behaviour against its profile hints.

    Args:
        benchmark: Table 3 benchmark name.
        branches: branch records to run (larger = tighter estimate).
        predictor: baseline direction predictor used for the measurement.
        seed: workload seed.
        btb_sets: BTB geometry used for the measurement.
        btb_ways: BTB associativity.

    Returns:
        A :class:`CalibrationPoint` comparing measurement and hints.
    """
    profile = get_profile(benchmark)
    workload = make_workload(benchmark, seed=seed)
    records = workload.segment(branches)
    stats = collect_stats(records)
    bpu = make_bpu(predictor, "baseline", seed=seed, btb_sets=btb_sets,
                   btb_ways=btb_ways)
    conditional = mispredicted = 0
    for record in records:
        outcome = bpu.execute_branch(record.pc, record.taken, record.target,
                                     record.branch_type)
        if record.branch_type is BranchType.CONDITIONAL:
            conditional += 1
            mispredicted += outcome.direction_mispredicted
    accuracy = 1.0 - (mispredicted / conditional if conditional else 0.0)
    return CalibrationPoint(
        benchmark=benchmark,
        branches=branches,
        measured_direction_accuracy=accuracy,
        hinted_direction_accuracy=profile.pht_accuracy_hint,
        measured_btb_hit_rate=bpu.btb.hit_rate,
        hinted_btb_hit_rate=profile.btb_hit_hint,
        measured_conditional_ratio=stats.conditional_ratio,
        syscalls_per_million_instructions=stats.syscalls_per_million_instructions,
    )


def calibrate_suite(benchmarks: Optional[Iterable[str]] = None, *,
                    branches: int = 20_000, predictor: str = "tage",
                    seed: int = 2021) -> List[CalibrationPoint]:
    """Calibrate several benchmarks (the whole profile set by default)."""
    names: Sequence[str] = list(benchmarks) if benchmarks is not None \
        else profile_names()
    return [calibrate_benchmark(name, branches=branches, predictor=predictor,
                                seed=seed)
            for name in names]
