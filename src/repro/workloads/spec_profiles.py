"""SPEC CPU2006-like benchmark behaviour profiles.

The paper evaluates on SPEC CPU2006 (train inputs) pairs listed in Table 3.
Running the real suite is impossible here, so each benchmark is replaced by a
*behaviour profile*: the handful of branch-level characteristics the isolation
mechanisms actually interact with —

* the size of the static conditional-branch working set (how long the PHT and
  BTB take to warm up, and how much residual state a context switch wipes),
* the dynamic branch density and taken ratio,
* the mix of branch behaviours (loops, strongly biased branches,
  history-correlated branches, hard-to-predict branches),
* the number of indirect branches and call/return activity (BTB/RAS traffic),
* the privilege-switch (system call / exception) rate, which drives key
  regeneration and reproduces Table 4.

The numeric values are calibrated from published SPEC CPU2006
characterisations and from the per-benchmark details the paper itself gives
(e.g. gcc 12.1% / calculix 8.1% conditional-branch ratios with 90.1% / 94.0%
PHT accuracy, gromacs 4.8% with 88.9%, gobmk's 500–800 residual BTB entries
versus namd/sphinx3's 30–300, libquantum's 99.3% BTB hit rate).  They do not
need to be exact: the experiments depend on the *relative* behaviour of the
pairs, which these profiles preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["BenchmarkProfile", "SPEC_PROFILES", "get_profile", "profile_names"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Branch-behaviour profile of one benchmark.

    Attributes:
        name: benchmark name as it appears in Table 3.
        description: one-line characterisation.
        static_conditional: number of distinct (hot) conditional branch sites.
        static_calls: number of distinct call sites.
        static_indirect: number of distinct indirect-branch sites.
        indirect_targets: typical number of targets per indirect branch.
        branch_ratio: dynamic branches per committed instruction.
        conditional_fraction: fraction of dynamic branches that are conditional.
        call_fraction: fraction of dynamic branches that are calls (an equal
            fraction of returns is generated).
        indirect_fraction: fraction of dynamic branches that are indirect jumps.
        loop_fraction: fraction of conditional sites that are loop back-edges.
        biased_fraction: fraction of conditional sites that are strongly biased.
        pattern_fraction: fraction of conditional sites whose outcome follows a
            global-history pattern (rewarding history-based predictors).
        random_fraction: fraction of conditional sites with weak bias
            (hard to predict).
        mean_trip_count: mean loop trip count for loop back-edges.
        bias_strength: probability a biased branch goes its dominant way.
        pattern_history: history depth the patterned branches correlate with.
        locality: Zipf exponent of branch-site reuse (higher = hotter subset).
        privilege_switches_per_million_cycles: privilege transitions (syscall
            entry or exit counts as one) per million cycles, reproducing
            Table 4 when paired.
        pht_accuracy_hint: approximate baseline direction accuracy (reporting
            aid only; not used by the generator).
        btb_hit_hint: approximate baseline BTB hit rate (reporting aid only).
    """

    name: str
    description: str
    static_conditional: int
    static_calls: int
    static_indirect: int
    indirect_targets: int
    branch_ratio: float
    conditional_fraction: float
    call_fraction: float
    indirect_fraction: float
    loop_fraction: float
    biased_fraction: float
    pattern_fraction: float
    random_fraction: float
    mean_trip_count: float
    bias_strength: float
    pattern_history: int
    locality: float
    privilege_switches_per_million_cycles: float
    pht_accuracy_hint: float
    btb_hit_hint: float

    def __post_init__(self) -> None:
        total = (self.loop_fraction + self.biased_fraction + self.pattern_fraction
                 + self.random_fraction)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: behaviour fractions must sum to 1.0, got {total}")
        dynamic = self.conditional_fraction + 2 * self.call_fraction + self.indirect_fraction
        if abs(dynamic - 1.0) > 1e-3:
            raise ValueError(
                f"{self.name}: dynamic branch mix must sum to 1.0, got {dynamic}")


def _profile(name: str, description: str, *, static_conditional: int,
             static_calls: int = 64, static_indirect: int = 8,
             indirect_targets: int = 4, branch_ratio: float = 0.15,
             conditional_fraction: float = 0.84, call_fraction: float = 0.07,
             indirect_fraction: float = 0.02, loop_fraction: float = 0.30,
             biased_fraction: float = 0.40, pattern_fraction: float = 0.20,
             random_fraction: float = 0.10, mean_trip_count: float = 12.0,
             bias_strength: float = 0.95, pattern_history: int = 8,
             locality: float = 1.1,
             privilege_switches_per_million_cycles: float = 2.0,
             pht_accuracy_hint: float = 0.93,
             btb_hit_hint: float = 0.95) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, description=description,
        static_conditional=static_conditional, static_calls=static_calls,
        static_indirect=static_indirect, indirect_targets=indirect_targets,
        branch_ratio=branch_ratio, conditional_fraction=conditional_fraction,
        call_fraction=call_fraction, indirect_fraction=indirect_fraction,
        loop_fraction=loop_fraction, biased_fraction=biased_fraction,
        pattern_fraction=pattern_fraction, random_fraction=random_fraction,
        mean_trip_count=mean_trip_count, bias_strength=bias_strength,
        pattern_history=pattern_history, locality=locality,
        privilege_switches_per_million_cycles=privilege_switches_per_million_cycles,
        pht_accuracy_hint=pht_accuracy_hint, btb_hit_hint=btb_hit_hint)


#: Profiles for every benchmark appearing in Table 3.
SPEC_PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in [
    _profile(
        "gcc", "large integer code, many static branches, moderate predictability",
        static_conditional=6144, static_calls=512, static_indirect=48,
        branch_ratio=0.16, conditional_fraction=0.80, call_fraction=0.085,
        indirect_fraction=0.03, loop_fraction=0.18, biased_fraction=0.38,
        pattern_fraction=0.24, random_fraction=0.20, mean_trip_count=6.0,
        locality=0.95, privilege_switches_per_million_cycles=6.0,
        pht_accuracy_hint=0.901, btb_hit_hint=0.92),
    _profile(
        "calculix", "FP structural analysis, loop dominated with branchy setup code",
        static_conditional=1536, static_calls=192, static_indirect=12,
        branch_ratio=0.10, conditional_fraction=0.86, call_fraction=0.06,
        indirect_fraction=0.02, loop_fraction=0.42, biased_fraction=0.36,
        pattern_fraction=0.14, random_fraction=0.08, mean_trip_count=24.0,
        locality=1.15, privilege_switches_per_million_cycles=3.8,
        pht_accuracy_hint=0.940, btb_hit_hint=0.96),
    _profile(
        "milc", "quantum chromodynamics, tight FP loops, tiny branch footprint",
        static_conditional=224, static_calls=48, static_indirect=4,
        branch_ratio=0.045, conditional_fraction=0.88, call_fraction=0.05,
        indirect_fraction=0.02, loop_fraction=0.58, biased_fraction=0.32,
        pattern_fraction=0.06, random_fraction=0.04, mean_trip_count=48.0,
        locality=1.3, privilege_switches_per_million_cycles=2.0,
        pht_accuracy_hint=0.976, btb_hit_hint=0.985),
    _profile(
        "povray", "ray tracer, branchy FP with recursion and frequent I/O syscalls",
        static_conditional=2816, static_calls=384, static_indirect=40,
        branch_ratio=0.14, conditional_fraction=0.78, call_fraction=0.095,
        indirect_fraction=0.03, loop_fraction=0.22, biased_fraction=0.40,
        pattern_fraction=0.22, random_fraction=0.16, mean_trip_count=8.0,
        locality=1.0, privilege_switches_per_million_cycles=12.0,
        pht_accuracy_hint=0.934, btb_hit_hint=0.93),
    _profile(
        "bzip2_source", "compression, data-dependent branches, small code",
        static_conditional=512, static_calls=56, static_indirect=4,
        branch_ratio=0.15, conditional_fraction=0.90, call_fraction=0.04,
        indirect_fraction=0.02, loop_fraction=0.28, biased_fraction=0.30,
        pattern_fraction=0.22, random_fraction=0.20, mean_trip_count=10.0,
        locality=1.2, privilege_switches_per_million_cycles=2.2,
        pht_accuracy_hint=0.915, btb_hit_hint=0.97),
    _profile(
        "soplex", "linear programming solver, pointer-heavy C++",
        static_conditional=1792, static_calls=288, static_indirect=24,
        branch_ratio=0.12, conditional_fraction=0.80, call_fraction=0.085,
        indirect_fraction=0.03, loop_fraction=0.30, biased_fraction=0.38,
        pattern_fraction=0.18, random_fraction=0.14, mean_trip_count=14.0,
        locality=1.05, privilege_switches_per_million_cycles=1.6,
        pht_accuracy_hint=0.936, btb_hit_hint=0.95),
    _profile(
        "namd", "molecular dynamics, tiny predictable branch footprint",
        static_conditional=288, static_calls=64, static_indirect=6,
        branch_ratio=0.05, conditional_fraction=0.86, call_fraction=0.06,
        indirect_fraction=0.02, loop_fraction=0.52, biased_fraction=0.36,
        pattern_fraction=0.08, random_fraction=0.04, mean_trip_count=32.0,
        locality=1.3, privilege_switches_per_million_cycles=1.8,
        pht_accuracy_hint=0.978, btb_hit_hint=0.985),
    _profile(
        "sphinx3", "speech recognition, moderate branch working set",
        static_conditional=896, static_calls=144, static_indirect=10,
        branch_ratio=0.11, conditional_fraction=0.85, call_fraction=0.06,
        indirect_fraction=0.03, loop_fraction=0.34, biased_fraction=0.36,
        pattern_fraction=0.18, random_fraction=0.12, mean_trip_count=16.0,
        locality=1.15, privilege_switches_per_million_cycles=2.2,
        pht_accuracy_hint=0.945, btb_hit_hint=0.96),
    _profile(
        "hmmer", "hidden Markov model search, highly biased inner loop",
        static_conditional=384, static_calls=48, static_indirect=4,
        branch_ratio=0.09, conditional_fraction=0.92, call_fraction=0.03,
        indirect_fraction=0.02, loop_fraction=0.40, biased_fraction=0.44,
        pattern_fraction=0.10, random_fraction=0.06, mean_trip_count=20.0,
        bias_strength=0.97, locality=1.25, privilege_switches_per_million_cycles=2.0,
        pht_accuracy_hint=0.960, btb_hit_hint=0.98),
    _profile(
        "GemsFDTD", "finite-difference time-domain FP solver, loop dominated",
        static_conditional=448, static_calls=96, static_indirect=6,
        branch_ratio=0.076, conditional_fraction=0.86, call_fraction=0.06,
        indirect_fraction=0.02, loop_fraction=0.52, biased_fraction=0.32,
        pattern_fraction=0.10, random_fraction=0.06, mean_trip_count=40.0,
        locality=1.25, privilege_switches_per_million_cycles=1.4,
        pht_accuracy_hint=0.965, btb_hit_hint=0.975),
    _profile(
        "gobmk", "go-playing AI, very large branch working set, hard to predict",
        static_conditional=5120, static_calls=640, static_indirect=36,
        branch_ratio=0.155, conditional_fraction=0.78, call_fraction=0.095,
        indirect_fraction=0.03, loop_fraction=0.14, biased_fraction=0.34,
        pattern_fraction=0.26, random_fraction=0.26, mean_trip_count=5.0,
        locality=0.9, privilege_switches_per_million_cycles=1.6,
        pht_accuracy_hint=0.870, btb_hit_hint=0.852),
    _profile(
        "libquantum", "quantum simulation, tiny loop kernel, near-perfect prediction",
        static_conditional=96, static_calls=24, static_indirect=2,
        branch_ratio=0.13, conditional_fraction=0.92, call_fraction=0.03,
        indirect_fraction=0.02, loop_fraction=0.62, biased_fraction=0.30,
        pattern_fraction=0.05, random_fraction=0.03, mean_trip_count=64.0,
        bias_strength=0.985, locality=1.4, privilege_switches_per_million_cycles=1.6,
        pht_accuracy_hint=0.990, btb_hit_hint=0.993),
    _profile(
        "gromacs", "molecular dynamics, few branches but hard-to-predict ones",
        static_conditional=640, static_calls=112, static_indirect=8,
        branch_ratio=0.048, conditional_fraction=0.84, call_fraction=0.07,
        indirect_fraction=0.02, loop_fraction=0.30, biased_fraction=0.30,
        pattern_fraction=0.18, random_fraction=0.22, mean_trip_count=12.0,
        locality=1.1, privilege_switches_per_million_cycles=2.0,
        pht_accuracy_hint=0.889, btb_hit_hint=0.95),
    _profile(
        "mcf", "combinatorial optimisation, data-dependent pointer chasing",
        static_conditional=320, static_calls=40, static_indirect=4,
        branch_ratio=0.17, conditional_fraction=0.92, call_fraction=0.03,
        indirect_fraction=0.02, loop_fraction=0.24, biased_fraction=0.30,
        pattern_fraction=0.20, random_fraction=0.26, mean_trip_count=8.0,
        locality=1.15, privilege_switches_per_million_cycles=2.4,
        pht_accuracy_hint=0.905, btb_hit_hint=0.97),
    _profile(
        "astar", "path finding, data-dependent control flow",
        static_conditional=448, static_calls=56, static_indirect=4,
        branch_ratio=0.14, conditional_fraction=0.90, call_fraction=0.04,
        indirect_fraction=0.02, loop_fraction=0.26, biased_fraction=0.32,
        pattern_fraction=0.20, random_fraction=0.22, mean_trip_count=9.0,
        locality=1.1, privilege_switches_per_million_cycles=1.6,
        pht_accuracy_hint=0.912, btb_hit_hint=0.96),
    _profile(
        "perlbench", "perl interpreter, huge code footprint, many indirect branches",
        static_conditional=4608, static_calls=576, static_indirect=96,
        indirect_targets=12, branch_ratio=0.16, conditional_fraction=0.76,
        call_fraction=0.10, indirect_fraction=0.04, loop_fraction=0.16,
        biased_fraction=0.40, pattern_fraction=0.26, random_fraction=0.18,
        mean_trip_count=6.0, locality=0.95,
        privilege_switches_per_million_cycles=4.6,
        pht_accuracy_hint=0.932, btb_hit_hint=0.90),
    _profile(
        "bwaves", "blast-wave FP solver, extremely regular loops",
        static_conditional=192, static_calls=32, static_indirect=2,
        branch_ratio=0.035, conditional_fraction=0.90, call_fraction=0.04,
        indirect_fraction=0.02, loop_fraction=0.66, biased_fraction=0.26,
        pattern_fraction=0.05, random_fraction=0.03, mean_trip_count=80.0,
        bias_strength=0.99, locality=1.35, privilege_switches_per_million_cycles=2.0,
        pht_accuracy_hint=0.988, btb_hit_hint=0.99),
    _profile(
        "zeusmp", "astrophysical magnetohydrodynamics, regular FP loops",
        static_conditional=256, static_calls=48, static_indirect=4,
        branch_ratio=0.04, conditional_fraction=0.88, call_fraction=0.05,
        indirect_fraction=0.02, loop_fraction=0.60, biased_fraction=0.28,
        pattern_fraction=0.08, random_fraction=0.04, mean_trip_count=56.0,
        locality=1.3, privilege_switches_per_million_cycles=1.8,
        pht_accuracy_hint=0.982, btb_hit_hint=0.985),
    _profile(
        "lbm", "lattice Boltzmann method, single dominant loop nest",
        static_conditional=96, static_calls=16, static_indirect=2,
        branch_ratio=0.025, conditional_fraction=0.92, call_fraction=0.03,
        indirect_fraction=0.02, loop_fraction=0.68, biased_fraction=0.26,
        pattern_fraction=0.04, random_fraction=0.02, mean_trip_count=96.0,
        bias_strength=0.99, locality=1.4, privilege_switches_per_million_cycles=1.6,
        pht_accuracy_hint=0.992, btb_hit_hint=0.995),
    _profile(
        "dealII", "finite-element C++ library, deep call chains, many virtual calls",
        static_conditional=2304, static_calls=448, static_indirect=64,
        indirect_targets=8, branch_ratio=0.13, conditional_fraction=0.76,
        call_fraction=0.10, indirect_fraction=0.04, loop_fraction=0.26,
        biased_fraction=0.40, pattern_fraction=0.20, random_fraction=0.14,
        mean_trip_count=10.0, locality=1.0,
        privilege_switches_per_million_cycles=1.8,
        pht_accuracy_hint=0.947, btb_hit_hint=0.93),
    _profile(
        "leslie3d", "computational fluid dynamics, regular FP loops",
        static_conditional=224, static_calls=40, static_indirect=4,
        branch_ratio=0.04, conditional_fraction=0.88, call_fraction=0.05,
        indirect_fraction=0.02, loop_fraction=0.58, biased_fraction=0.30,
        pattern_fraction=0.08, random_fraction=0.04, mean_trip_count=44.0,
        locality=1.3, privilege_switches_per_million_cycles=1.6,
        pht_accuracy_hint=0.980, btb_hit_hint=0.985),
    _profile(
        "sjeng", "chess engine, deep recursion, hard-to-predict branches",
        static_conditional=1280, static_calls=176, static_indirect=12,
        branch_ratio=0.155, conditional_fraction=0.82, call_fraction=0.075,
        indirect_fraction=0.03, loop_fraction=0.16, biased_fraction=0.32,
        pattern_fraction=0.24, random_fraction=0.28, mean_trip_count=5.0,
        locality=1.0, privilege_switches_per_million_cycles=2.0,
        pht_accuracy_hint=0.883, btb_hit_hint=0.94),
    _profile(
        "h264ref", "video encoder, large code with biased mode-decision branches",
        static_conditional=2048, static_calls=256, static_indirect=24,
        branch_ratio=0.12, conditional_fraction=0.82, call_fraction=0.075,
        indirect_fraction=0.03, loop_fraction=0.30, biased_fraction=0.42,
        pattern_fraction=0.16, random_fraction=0.12, mean_trip_count=16.0,
        locality=1.1, privilege_switches_per_million_cycles=2.2,
        pht_accuracy_hint=0.942, btb_hit_hint=0.94),
    _profile(
        "omnetpp", "discrete event simulator, virtual dispatch heavy",
        static_conditional=1536, static_calls=320, static_indirect=72,
        indirect_targets=10, branch_ratio=0.14, conditional_fraction=0.74,
        call_fraction=0.11, indirect_fraction=0.04, loop_fraction=0.20,
        biased_fraction=0.38, pattern_fraction=0.22, random_fraction=0.20,
        mean_trip_count=7.0, locality=1.0,
        privilege_switches_per_million_cycles=2.6,
        pht_accuracy_hint=0.918, btb_hit_hint=0.92),
]}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by its Table 3 name.

    Raises:
        KeyError: when ``name`` is not a known benchmark.
    """
    if name not in SPEC_PROFILES:
        raise KeyError(f"unknown benchmark: {name!r}")
    return SPEC_PROFILES[name]


def profile_names() -> List[str]:
    """All benchmark names, sorted."""
    return sorted(SPEC_PROFILES)
