"""Synthetic SPEC-CPU2006-like workloads and the paper's benchmark pairings."""

from .calibration import CalibrationPoint, calibrate_benchmark, calibrate_suite
from .generator import BranchSite, SyntheticWorkload, make_workload
from .traceio import (
    TRACE_SUFFIXES,
    TraceFormatError,
    TraceWorkload,
    read_trace,
    record_workload,
    trace_label,
    write_trace,
)
from .pairs import (
    SINGLE_THREAD_PAIRS,
    SMT2_PAIRS,
    SMT4_QUADS,
    BenchmarkPair,
    UnknownPairSetError,
    case_names,
    get_pair,
    make_pair_workloads,
)
from .registry import (
    TRACE_DIR_VAR,
    TRACE_PREFIX,
    UnknownBenchSetError,
    WorkloadEntry,
    WorkloadRegistry,
    env_trace_dir,
    get_registry,
)
from .spec_profiles import SPEC_PROFILES, BenchmarkProfile, get_profile, profile_names
from .trace import BranchRecord, TraceStats, collect_stats

__all__ = [
    "CalibrationPoint",
    "calibrate_benchmark",
    "calibrate_suite",
    "BranchSite",
    "SyntheticWorkload",
    "make_workload",
    "BenchmarkPair",
    "SINGLE_THREAD_PAIRS",
    "SMT2_PAIRS",
    "SMT4_QUADS",
    "case_names",
    "get_pair",
    "make_pair_workloads",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "get_profile",
    "profile_names",
    "UnknownPairSetError",
    "BranchRecord",
    "TraceStats",
    "collect_stats",
    "TRACE_SUFFIXES",
    "TraceFormatError",
    "TraceWorkload",
    "read_trace",
    "trace_label",
    "write_trace",
    "record_workload",
    "TRACE_DIR_VAR",
    "TRACE_PREFIX",
    "UnknownBenchSetError",
    "WorkloadEntry",
    "WorkloadRegistry",
    "env_trace_dir",
    "get_registry",
]
