"""Synthetic SPEC-CPU2006-like workloads and the paper's benchmark pairings."""

from .calibration import CalibrationPoint, calibrate_benchmark, calibrate_suite
from .generator import BranchSite, SyntheticWorkload, make_workload
from .traceio import (
    TraceFormatError,
    TraceWorkload,
    read_trace,
    record_workload,
    write_trace,
)
from .pairs import (
    SINGLE_THREAD_PAIRS,
    SMT2_PAIRS,
    SMT4_QUADS,
    BenchmarkPair,
    case_names,
    get_pair,
    make_pair_workloads,
)
from .spec_profiles import SPEC_PROFILES, BenchmarkProfile, get_profile, profile_names
from .trace import BranchRecord, TraceStats, collect_stats

__all__ = [
    "CalibrationPoint",
    "calibrate_benchmark",
    "calibrate_suite",
    "BranchSite",
    "SyntheticWorkload",
    "make_workload",
    "BenchmarkPair",
    "SINGLE_THREAD_PAIRS",
    "SMT2_PAIRS",
    "SMT4_QUADS",
    "case_names",
    "get_pair",
    "make_pair_workloads",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "get_profile",
    "profile_names",
    "BranchRecord",
    "TraceStats",
    "collect_stats",
    "TraceFormatError",
    "TraceWorkload",
    "read_trace",
    "write_trace",
    "record_workload",
]
