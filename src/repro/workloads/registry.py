"""First-class workload registry with named benchmark-set selectors.

Modeled on the SPEC harness shape of vusec's ``instrumentation-infra``
(named benchmark sets like ``int``/``fp``/``all_c`` resolved from a
registry, duplicate-pruned selections, geomean summary reporting): one
registry unifies

* the synthetic SPEC CPU2006-like profiles of
  :mod:`repro.workloads.spec_profiles`, and
* a **trace corpus** — recorded branch traces (see
  :mod:`repro.workloads.traceio`) found under a directory given by the
  ``REPRO_TRACE_DIR`` environment variable or the ``--trace-dir`` CLI
  flag, registered as ``trace:<label>`` workloads —

behind named benchmark-set selectors (``int``, ``fp``,
``large_footprint``, ``indirect_heavy``, ``all``, ``traces``) and
user-defined ``+``-joined unions of sets and workload names
(``int+traces``, ``gcc+mcf+trace:mybench``).  Selections are
duplicate-pruned while preserving first-appearance order, so
``int+large_footprint`` lists ``gcc`` once.

Trace entries carry a SHA-256 content digest: a trace workload's
behaviour is the file's *contents*, not its name, so the digest feeds
:attr:`repro.experiments.executor.CaseSpec.workload_digest` and keeps
result-store addressing honest when a corpus file changes.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .spec_profiles import SPEC_PROFILES, profile_names
from .traceio import TRACE_SUFFIXES, TraceWorkload, trace_label

__all__ = [
    "TRACE_DIR_VAR",
    "TRACE_PREFIX",
    "UnknownBenchSetError",
    "WorkloadEntry",
    "WorkloadRegistry",
    "env_trace_dir",
    "get_registry",
]

#: Environment variable naming the trace-corpus directory (set by the CLI's
#: ``--trace-dir`` flag so worker processes inherit the corpus location).
TRACE_DIR_VAR = "REPRO_TRACE_DIR"

#: Registry-name prefix of trace-corpus workloads (``trace:<label>``).
TRACE_PREFIX = "trace:"

#: SPEC CPU2006 integer-suite benchmarks (CINT2006); every other synthetic
#: profile belongs to the floating-point suite (CFP2006).
_INT_BENCHMARKS = frozenset({
    "perlbench", "bzip2_source", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
    "libquantum", "h264ref", "omnetpp", "astar",
})

#: ``large_footprint`` membership: static conditional working set at least
#: this many sites (the benchmarks whose predictor state a flush hurts most).
_LARGE_FOOTPRINT_SITES = 2048

#: ``indirect_heavy`` membership: at least this many static indirect sites…
_INDIRECT_SITES = 40
#: …or at least this fraction of dynamic branches being indirect jumps.
_INDIRECT_FRACTION = 0.04


class UnknownBenchSetError(ValueError):
    """Raised for a selector token that is neither a set nor a workload."""

    def __init__(self, token: str, sets: Tuple[str, ...]) -> None:
        self.token = token
        self.sets = sets
        super().__init__(
            f"unknown benchmark set or workload {token!r} (sets: "
            f"{', '.join(sorted(sets))}; workload names and "
            f"'+'-joined unions are also accepted)")


@dataclass(frozen=True)
class WorkloadEntry:
    """One registry entry.

    Attributes:
        name: registry name (``gcc`` … for synthetic profiles,
            ``trace:<label>`` for corpus traces).
        kind: ``"synthetic"`` or ``"trace"``.
        description: one-line characterisation.
        path: trace file path (``None`` for synthetic entries).
        digest: SHA-256 of the trace file contents (``None`` for synthetic
            entries, whose behaviour is fully described by name + seed).
    """

    name: str
    kind: str
    description: str
    path: Optional[str] = None
    digest: Optional[str] = None


def env_trace_dir() -> Optional[str]:
    """Trace-corpus directory from ``REPRO_TRACE_DIR`` (``None`` if unset)."""
    raw = os.environ.get(TRACE_DIR_VAR)
    return raw or None


def _file_digest(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


class WorkloadRegistry:
    """Registry of every runnable workload plus named benchmark sets.

    Args:
        trace_dir: trace-corpus directory to scan for ``trace:*`` entries;
            ``None`` registers the synthetic profiles only.  Files are
            recognised by the :data:`repro.workloads.traceio.TRACE_SUFFIXES`
            extensions; two files collapsing to the same label (``gcc.trace``
            next to ``gcc.trace.gz``) are rejected rather than silently
            shadowed.
    """

    def __init__(self, trace_dir: Optional[str] = None) -> None:
        self.trace_dir = trace_dir
        self._entries: Dict[str, WorkloadEntry] = {}
        for name in profile_names():
            profile = SPEC_PROFILES[name]
            self._entries[name] = WorkloadEntry(
                name=name, kind="synthetic", description=profile.description)
        if trace_dir is not None:
            for entry in self._scan_traces(trace_dir):
                self._entries[entry.name] = entry
        self._sets = self._build_sets()

    @staticmethod
    def _scan_traces(trace_dir: str) -> List[WorkloadEntry]:
        if not os.path.isdir(trace_dir):
            raise FileNotFoundError(
                f"trace corpus directory {trace_dir!r} does not exist")
        by_label: Dict[str, str] = {}
        for filename in sorted(os.listdir(trace_dir)):
            path = os.path.join(trace_dir, filename)
            if not os.path.isfile(path):
                continue
            if not filename.endswith(TRACE_SUFFIXES):
                continue
            label = trace_label(filename)
            if label in by_label:
                raise ValueError(
                    f"ambiguous trace corpus: {filename!r} and "
                    f"{os.path.basename(by_label[label])!r} both resolve to "
                    f"workload {TRACE_PREFIX}{label}")
            by_label[label] = path
        return [
            WorkloadEntry(
                name=f"{TRACE_PREFIX}{label}", kind="trace",
                description=f"recorded branch trace ({os.path.basename(path)})",
                path=path, digest=_file_digest(path))
            for label, path in by_label.items()
        ]

    def _build_sets(self) -> Dict[str, Tuple[str, ...]]:
        synthetic = [name for name, entry in self._entries.items()
                     if entry.kind == "synthetic"]
        traces = [name for name, entry in self._entries.items()
                  if entry.kind == "trace"]
        profiles = SPEC_PROFILES
        return {
            "int": tuple(n for n in synthetic if n in _INT_BENCHMARKS),
            "fp": tuple(n for n in synthetic if n not in _INT_BENCHMARKS),
            "large_footprint": tuple(
                n for n in synthetic
                if profiles[n].static_conditional >= _LARGE_FOOTPRINT_SITES),
            "indirect_heavy": tuple(
                n for n in synthetic
                if profiles[n].static_indirect >= _INDIRECT_SITES
                or profiles[n].indirect_fraction >= _INDIRECT_FRACTION),
            "all": tuple(synthetic),
            "traces": tuple(traces),
        }

    # -- lookup -----------------------------------------------------------------
    def names(self) -> List[str]:
        """Every registered workload name, synthetic profiles first."""
        return list(self._entries)

    def sets(self) -> Dict[str, Tuple[str, ...]]:
        """The named benchmark sets (name → member workload names)."""
        return dict(self._sets)

    def entry(self, name: str) -> WorkloadEntry:
        """Look up one workload entry.

        Raises:
            UnknownBenchSetError: for an unregistered name.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownBenchSetError(name, tuple(self._sets)) from None

    def select(self, selector: str) -> List[WorkloadEntry]:
        """Resolve a benchmark-set selector into a duplicate-pruned selection.

        A selector is one or more ``+``-joined tokens; each token is a set
        name (``int``, ``fp``, ``large_footprint``, ``indirect_heavy``,
        ``all``, ``traces``) or an individual workload name (``gcc``,
        ``trace:mybench``).  First appearance wins, so overlapping unions
        like ``int+large_footprint`` keep one copy of each member in
        selection order.

        Raises:
            UnknownBenchSetError: for a token that is neither a set nor a
                registered workload.
        """
        names: List[str] = []
        for token in selector.split("+"):
            token = token.strip()
            if not token:
                continue
            if token in self._sets:
                names.extend(self._sets[token])
            elif token in self._entries:
                names.append(token)
            else:
                raise UnknownBenchSetError(token, tuple(self._sets))
        if not names:
            raise UnknownBenchSetError(selector, tuple(self._sets))
        deduped = list(dict.fromkeys(names))
        return [self._entries[name] for name in deduped]

    def make_workload(self, name: str, seed: int = 0):
        """Instantiate a registered workload.

        Synthetic entries build a
        :class:`~repro.workloads.generator.SyntheticWorkload` with the given
        seed; trace entries replay their corpus file as a
        :class:`~repro.workloads.traceio.TraceWorkload` (the recording is
        the behaviour, so ``seed`` does not apply) named after the registry
        entry so result labels match the selector.
        """
        entry = self.entry(name)
        if entry.kind == "trace":
            return TraceWorkload.from_file(entry.path, name=entry.name)
        from .generator import make_workload

        return make_workload(name, seed=seed)

    def digest(self, name: str) -> Optional[str]:
        """Content digest of a workload (``None`` for synthetic entries)."""
        return self.entry(name).digest


def get_registry(trace_dir: Optional[str] = None) -> WorkloadRegistry:
    """Build the registry for a trace directory (``REPRO_TRACE_DIR`` default).

    Constructed fresh on every call: the corpus directory is tiny to scan,
    and a stale digest cached across a corpus edit would poison
    store-addressed results.
    """
    return WorkloadRegistry(trace_dir if trace_dir is not None
                            else env_trace_dir())
