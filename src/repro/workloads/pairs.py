"""The paper's benchmark pairings (Table 3).

Twelve two-benchmark combinations are defined for the single-threaded core
(a foreground *target* benchmark time-sharing the core with a *background*
benchmark under the OS scheduler) and twelve for the SMT-2 core (both
benchmarks running concurrently on the two hardware threads).  Quad
combinations for the SMT-4 flush study (Figure 2) are formed by merging
consecutive SMT-2 pairs, since the paper does not list its SMT-4 sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .generator import SyntheticWorkload
from .spec_profiles import get_profile

__all__ = [
    "BenchmarkPair",
    "SINGLE_THREAD_PAIRS",
    "SMT2_PAIRS",
    "SMT4_QUADS",
    "UnknownPairSetError",
    "case_names",
    "get_pair",
    "make_pair_workloads",
]


class UnknownPairSetError(KeyError):
    """Raised for an unknown pair-set name, listing the valid sets.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers
    keep working, but renders a proper message (the repo's strict
    named-source convention, like ``REPRO_SCALE``/``REPRO_BACKEND``).
    """

    def __init__(self, which: str, valid: Tuple[str, ...]) -> None:
        super().__init__(which)
        self.which = which
        self.valid = valid

    def __str__(self) -> str:
        options = ", ".join(sorted(self.valid))
        return f"unknown pair set {self.which!r} (valid sets: {options})"


@dataclass(frozen=True)
class BenchmarkPair:
    """One Table 3 case.

    Attributes:
        case: case label (``case1`` ... ``case12``).
        benchmarks: benchmark names; the first is the *target* benchmark whose
            execution time the single-thread experiments measure.
    """

    case: str
    benchmarks: Tuple[str, ...]

    @property
    def target(self) -> str:
        """The foreground/target benchmark."""
        return self.benchmarks[0]

    @property
    def background(self) -> Tuple[str, ...]:
        """The co-running benchmark(s)."""
        return self.benchmarks[1:]

    def label(self) -> str:
        """Human-readable label, e.g. ``gcc+calculix``."""
        return "+".join(self.benchmarks)


#: Table 3, column "Single-threaded core".
SINGLE_THREAD_PAIRS: List[BenchmarkPair] = [
    BenchmarkPair("case1", ("gcc", "calculix")),
    BenchmarkPair("case2", ("milc", "povray")),
    BenchmarkPair("case3", ("bzip2_source", "soplex")),
    BenchmarkPair("case4", ("namd", "sphinx3")),
    BenchmarkPair("case5", ("hmmer", "GemsFDTD")),
    BenchmarkPair("case6", ("gobmk", "libquantum")),
    BenchmarkPair("case7", ("gromacs", "GemsFDTD")),
    BenchmarkPair("case8", ("mcf", "astar")),
    BenchmarkPair("case9", ("soplex", "hmmer")),
    BenchmarkPair("case10", ("libquantum", "calculix")),
    BenchmarkPair("case11", ("mcf", "perlbench")),
    BenchmarkPair("case12", ("bwaves", "namd")),
]

#: Table 3, column "SMT-2".
SMT2_PAIRS: List[BenchmarkPair] = [
    BenchmarkPair("case1", ("zeusmp", "lbm")),
    BenchmarkPair("case2", ("zeusmp", "dealII")),
    BenchmarkPair("case3", ("bwaves", "milc")),
    BenchmarkPair("case4", ("leslie3d", "gromacs")),
    BenchmarkPair("case5", ("dealII", "sjeng")),
    BenchmarkPair("case6", ("gromacs", "astar")),
    BenchmarkPair("case7", ("gobmk", "h264ref")),
    BenchmarkPair("case8", ("libquantum", "milc")),
    BenchmarkPair("case9", ("gobmk", "gromacs")),
    BenchmarkPair("case10", ("milc", "bzip2_source")),
    BenchmarkPair("case11", ("libquantum", "omnetpp")),
    BenchmarkPair("case12", ("zeusmp", "gobmk")),
]

#: SMT-4 combinations formed from consecutive SMT-2 pairs (Figure 2).
SMT4_QUADS: List[BenchmarkPair] = [
    BenchmarkPair(f"quad{i + 1}",
                  SMT2_PAIRS[2 * i].benchmarks + SMT2_PAIRS[2 * i + 1].benchmarks)
    for i in range(len(SMT2_PAIRS) // 2)
]

_PAIR_SETS: Dict[str, List[BenchmarkPair]] = {
    "single": SINGLE_THREAD_PAIRS,
    "smt2": SMT2_PAIRS,
    "smt4": SMT4_QUADS,
}


def _pair_set(which: str) -> List[BenchmarkPair]:
    try:
        return _PAIR_SETS[which]
    except KeyError:
        raise UnknownPairSetError(which, tuple(_PAIR_SETS)) from None


def case_names(which: str = "single") -> List[str]:
    """Case labels of a pair set (``single``, ``smt2`` or ``smt4``).

    Raises:
        UnknownPairSetError: for a pair-set name outside those three.
    """
    return [pair.case for pair in _pair_set(which)]


def get_pair(case: str, which: str = "single") -> BenchmarkPair:
    """Look up a case by label.

    Raises:
        UnknownPairSetError: when the pair-set name is unknown.
        KeyError: when the case label is unknown.
    """
    for pair in _pair_set(which):
        if pair.case == case:
            return pair
    raise KeyError(f"unknown case {case!r} in pair set {which!r}")


#: Address-space offset between the co-running programs of a pair.  Distinct
#: programs place their hot branches at unrelated addresses, so branches from
#: different contexts should collide in the prediction tables only
#: incidentally (destructively as often as constructively), not line up
#: site-for-site.  The stride is word-aligned and deliberately not a multiple
#: of any table size so that it also perturbs the low-order index bits.
_SLOT_TEXT_STRIDE = 0x0061_A8C4


def make_pair_workloads(pair: BenchmarkPair, seed: int = 0) -> List[SyntheticWorkload]:
    """Instantiate the workloads of a pair with per-benchmark seeds.

    Each slot of the pair gets its own text-segment base address (see
    :data:`_SLOT_TEXT_STRIDE`) so that co-running programs do not
    systematically alias onto the same predictor entries, mirroring the
    unrelated code layouts of real SPEC pairs.

    Benchmark names carrying the ``trace:`` prefix are resolved through
    :func:`repro.workloads.registry.get_registry` into replayed
    :class:`~repro.workloads.traceio.TraceWorkload` instances (the trace
    corpus under ``REPRO_TRACE_DIR``); a recorded trace has fixed
    addresses, so the per-slot text stride does not apply to it.
    """
    workloads = []
    for i, name in enumerate(pair.benchmarks):
        if name.startswith("trace:"):
            from .registry import get_registry

            workloads.append(get_registry().make_workload(name))
        else:
            workloads.append(SyntheticWorkload(get_profile(name), seed=seed + i,
                                               text_base=0x0040_0000 + i * _SLOT_TEXT_STRIDE))
    return workloads
