"""Deterministic synthetic branch-trace generator.

Given a :class:`repro.workloads.spec_profiles.BenchmarkProfile`, the generator
builds a static population of branch sites (loops, biased branches,
history-correlated branches, hard branches, calls/returns and indirect jumps)
laid out over a synthetic text segment, then emits an endless, reproducible
stream of :class:`repro.workloads.trace.BranchRecord` whose aggregate
behaviour matches the profile: branch density, taken ratio, working-set size,
predictability mix and BTB/RAS traffic.

The stream is driven by a seeded :class:`random.Random`, so the same
(profile, seed) pair always produces the same trace — experiments are
reproducible and paired comparisons (Baseline vs. protected) see identical
workloads.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..types import BranchType
from .spec_profiles import BenchmarkProfile, get_profile
from .trace import BranchRecord

__all__ = ["BranchSite", "SyntheticWorkload", "make_workload"]

# Behaviour classes of conditional branch sites.
_LOOP = 0
_BIASED = 1
_PATTERN = 2
_RANDOM = 3


def _stable_hash(text: str) -> int:
    """Deterministic string hash (``hash()`` is salted per process)."""
    value = 0x811C9DC5
    for ch in text:
        value ^= ord(ch)
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value


@dataclass
class BranchSite:
    """A static conditional branch site.

    Attributes:
        pc: instruction address.
        target: taken-path target address.
        kind: behaviour class (loop, biased, pattern, random).
        param: class parameter (trip count, bias, local pattern, ...).
        aux: secondary parameter (dominant direction, pattern period, ...).
    """

    pc: int
    target: int
    kind: int
    param: float
    aux: float = 0.0


class SyntheticWorkload:
    """Reproducible branch-trace stream for one benchmark profile.

    Args:
        profile: the benchmark behaviour profile (or its Table 3 name).
        seed: RNG seed; combined with the profile name so different
            benchmarks sharing a seed still diverge.
        text_base: base address of the synthetic text segment.
    """

    def __init__(self, profile, seed: int = 0, text_base: int = 0x0040_0000) -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile: BenchmarkProfile = profile
        self.seed = seed
        self._text_base = text_base
        rng = random.Random((_stable_hash(profile.name) ^ (seed * 0x9E3779B1))
                            & 0xFFFFFFFF)
        self._build_rng = rng
        self._sites: List[BranchSite] = []
        self._call_sites: List[int] = []
        self._indirect_sites: List[tuple] = []
        self._cumulative_weights: List[float] = []
        self._build_population()
        self._mean_gap = max(1.0, 1.0 / max(profile.branch_ratio, 1e-3) - 1.0)

    # -- population construction -----------------------------------------------
    def _place_pc(self, index: int) -> int:
        # Spread sites over a text segment with function-sized clustering so
        # that BTB sets and tags are exercised realistically.
        function = index // 24
        offset_in_function = index % 24
        return (self._text_base + function * 0x400
                + offset_in_function * 12 + (self._build_rng.randrange(3) * 4))

    def _build_population(self) -> None:
        profile = self.profile
        rng = self._build_rng
        n = profile.static_conditional
        counts = [int(round(n * f)) for f in (profile.loop_fraction,
                                              profile.biased_fraction,
                                              profile.pattern_fraction)]
        counts.append(max(0, n - sum(counts)))
        kinds = ([_LOOP] * counts[0] + [_BIASED] * counts[1]
                 + [_PATTERN] * counts[2] + [_RANDOM] * counts[3])
        rng.shuffle(kinds)

        for i, kind in enumerate(kinds):
            pc = self._place_pc(i)
            target = pc + rng.choice([-1, 1]) * rng.randrange(16, 512, 4)
            if kind == _LOOP:
                trip = max(2, int(rng.expovariate(1.0 / profile.mean_trip_count)) + 2)
                site = BranchSite(pc, pc - rng.randrange(16, 256, 4), _LOOP,
                                  float(trip))
            elif kind == _BIASED:
                # Strongly biased branches skew towards not-taken (guard/error
                # checks), keeping the overall taken ratio near the ~60% that
                # real integer codes exhibit once loop back-edges are added.
                dominant_taken = rng.random() < 0.40
                site = BranchSite(pc, target, _BIASED, profile.bias_strength,
                                  1.0 if dominant_taken else 0.0)
            elif kind == _PATTERN:
                # A short repeating local outcome pattern (e.g. TTNTN...): fully
                # deterministic, so history-based predictors learn it while a
                # lone 2-bit counter cannot.
                period = rng.randrange(2, max(3, min(profile.pattern_history, 8) + 1))
                pattern = 0
                while pattern in (0, (1 << period) - 1):
                    pattern = rng.getrandbits(period)
                site = BranchSite(pc, target, _PATTERN, float(pattern), float(period))
            else:
                bias = rng.uniform(0.70, 0.90)
                dominant_taken = rng.random() < 0.5
                site = BranchSite(pc, target, _RANDOM, bias,
                                  1.0 if dominant_taken else 0.0)
            self._sites.append(site)

        # Zipf-like reuse weights over a shuffled hotness order.
        order = list(range(len(self._sites)))
        rng.shuffle(order)
        weights = [0.0] * len(self._sites)
        for rank, site_index in enumerate(order):
            weights[site_index] = 1.0 / ((rank + 1) ** self.profile.locality)
        total = 0.0
        self._cumulative_weights = []
        for w in weights:
            total += w
            self._cumulative_weights.append(total)

        # Call and indirect-branch sites.
        for i in range(profile.static_calls):
            self._call_sites.append(self._text_base + 0x100000 + i * 0x200)
        for i in range(profile.static_indirect):
            pc = self._text_base + 0x180000 + i * 0x140
            targets = [pc + 0x40 + t * 0x80 for t in range(profile.indirect_targets)]
            self._indirect_sites.append((pc, targets))

    # -- accessors ---------------------------------------------------------------
    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.profile.name

    @property
    def sites(self) -> List[BranchSite]:
        """Static conditional branch sites."""
        return self._sites

    def static_branch_count(self) -> int:
        """Number of distinct conditional branch addresses."""
        return len(self._sites)

    def working_set_size(self) -> int:
        """Size of the active branch working set (sites in flight at a time).

        Large-code benchmarks (gcc, gobmk, perlbench) keep a few hundred
        branch sites hot — matching the residual-BTB-entry counts the paper
        quotes — while kernel-dominated FP codes keep only a few dozen.
        """
        return max(16, min(448, self.profile.static_conditional // 14))

    # -- trace generation --------------------------------------------------------
    def record_batches(self, n: int = 1024,
                       seed_offset: int = 0, *,
                       gap_block=None) -> Iterator[List[tuple]]:
        """Endless stream of branch-record *batches* (the engine hot path).

        Each yielded batch is a list of at least ``n`` plain tuples
        ``(pc, taken, target, branch_type, instructions, syscall_after)``
        where ``instructions`` is the record's committed-instruction count
        (the branch itself plus its preceding gap, i.e.
        :attr:`repro.workloads.trace.BranchRecord.instructions`) and
        ``syscall_after`` is the embedded privilege-switch marker — always
        ``False`` for synthetic workloads, whose system calls are driven by
        the profile's periodic rate instead (recorded traces carry real
        markers through the same tuple slot).  Batches can slightly exceed
        ``n`` because loop bodies and call/return pairs are emitted
        atomically.

        The tuple stream is the *primary* generator: :meth:`records` is a thin
        wrapper around it, so both APIs produce identical traces for the same
        ``(profile, seed, seed_offset)`` and experiments may freely mix them.
        Pre-generating tuples in chunks removes the per-branch generator
        resume and :class:`BranchRecord` allocation cost from the simulation
        loop.

        The stream walks an *active working set* of branch sites that drifts
        slowly over the full static population: real programs execute within a
        phase (a loop nest, a function neighbourhood) and revisit the same
        branches many times before moving on.  This is what gives predictors
        something to warm up — and what a flush or key change throws away.

        Args:
            n: minimum number of records per yielded batch.
            seed_offset: perturbs the dynamic RNG so the same workload can be
                replayed with a different interleaving (used by SMT runs to
                decorrelate the two copies of a benchmark).
            gap_block: optional bulk gap sampler
                ``gap_block(rng, count, neg_mean_gap) -> [gap, ...]`` used
                for whole loop bursts.  It must consume exactly ``count``
                ``rng.random()`` draws and return the same
                ``int(log(1 - u) * neg_mean_gap) + 1`` values the scalar
                path would produce, so the record stream stays
                bit-identical (the numpy backend supplies a vectorized
                implementation).
        """
        profile = self.profile
        rng = random.Random((_stable_hash(profile.name)
                             ^ ((self.seed + seed_offset + 1) * 0x85EBCA6B))
                            & 0xFFFFFFFF)
        cumulative = self._cumulative_weights
        total_weight = cumulative[-1]
        sites = self._sites
        call_prob = profile.call_fraction / max(profile.conditional_fraction, 1e-6)
        indirect_prob = profile.indirect_fraction / max(profile.conditional_fraction, 1e-6)
        indirect_sites = self._indirect_sites
        call_sites = self._call_sites
        indirect_counters = [0] * max(1, len(indirect_sites))
        pattern_phase = [0] * len(sites)

        # Local bindings for the per-record hot loop.
        random_ = rng.random
        randrange = rng.randrange
        choice = rng.choice
        log = math.log
        bisect_left = bisect.bisect_left
        # Geometric-gap constant: multiplying by the (negated) mean replaces
        # the per-record division by its inverse.
        neg_mean_gap = -self._mean_gap
        conditional = BranchType.CONDITIONAL
        call_type = BranchType.CALL
        return_type = BranchType.RETURN
        indirect_type = BranchType.INDIRECT
        loop_kind, pattern_kind = _LOOP, _PATTERN
        # Per-site constants as parallel lists: one list index replaces an
        # attribute (instance-dict) load per field in the record loop.
        site_pc = [site.pc for site in sites]
        site_target = [site.target for site in sites]
        site_kind = [site.kind for site in sites]
        site_param = [site.param for site in sites]
        site_param_int = [int(site.param) for site in sites]
        site_aux = [bool(site.aux) for site in sites]

        # Active working set: an *ordered*, nested-loop-like tour of branch
        # sites.  Real code is loops over code — a small inner region (a
        # "block" of sites) repeats several times, then execution moves to the
        # next region, and the whole working set is revisited tour after tour.
        # This is what makes global-history predictors work, keeps each
        # thread's dynamic table footprint compact, and gives residual
        # predictor state its value (the thing a flush or key change throws
        # away).  The working set itself drifts slowly across the static
        # population (phase changes), and occasional random jumps model
        # data-dependent paths.
        window = self.working_set_size()
        active = [bisect_left(cumulative, random_() * total_weight)
                  for _ in range(window)]
        drift_probability = 1.0 / max(32, window)
        jump_probability = 0.01
        block_size = min(16, window)
        block_start = 0
        block_position = 0
        block_repeats = 1 + randrange(6)

        # Batched RNG for the per-iteration Bernoulli events (working-set
        # drift, call/return pairs, indirect jumps): instead of drawing one
        # uniform per iteration per event, the number of iterations until the
        # next occurrence is sampled geometrically (the inverse-CDF of the
        # same per-trial process), one draw per *event*.  ``inf`` disables an
        # event; a non-positive log argument never occurs since
        # ``1 - random() ∈ (0, 1]``.
        never = float("inf")
        drift_log1m = log(1.0 - drift_probability)
        if call_sites and call_prob > 0.0:
            call_log1m = log(1.0 - call_prob) if call_prob < 1.0 else None
        else:
            call_log1m = never
        if indirect_sites and indirect_prob > 0.0:
            indirect_log1m = (log(1.0 - indirect_prob)
                              if indirect_prob < 1.0 else None)
        else:
            indirect_log1m = never

        def skip(log1m):
            """Iterations until the next event (0 = this iteration)."""
            if log1m is never:
                return never
            if log1m is None:  # probability >= 1: fires every iteration
                return 0
            return int(log(1.0 - random_()) / log1m)

        drift_skip = skip(drift_log1m)
        call_skip = skip(call_log1m)
        indirect_skip = skip(indirect_log1m)

        batch: List[tuple] = []
        append = batch.append

        while True:
            if drift_skip > 0:
                drift_skip -= 1
            else:
                active[randrange(window)] = bisect_left(cumulative,
                                                        random_() * total_weight)
                drift_skip = skip(drift_log1m)
            # Advance the nested-loop tour.
            block_position += 1
            if block_position >= block_size:
                block_position = 0
                block_repeats -= 1
                if block_repeats <= 0:
                    block_repeats = 1 + randrange(6)
                    if random_() < jump_probability:
                        block_start = randrange(window)
                    else:
                        block_start = (block_start + block_size) % window
            site_index = active[(block_start + block_position) % window]

            kind = site_kind[site_index]
            if kind == loop_kind:
                trip = site_param_int[site_index]
                pc = site_pc[site_index]
                target = site_target[site_index]
                # Emit the whole loop: (trip - 1) taken back-edges, then exit.
                if gap_block is not None and trip >= 4:
                    # Draw all `trip` gaps in one bulk call; the hook must
                    # replay rng.random() bit-exactly (same draws, same
                    # order), so both paths yield identical records.
                    gaps = gap_block(rng, trip, neg_mean_gap)
                    last = trip - 1
                    batch.extend(
                        (pc, True, target, conditional, gaps[k], False)
                        for k in range(last))
                    append((pc, False, target, conditional, gaps[last], False))
                else:
                    for _ in range(trip - 1):
                        append((pc, True, target, conditional,
                                int(log(1.0 - random_()) * neg_mean_gap) + 1,
                                False))
                    append((pc, False, target, conditional,
                            int(log(1.0 - random_()) * neg_mean_gap) + 1,
                            False))
            else:
                if kind == pattern_kind:
                    period = int(sites[site_index].aux)
                    phase = pattern_phase[site_index]
                    taken = bool((site_param_int[site_index]
                                  >> (phase % period)) & 1)
                    pattern_phase[site_index] = (phase + 1) % period
                else:  # biased and random sites share the draw shape
                    taken = ((random_() < site_param[site_index])
                             == site_aux[site_index])
                append((site_pc[site_index], taken, site_target[site_index],
                        conditional,
                        int(log(1.0 - random_()) * neg_mean_gap) + 1, False))

            # Occasionally interleave call/return pairs and indirect jumps.
            if call_skip > 0:
                call_skip -= 1
            else:
                call_pc = choice(call_sites)
                callee = call_pc + 0x1000
                append((call_pc, True, callee, call_type,
                        int(log(1.0 - random_()) * neg_mean_gap) + 1, False))
                append((callee + 0x40, True, call_pc + 4, return_type,
                        int(log(1.0 - random_()) * neg_mean_gap) + 1, False))
                call_skip = skip(call_log1m)
            if indirect_skip > 0:
                indirect_skip -= 1
            else:
                index = randrange(len(indirect_sites))
                pc, targets = indirect_sites[index]
                indirect_counters[index] += 1
                # Targets rotate deterministically so the BTB is neither
                # perfect nor hopeless on indirect branches.
                target = targets[indirect_counters[index] % len(targets)]
                append((pc, True, target, indirect_type,
                        int(log(1.0 - random_()) * neg_mean_gap) + 1, False))
                indirect_skip = skip(indirect_log1m)

            if len(batch) >= n:
                yield batch
                batch = []
                append = batch.append

    def records(self, seed_offset: int = 0) -> Iterator[BranchRecord]:
        """Endless stream of branch records (one :class:`BranchRecord` each).

        Implemented on top of :meth:`record_batches`, so both APIs emit the
        same deterministic trace for the same ``(profile, seed, seed_offset)``.

        Args:
            seed_offset: perturbs the dynamic RNG so the same workload can be
                replayed with a different interleaving (used by SMT runs to
                decorrelate the two copies of a benchmark).
        """
        for batch in self.record_batches(256, seed_offset):
            for pc, taken, target, branch_type, instructions, syscall in batch:
                yield BranchRecord(pc, taken, target, branch_type,
                                   instructions - 1, syscall)

    def segment(self, n_branches: int, seed_offset: int = 0) -> List[BranchRecord]:
        """Materialise the first ``n_branches`` records of the stream."""
        return list(itertools.islice(self.records(seed_offset), n_branches))


def make_workload(name: str, seed: int = 0,
                  profile: Optional[BenchmarkProfile] = None) -> SyntheticWorkload:
    """Convenience constructor by benchmark name."""
    return SyntheticWorkload(profile if profile is not None else get_profile(name),
                             seed=seed)
