"""Branch-trace persistence and replay.

The synthetic workloads in :mod:`repro.workloads.generator` stand in for the
paper's SPEC CPU2006 runs, but a downstream user may have *real* branch
traces (from a gem5 run, a Pin tool, or an FPGA trace port).  This module
defines a small line-oriented text format for such traces, readers/writers
for it (with optional gzip compression), and :class:`TraceWorkload`, which
replays a recorded trace through the same CPU timing models as the synthetic
workloads.

Format
------
One record per line, comma separated::

    pc,taken,target,type,gap,syscall

* ``pc`` and ``target`` are hexadecimal (``0x`` prefix optional) — **always**
  hexadecimal: a bare ``400510`` is ``0x400510``, never decimal, and octal or
  decimal spellings are rejected;
* ``taken`` and ``syscall`` are ``0``/``1``;
* ``type`` is one of ``cond``, ``direct``, ``indirect``, ``call``, ``ret``;
* ``gap`` is the number of non-branch instructions since the previous branch.

Lines starting with ``#`` are comments.  Trailing fields may be omitted and
default to ``gap=8``, ``syscall=0``.
"""

from __future__ import annotations

import gzip
import io
import re
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Sequence

from ..types import BranchType
from .trace import BranchRecord, TraceStats, collect_stats

__all__ = [
    "TRACE_SUFFIXES",
    "TraceFormatError",
    "format_record",
    "parse_record",
    "trace_label",
    "write_trace",
    "read_trace",
    "TraceWorkload",
    "record_workload",
]

_TYPE_NAMES = {
    BranchType.CONDITIONAL: "cond",
    BranchType.DIRECT: "direct",
    BranchType.INDIRECT: "indirect",
    BranchType.CALL: "call",
    BranchType.RETURN: "ret",
}
_TYPES_BY_NAME = {name: kind for kind, name in _TYPE_NAMES.items()}


class TraceFormatError(ValueError):
    """Raised when a trace line cannot be parsed."""


_HEX_DIGITS = frozenset("0123456789abcdef")


def _parse_address(field: str, name: str, lineno: int, line: str) -> int:
    """Parse an address field strictly as hexadecimal.

    The documented format reads ``pc``/``target`` as hex with the ``0x``
    prefix optional, so a bare ``400510`` is ``0x400510`` — not decimal —
    and letter-bearing addresses like ``4004f0`` are valid.  Anything that
    is not a plain hex digit string (``0o``/``0b`` prefixes, signs,
    underscores, empty fields) is rejected by name rather than silently
    reinterpreted in another base.
    """
    digits = field.lower()
    if digits.startswith("0x"):
        digits = digits[2:]
    if not digits or not _HEX_DIGITS.issuperset(digits):
        raise TraceFormatError(
            f"line {lineno}: {name} field {field!r} is not a hexadecimal "
            f"address (pc/target are always hex, 0x prefix optional): {line!r}")
    return int(digits, 16)


def format_record(record: BranchRecord) -> str:
    """Render one :class:`BranchRecord` as a trace line."""
    return (f"0x{record.pc:x},{int(record.taken)},0x{record.target:x},"
            f"{_TYPE_NAMES[record.branch_type]},{record.gap},"
            f"{int(record.syscall_after)}")


def parse_record(line: str, lineno: int = 0) -> BranchRecord:
    """Parse one trace line into a :class:`BranchRecord`.

    Raises:
        TraceFormatError: when the line is malformed.
    """
    fields = [part.strip() for part in line.split(",")]
    if len(fields) < 4:
        raise TraceFormatError(
            f"line {lineno}: expected at least 4 fields, got {len(fields)}: {line!r}")
    pc = _parse_address(fields[0], "pc", lineno, line)
    target = _parse_address(fields[2], "target", lineno, line)
    try:
        taken = bool(int(fields[1]))
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad taken field: {line!r}") from exc
    type_name = fields[3].lower()
    if type_name not in _TYPES_BY_NAME:
        raise TraceFormatError(
            f"line {lineno}: unknown branch type {type_name!r} "
            f"(expected one of {sorted(_TYPES_BY_NAME)})")
    gap = 8
    syscall = False
    try:
        if len(fields) > 4 and fields[4]:
            gap = int(fields[4])
        if len(fields) > 5 and fields[5]:
            syscall = bool(int(fields[5]))
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad gap/syscall field: {line!r}") from exc
    if gap < 0:
        raise TraceFormatError(f"line {lineno}: gap must be non-negative")
    return BranchRecord(pc=pc, taken=taken, target=target,
                        branch_type=_TYPES_BY_NAME[type_name],
                        gap=gap, syscall_after=syscall)


#: File suffixes recognised as trace-file extensions (label stripping and
#: corpus-directory scans).  Order matters only in that stripping iterates
#: until no known suffix remains (``gcc.trace.gz`` → ``gcc``).
TRACE_SUFFIXES = (".gz", ".txt", ".trace")


def trace_label(path: str) -> str:
    """Workload label for a trace path: base name minus known suffixes.

    Splits on both ``/`` and ``\\`` (trace corpora are routinely copied
    from Windows machines), then strips only the suffixes in
    :data:`TRACE_SUFFIXES` — an interior dot is part of the name, so
    ``trace.v2.gz`` keeps its ``v2``.
    """
    base = re.split(r"[\\/]", path)[-1]
    stripped = True
    while stripped:
        stripped = False
        for suffix in TRACE_SUFFIXES:
            if base.endswith(suffix) and len(base) > len(suffix):
                base = base[: -len(suffix)]
                stripped = True
    return base


def _open_for_write(path: str) -> IO[str]:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: str) -> IO[str]:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def write_trace(records: Iterable[BranchRecord], path: str, *,
                header: Optional[str] = None) -> int:
    """Write records to a trace file (gzip-compressed when ``path`` ends in .gz).

    Args:
        records: branch records to store.
        path: output file path.
        header: optional comment written as the first line.

    Returns:
        The number of records written.
    """
    count = 0
    with _open_for_write(path) as handle:
        if header:
            handle.write(f"# {header}\n")
        handle.write("# pc,taken,target,type,gap,syscall\n")
        for record in records:
            handle.write(format_record(record) + "\n")
            count += 1
    return count


def read_trace(path: str, *, limit: Optional[int] = None) -> List[BranchRecord]:
    """Read a trace file written by :func:`write_trace`.

    Args:
        path: trace file path (gzip-compressed when it ends in ``.gz``).
        limit: stop after this many records when given.

    Returns:
        The parsed records.

    Raises:
        TraceFormatError: when a line is malformed.
    """
    records: List[BranchRecord] = []
    with _open_for_read(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            records.append(parse_record(stripped, lineno))
            if limit is not None and len(records) >= limit:
                break
    return records


@dataclass
class _TraceProfile:
    """Minimal profile facade so a replayed trace can drive the OS models.

    Only the attribute actually consumed by
    :class:`repro.cpu.scheduler.SyscallModel` is provided; when the trace
    embeds explicit ``syscall`` markers, the periodic model is disabled by
    setting the rate to zero and the embedded markers drive privilege
    switches instead.
    """

    privilege_switches_per_million_cycles: float = 0.0


class TraceWorkload:
    """Replays a recorded branch trace through the CPU timing models.

    Presents the same interface as
    :class:`repro.workloads.generator.SyntheticWorkload` (``name``,
    ``records()``, ``segment()``, ``profile``), so it can be passed anywhere a
    synthetic workload is accepted — including the Table 3 pair runners.  The
    trace is replayed cyclically so that arbitrarily long simulations can be
    driven from a finite recording.

    Args:
        records: the recorded branch records (must be non-empty).
        name: workload label used in results.
        syscall_rate_per_million_cycles: optional periodic privilege-switch
            rate; leave at 0 when the trace carries its own ``syscall``
            markers.
    """

    def __init__(self, records: Sequence[BranchRecord], name: str = "trace", *,
                 syscall_rate_per_million_cycles: float = 0.0) -> None:
        if not records:
            raise ValueError("a trace workload needs at least one record")
        self._records = list(records)
        self._name = name
        self.profile = _TraceProfile(syscall_rate_per_million_cycles)

    @classmethod
    def from_file(cls, path: str, name: Optional[str] = None, *,
                  limit: Optional[int] = None,
                  syscall_rate_per_million_cycles: float = 0.0) -> "TraceWorkload":
        """Load a trace file into a replayable workload.

        The default label is the file's base name with only the *known*
        trace suffixes (``.gz``, ``.txt``, ``.trace``) stripped — so
        ``corpus/trace.v2.gz`` becomes ``trace.v2`` (not ``trace``) and a
        Windows-style ``traces\\gcc.trace`` becomes ``gcc``.
        """
        records = read_trace(path, limit=limit)
        label = name if name is not None else trace_label(path)
        return cls(records, label,
                   syscall_rate_per_million_cycles=syscall_rate_per_million_cycles)

    @property
    def name(self) -> str:
        """Workload label used in results."""
        return self._name

    def __len__(self) -> int:
        return len(self._records)

    def stats(self) -> TraceStats:
        """Summary statistics of one pass over the recorded trace."""
        return collect_stats(self._records)

    def records(self, seed_offset: int = 0) -> Iterator[BranchRecord]:
        """Yield records cyclically, starting at an offset for variety."""
        n = len(self._records)
        position = (seed_offset * 7919) % n
        while True:
            yield self._records[position]
            position += 1
            if position >= n:
                position = 0

    def record_batches(self, n: int = 1024,
                       seed_offset: int = 0) -> Iterator[List[tuple]]:
        """Endless stream of ``(pc, taken, target, type, instructions,
        syscall_after)`` batches.

        The chunked counterpart of :meth:`records` (same cyclic replay, same
        starting offset), matching
        :meth:`repro.workloads.generator.SyntheticWorkload.record_batches`
        so recorded traces drive the batched simulation engine too.  The
        trailing ``syscall_after`` marker carries the trace's embedded
        privilege switches into the batched engines — without it the
        scalar and batched replays of a marker-bearing trace would
        diverge.
        """
        tuples = [(r.pc, r.taken, r.target, r.branch_type, r.instructions,
                   r.syscall_after)
                  for r in self._records]
        n_records = len(tuples)
        position = (seed_offset * 7919) % n_records
        while True:
            batch: List[tuple] = []
            while len(batch) < n:
                take = min(n - len(batch), n_records - position)
                batch.extend(tuples[position:position + take])
                position = (position + take) % n_records
            yield batch

    def segment(self, n_branches: int, seed_offset: int = 0) -> List[BranchRecord]:
        """Return the next ``n_branches`` records as a list."""
        iterator = self.records(seed_offset)
        return [next(iterator) for _ in range(n_branches)]


def record_workload(workload, n_branches: int, path: str, *,
                    seed_offset: int = 0) -> int:
    """Record a finite segment of any workload to a trace file.

    Args:
        workload: any object with a ``segment(n_branches, seed_offset)`` method
            (synthetic or trace workloads alike).
        n_branches: number of branch records to capture.
        path: output trace path.
        seed_offset: forwarded to the workload.

    Returns:
        The number of records written.
    """
    records = workload.segment(n_branches, seed_offset)
    header = f"recorded from {getattr(workload, 'name', 'workload')} ({n_branches} branches)"
    return write_trace(records, path, header=header)
