"""Branch trace primitives.

The CPU timing model is trace driven: a workload is a deterministic stream of
:class:`BranchRecord` objects, each describing one committed branch, the
number of non-branch instructions preceding it, and whether the program
performs a system call right after it (the privilege-switch events that
Section 6.2.2 identifies as the dominant cause of key regeneration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from ..types import BranchType

__all__ = ["BranchRecord", "TraceStats", "collect_stats"]


@dataclass(slots=True)
class BranchRecord:
    """One committed branch.

    Attributes:
        pc: branch instruction address.
        taken: resolved direction (True for unconditional branches).
        target: resolved target address when taken.
        branch_type: kind of branch.
        gap: number of non-branch instructions committed since the previous
            branch (drives the base cycle accounting).
        syscall_after: the program enters the kernel right after this branch
            (privilege switch to kernel and back).
    """

    pc: int
    taken: bool
    target: int
    branch_type: BranchType = BranchType.CONDITIONAL
    gap: int = 8
    syscall_after: bool = False

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (the branch plus its gap)."""
        return self.gap + 1


@dataclass
class TraceStats:
    """Summary statistics of a branch trace (used for calibration tests).

    Attributes:
        branches: total branch records.
        instructions: total instructions (branches plus gaps).
        conditional: number of conditional branches.
        taken_conditional: number of taken conditional branches.
        indirect: number of indirect branches (including indirect calls).
        calls: number of calls.
        returns: number of returns.
        syscalls: number of records followed by a system call.
        distinct_pcs: number of distinct branch addresses.
    """

    branches: int = 0
    instructions: int = 0
    conditional: int = 0
    taken_conditional: int = 0
    indirect: int = 0
    calls: int = 0
    returns: int = 0
    syscalls: int = 0
    distinct_pcs: int = 0

    @property
    def conditional_ratio(self) -> float:
        """Conditional branches per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.conditional / self.instructions

    @property
    def taken_ratio(self) -> float:
        """Fraction of conditional branches that are taken."""
        if self.conditional == 0:
            return 0.0
        return self.taken_conditional / self.conditional

    @property
    def syscalls_per_million_instructions(self) -> float:
        """System calls per million committed instructions."""
        if self.instructions == 0:
            return 0.0
        return 1e6 * self.syscalls / self.instructions


def collect_stats(records: Iterable[BranchRecord]) -> TraceStats:
    """Compute :class:`TraceStats` over a finite iterable of records."""
    stats = TraceStats()
    pcs = set()
    for record in records:
        stats.branches += 1
        stats.instructions += record.instructions
        pcs.add(record.pc)
        if record.branch_type is BranchType.CONDITIONAL:
            stats.conditional += 1
            if record.taken:
                stats.taken_conditional += 1
        elif record.branch_type in (BranchType.INDIRECT,):
            stats.indirect += 1
        elif record.branch_type is BranchType.CALL:
            stats.calls += 1
        elif record.branch_type is BranchType.RETURN:
            stats.returns += 1
        if record.syscall_after:
            stats.syscalls += 1
    stats.distinct_pcs = len(pcs)
    return stats


def materialise(records: Iterator[BranchRecord], limit: int) -> List[BranchRecord]:
    """Pull at most ``limit`` records from a generator into a list."""
    out: List[BranchRecord] = []
    for record in records:
        out.append(record)
        if len(out) >= limit:
            break
    return out
