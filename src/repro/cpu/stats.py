"""Simulation statistics containers."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List

__all__ = ["ThreadStats", "RunResult", "thread_stats_to_dict",
           "thread_stats_from_dict", "run_result_to_dict",
           "run_result_from_dict"]


@dataclass(slots=True)
class ThreadStats:
    """Per software-context (or per hardware-thread) execution statistics.

    Attributes:
        name: workload name.
        instructions: committed instructions.
        branches: committed branches of all kinds.
        conditional_branches: committed conditional branches.
        direction_mispredicts: conditional branches whose followed direction
            was wrong.
        target_mispredicts: correctly-directed taken branches whose predicted
            target was wrong or unavailable.
        btb_lookups: BTB probes.
        btb_hits: BTB probes that hit.
        cycles: cycles attributed to this context (base work + its penalties).
        syscalls: system calls performed.
        context_switches: times this context was switched in/out.
    """

    name: str = ""
    instructions: int = 0
    branches: int = 0
    conditional_branches: int = 0
    direction_mispredicts: int = 0
    target_mispredicts: int = 0
    btb_lookups: int = 0
    btb_hits: int = 0
    cycles: float = 0.0
    syscalls: int = 0
    context_switches: int = 0

    @property
    def mispredicts(self) -> int:
        """All redirect-causing mispredictions."""
        return self.direction_mispredicts + self.target_mispredicts

    @property
    def mpki(self) -> float:
        """Mispredictions per thousand instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredicts / self.instructions

    @property
    def direction_mpki(self) -> float:
        """Direction mispredictions per thousand instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.direction_mispredicts / self.instructions

    @property
    def direction_accuracy(self) -> float:
        """Conditional-branch direction prediction accuracy."""
        if self.conditional_branches == 0:
            return 1.0
        return 1.0 - self.direction_mispredicts / self.conditional_branches

    @property
    def btb_hit_rate(self) -> float:
        """BTB hit rate."""
        if self.btb_lookups == 0:
            return 1.0
        return self.btb_hits / self.btb_lookups

    @property
    def ipc(self) -> float:
        """Instructions per cycle attributed to this context."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


@dataclass
class RunResult:
    """Result of one simulation run.

    Attributes:
        config_name: core configuration name.
        mechanism: protection preset name.
        predictor: direction predictor name.
        cycles: total elapsed core cycles.
        instructions: total committed instructions across contexts.
        threads: per-context statistics keyed by workload name.
        context_switches: OS context switches that occurred.
        privilege_switches: privilege transitions that occurred.
        time_scale: how many real cycles one simulated cycle stands for.
    """

    config_name: str = ""
    mechanism: str = "baseline"
    predictor: str = ""
    cycles: float = 0.0
    instructions: int = 0
    threads: Dict[str, ThreadStats] = field(default_factory=dict)
    context_switches: int = 0
    privilege_switches: int = 0
    time_scale: float = 1.0

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mpki(self) -> float:
        """Aggregate mispredictions per thousand instructions."""
        if self.instructions == 0:
            return 0.0
        total = sum(t.mispredicts for t in self.threads.values())
        return 1000.0 * total / self.instructions

    @property
    def direction_mpki(self) -> float:
        """Aggregate direction-mispredictions per thousand instructions."""
        if self.instructions == 0:
            return 0.0
        total = sum(t.direction_mispredicts for t in self.threads.values())
        return 1000.0 * total / self.instructions

    def thread(self, name: str) -> ThreadStats:
        """Statistics of one workload by name."""
        return self.threads[name]

    def target_cycles(self, name: str) -> float:
        """Cycles attributed to one workload (single-thread overhead metric)."""
        return self.threads[name].cycles

    def privilege_switches_per_million_cycles(self) -> float:
        """Privilege transitions per million (unscaled) cycles — Table 4."""
        if self.cycles == 0:
            return 0.0
        return 1e6 * self.privilege_switches / (self.cycles * self.time_scale)

    def overhead_vs(self, baseline: "RunResult", workload: str = None) -> float:
        """Relative execution-time overhead versus a baseline run.

        Args:
            baseline: the run to normalise against (same workloads).
            workload: when given, compare cycles attributed to that workload
                (the single-thread target-benchmark metric); otherwise compare
                total elapsed cycles (the SMT metric).

        Returns:
            ``cycles / baseline_cycles - 1`` (positive = slowdown).
        """
        if workload is not None:
            mine = self.threads[workload].cycles
            theirs = baseline.threads[workload].cycles
        else:
            mine = self.cycles
            theirs = baseline.cycles
        if theirs == 0:
            return 0.0
        return mine / theirs - 1.0


def thread_stats_to_dict(stats: ThreadStats) -> Dict[str, Any]:
    """Convert per-thread statistics to a JSON-friendly dictionary."""
    return {f.name: getattr(stats, f.name) for f in fields(ThreadStats)}


def thread_stats_from_dict(data: Dict[str, Any]) -> ThreadStats:
    """Rebuild :class:`ThreadStats` from :func:`thread_stats_to_dict` output.

    Every declared field must be present: a schema-drifted dictionary raises
    ``KeyError`` (which the on-disk result cache treats as a miss) instead of
    silently loading zeroed statistics.
    """
    return ThreadStats(**{f.name: data[f.name] for f in fields(ThreadStats)})


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Convert a :class:`RunResult` to a JSON-friendly dictionary.

    Used by the on-disk result cache
    (:class:`repro.experiments.executor.RunResultCache`) and available for
    archiving individual simulation runs.
    """
    return {
        "config_name": result.config_name,
        "mechanism": result.mechanism,
        "predictor": result.predictor,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "threads": {name: thread_stats_to_dict(stats)
                    for name, stats in result.threads.items()},
        "context_switches": result.context_switches,
        "privilege_switches": result.privilege_switches,
        "time_scale": result.time_scale,
    }


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`run_result_to_dict` output.

    Every field must be present: a schema-drifted dictionary (e.g. an on-disk
    cache entry written by an older serialization) raises ``KeyError``, which
    the result cache treats as a miss and re-simulates, rather than loading a
    zeroed result.
    """
    return RunResult(
        config_name=data["config_name"],
        mechanism=data["mechanism"],
        predictor=data["predictor"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        threads={name: thread_stats_from_dict(stats)
                 for name, stats in data["threads"].items()},
        context_switches=data["context_switches"],
        privilege_switches=data["privilege_switches"],
        time_scale=data["time_scale"],
    )


def merge_thread_stats(results: List[ThreadStats]) -> ThreadStats:
    """Sum a list of per-thread statistics into one aggregate."""
    total = ThreadStats(name="total")
    for stats in results:
        total.instructions += stats.instructions
        total.branches += stats.branches
        total.conditional_branches += stats.conditional_branches
        total.direction_mispredicts += stats.direction_mispredicts
        total.target_mispredicts += stats.target_mispredicts
        total.btb_lookups += stats.btb_lookups
        total.btb_hits += stats.btb_hits
        total.cycles += stats.cycles
        total.syscalls += stats.syscalls
        total.context_switches += stats.context_switches
    return total
