"""OS scheduling events: timer-driven context switches and system calls.

The isolation mechanisms react to exactly two event classes (Section 5.4):

* **context switches** — driven by the OS timer (the paper uses the standard
  Linux 250 Hz tick, i.e. one switch per 4 ms / 8 M cycles, and sweeps
  4 M / 8 M / 12 M in Figures 1 and 7–9);
* **privilege switches** — system calls and exceptions, whose per-benchmark
  rate the paper reports in Table 4 and identifies as the dominant cause of
  key regeneration.

Both are modelled as periodic events in (simulated) cycle time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..workloads.generator import SyntheticWorkload

__all__ = ["PeriodicEvent", "SyscallModel", "RoundRobinScheduler"]


@dataclass
class PeriodicEvent:
    """A periodic event in cycle time.

    Attributes:
        interval: period in cycles (``None`` or ``<= 0`` disables the event).
        phase: cycle time of the first occurrence.
    """

    interval: Optional[float]
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            self.interval = None
        self._next = (self.phase + self.interval) if self.interval else float("inf")

    @property
    def next_fire(self) -> float:
        """Cycle time of the next occurrence."""
        return self._next

    def pending(self, now: float) -> int:
        """Number of occurrences due at time ``now``; advances the schedule."""
        if self.interval is None or now < self._next:
            return 0
        fires = 0
        while self._next <= now:
            self._next += self.interval
            fires += 1
        return fires

    def reset(self, now: float = 0.0) -> None:
        """Restart the schedule from ``now``."""
        if self.interval is None:
            self._next = float("inf")
        else:
            self._next = now + self.interval


class SyscallModel:
    """System-call schedule of one workload.

    The profile gives privilege transitions per million (real) cycles; a
    system call is two transitions (enter + exit), so the syscall period in
    simulated cycles is ``2e6 / rate / time_scale``.
    """

    def __init__(self, workload: SyntheticWorkload, time_scale: float = 1.0,
                 phase: float = 0.0) -> None:
        rate = workload.profile.privilege_switches_per_million_cycles
        if rate > 0:
            interval = 2e6 / rate / time_scale
        else:
            interval = None
        self.event = PeriodicEvent(interval, phase)

    def due(self, own_cycles: float) -> int:
        """Number of system calls due given the workload's own elapsed cycles."""
        return self.event.pending(own_cycles)


class RoundRobinScheduler:
    """Round-robin OS scheduler for a single-threaded core.

    The scheduler time-shares one hardware thread among several software
    contexts (the Table 3 pair), switching on every timer tick.

    Args:
        n_contexts: number of software contexts.
        switch_interval: timer period in simulated cycles.
    """

    def __init__(self, n_contexts: int, switch_interval: float) -> None:
        if n_contexts < 1:
            raise ValueError("need at least one context")
        self._n = n_contexts
        self.timer = PeriodicEvent(switch_interval if n_contexts > 1 else switch_interval)
        self.current = 0
        self.switches = 0

    @property
    def n_contexts(self) -> int:
        """Number of software contexts being scheduled."""
        return self._n

    def maybe_switch(self, now: float) -> int:
        """Handle any due timer ticks; returns the number of switches taken."""
        fires = self.timer.pending(now)
        if fires:
            self.current = (self.current + fires) % self._n
            self.switches += fires
        return fires
