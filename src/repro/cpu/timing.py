"""First-order out-of-order timing model.

The paper's metric is the *relative* execution-time overhead caused by the
additional branch and BTB mispredictions that an isolation mechanism (flush
or key change) introduces.  That quantity is captured by a first-order cycle
accounting:

``cycles = instructions * base_cpi
         + direction/target mispredictions * mispredict_penalty
         + taken-branch BTB misses * btb_miss_penalty``

``base_cpi`` folds in every non-branch bottleneck of the machine (it is the
reciprocal of the IPC the core would achieve with a perfect front end) and is
identical across mechanisms, so it only scales the denominator of the
overhead — exactly the role the rest of the microarchitecture plays in the
paper's measurements.
"""

from __future__ import annotations

from ..core.secure import BranchOutcome
from .config import CoreConfig

__all__ = ["BranchTimingModel"]


class BranchTimingModel:
    """Cycle accounting for one core configuration."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self._base_cpi = config.base_cpi
        self._mispredict_penalty = config.mispredict_penalty
        self._btb_miss_penalty = config.btb_miss_penalty

    def instruction_cost(self, instructions: int) -> float:
        """Base cycles for a number of committed instructions."""
        return instructions * self._base_cpi

    def branch_penalty(self, outcome: BranchOutcome) -> float:
        """Extra cycles caused by the front end's handling of one branch."""
        if outcome.direction_mispredicted or outcome.target_mispredicted:
            return float(self._mispredict_penalty)
        if outcome.taken and outcome.btb_accessed and not outcome.btb_hit:
            # Correct direction but the target had to come from decode.
            return float(self._btb_miss_penalty)
        return 0.0

    def record_cost(self, instructions: int, outcome: BranchOutcome) -> float:
        """Total cycles attributed to one branch record (gap + branch + penalty)."""
        return self.instruction_cost(instructions) + self.branch_penalty(outcome)
