"""Single-threaded core simulation (the FPGA-prototype experiments).

The paper's single-thread methodology (Section 6.1): a *target* benchmark and
a *background* benchmark time-share one core under the Linux scheduler
(250 Hz timer); the execution time of the target benchmark is measured.  The
isolation mechanism reacts to every context switch and to every privilege
switch (system call) of the running benchmark.

This module reproduces that setup as a trace-driven simulation: the two
synthetic workloads are interleaved in slices of ``context_switch_interval``
simulated cycles, the branch prediction unit is notified on every switch, and
cycles are attributed to whichever workload is running.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.secure import BranchPredictionUnit
from ..engine import ExecutionBackend, active_backend, get_backend
from ..types import BranchType, Privilege
from ..workloads.generator import SyntheticWorkload
from .config import CoreConfig
from .scheduler import RoundRobinScheduler, SyscallModel
from .stats import RunResult, ThreadStats
from .timing import BranchTimingModel

__all__ = ["SingleThreadCore", "unique_labels", "record_batch_stream", "TRACE_BATCH"]

#: Records pulled from each workload per trace-generation chunk.
TRACE_BATCH = 2048


def record_batch_stream(workload, n: int, seed_offset: int = 0):
    """Tuple-batch stream for any workload object.

    Uses the workload's native ``record_batches`` when available (synthetic
    and recorded-trace workloads); otherwise chunks its ``records()``
    generator, so duck-typed third-party workloads keep working with the
    batched engine.
    """
    maker = getattr(workload, "record_batches", None)
    if maker is not None:
        return maker(n, seed_offset=seed_offset)

    def _wrap():
        records = workload.records(seed_offset=seed_offset)
        while True:
            batch = []
            append = batch.append
            for record in records:
                append((record.pc, record.taken, record.target,
                        record.branch_type, record.instructions,
                        record.syscall_after))
                if len(batch) >= n:
                    break
            if not batch:
                return
            yield batch

    return _wrap()


def unique_labels(names: Sequence[str]) -> List[str]:
    """Disambiguate duplicate workload names (e.g. two copies of zeusmp)."""
    seen: Dict[str, int] = {}
    labels = []
    for name in names:
        count = seen.get(name, 0)
        labels.append(name if count == 0 else f"{name}#{count + 1}")
        seen[name] = count + 1
    return labels


class SingleThreadCore:
    """Trace-driven single-threaded core with an OS scheduler.

    Args:
        config: core configuration (FPGA prototype by default sizing).
        bpu: the branch prediction unit under test.
        workloads: software contexts sharing the core; the first one is the
            *target* benchmark whose cycles the experiments measure.
        time_scale: how many real cycles one simulated cycle represents; the
            context-switch and syscall intervals are divided by it so that
            the ratio of execution-window length to predictor warm-up time is
            preserved at tractable trace lengths.
        backend: execution backend (a registry name, an
            :class:`~repro.engine.ExecutionBackend` instance, or ``None``
            for the ``REPRO_BACKEND`` selection).  Backends only change
            *how* the batched engine evaluates kernels — every backend is
            bit-identical to the ``python`` reference.
    """

    HW_THREAD = 0

    def __init__(self, config: CoreConfig, bpu: BranchPredictionUnit,
                 workloads: Sequence[SyntheticWorkload], *,
                 time_scale: float = 100.0,
                 syscall_time_scale: Optional[float] = None,
                 backend=None) -> None:
        if not workloads:
            raise ValueError("at least one workload is required")
        self.config = config
        self.bpu = bpu
        self.workloads: List[SyntheticWorkload] = list(workloads)
        self.time_scale = time_scale
        if backend is None:
            backend = active_backend()
        elif not isinstance(backend, ExecutionBackend):
            backend = get_backend(backend)
        self.backend = backend
        #: Scale applied to the system-call period.  Defaults to the context-
        #: switch scale; experiments may scale system calls less aggressively
        #: so that the per-event warm-up cost amortises more realistically.
        self.syscall_time_scale = (syscall_time_scale if syscall_time_scale is not None
                                   else time_scale)
        self._timing = BranchTimingModel(config)

    def run(self, target_branches: int = 50_000, *,
            warmup_branches: int = 0,
            mechanism_name: Optional[str] = None,
            engine: str = "batched") -> RunResult:
        """Simulate until the target workload has committed ``target_branches``.

        Args:
            target_branches: conditional+unconditional branch records the
                *target* (first) workload must commit after warm-up.
            warmup_branches: target-workload branches executed before
                statistics are reset (predictor warm-up).
            mechanism_name: label recorded in the result.
            engine: ``"batched"`` (default) uses the chunked-trace fast
                engine; ``"scalar"`` keeps the original per-record reference
                loop.  Both produce bit-identical :class:`RunResult`
                statistics for the same seeds.

        Returns:
            A :class:`repro.cpu.stats.RunResult`.
        """
        if engine == "batched":
            return self._run_batched(target_branches, warmup_branches,
                                     mechanism_name)
        if engine != "scalar":
            raise ValueError(f"unknown engine {engine!r}")
        return self._run_scalar(target_branches, warmup_branches,
                                mechanism_name)

    def _run_scalar(self, target_branches: int, warmup_branches: int,
                    mechanism_name: Optional[str]) -> RunResult:
        """Reference per-record engine (the seed implementation)."""
        config = self.config
        switch_interval = config.context_switch_interval / self.time_scale
        kernel_cycles = float(config.syscall_kernel_cycles)
        scheduler = RoundRobinScheduler(len(self.workloads), switch_interval)
        iterators = [wl.records(seed_offset=i) for i, wl in enumerate(self.workloads)]
        labels = unique_labels([wl.name for wl in self.workloads])
        stats = [ThreadStats(name=label) for label in labels]
        syscalls = [SyscallModel(wl, self.syscall_time_scale, phase=i * 17.0)
                    for i, wl in enumerate(self.workloads)]

        cycles = 0.0
        privilege_switches = 0
        target_committed = 0
        warming = warmup_branches > 0
        budget = warmup_branches if warming else target_branches
        # Per-workload cycle clocks that drive its syscall schedule; unlike the
        # statistics they are never reset at the warm-up boundary.
        own_cycles = [0.0] * len(self.workloads)

        while True:
            current = scheduler.current
            record = next(iterators[current])
            outcome = self.bpu.execute_branch(record.pc, record.taken, record.target,
                                              record.branch_type, self.HW_THREAD)
            cost = self._timing.record_cost(record.instructions, outcome)
            cycles += cost

            own_cycles[current] += cost
            stat = stats[current]
            stat.cycles += cost
            stat.instructions += record.instructions
            stat.branches += 1
            if record.branch_type is BranchType.CONDITIONAL:
                stat.conditional_branches += 1
                if outcome.direction_mispredicted:
                    stat.direction_mispredicts += 1
            if outcome.target_mispredicted:
                stat.target_mispredicts += 1
            if outcome.btb_accessed:
                stat.btb_lookups += 1
                if outcome.btb_hit:
                    stat.btb_hits += 1

            # Trace-embedded syscall marker: the recorded program performed a
            # system call right after this branch, so the privilege round-trip
            # happens here regardless of the periodic model's schedule.
            if record.syscall_after:
                self.bpu.notify_privilege_switch(self.HW_THREAD, Privilege.KERNEL)
                self.bpu.notify_privilege_switch(self.HW_THREAD, Privilege.USER)
                privilege_switches += 2
                stat.syscalls += 1
                cycles += kernel_cycles
                stat.cycles += kernel_cycles
                own_cycles[current] += kernel_cycles

            # System calls of the running workload (driven by its own cycles).
            n_syscalls = syscalls[current].due(own_cycles[current])
            for _ in range(n_syscalls):
                self.bpu.notify_privilege_switch(self.HW_THREAD, Privilege.KERNEL)
                self.bpu.notify_privilege_switch(self.HW_THREAD, Privilege.USER)
                privilege_switches += 2
                stat.syscalls += 1
                cycles += kernel_cycles
                stat.cycles += kernel_cycles
                own_cycles[current] += kernel_cycles

            # Timer tick: round-robin to the next software context.
            if scheduler.maybe_switch(cycles):
                stat.context_switches += 1
                self.bpu.notify_context_switch(self.HW_THREAD)

            if current == 0:
                target_committed += 1
                if target_committed >= budget:
                    if warming:
                        # Reset statistics and start the measured phase.
                        warming = False
                        budget = target_branches
                        target_committed = 0
                        for i, label in enumerate(labels):
                            stats[i] = ThreadStats(name=label)
                        cycles_offset = cycles
                        privilege_switches = 0
                        scheduler.switches = 0
                        continue
                    break

        measured_cycles = cycles if warmup_branches == 0 else cycles - cycles_offset
        result = RunResult(
            config_name=config.name,
            mechanism=mechanism_name or getattr(self.bpu.isolation, "name", "unknown"),
            predictor=config.predictor,
            cycles=measured_cycles,
            instructions=sum(s.instructions for s in stats),
            threads={s.name: s for s in stats},
            context_switches=scheduler.switches,
            privilege_switches=privilege_switches,
            time_scale=self.time_scale,
        )
        return result

    def _run_batched(self, target_branches: int, warmup_branches: int,
                     mechanism_name: Optional[str]) -> RunResult:
        """Chunked-trace fast engine (cycle-exact vs. :meth:`_run_scalar`).

        The loop consumes pre-generated ``(pc, taken, target, type,
        instructions, syscall_after)`` tuples from
        :meth:`SyntheticWorkload.record_batches`,
        drives the BPU through its allocation-light fast path, folds the
        timing model into inline arithmetic and only calls into the periodic
        OS-event machinery when an event is actually due.  Every arithmetic
        operation happens with the same values in the same order as the
        scalar engine, so the returned statistics are bit-identical.
        """
        config = self.config
        switch_interval = config.context_switch_interval / self.time_scale
        kernel_cycles = float(config.syscall_kernel_cycles)
        n_workloads = len(self.workloads)
        scheduler = RoundRobinScheduler(n_workloads, switch_interval)
        timer = scheduler.timer
        backend = self.backend
        batch_iters = [backend.batch_stream(wl, TRACE_BATCH, seed_offset=i)
                       for i, wl in enumerate(self.workloads)]
        buffers: List[list] = [[] for _ in range(n_workloads)]
        positions = [0] * n_workloads
        labels = unique_labels([wl.name for wl in self.workloads])
        stats = [ThreadStats(name=label) for label in labels]
        syscall_events = [SyscallModel(wl, self.syscall_time_scale,
                                       phase=i * 17.0).event
                          for i, wl in enumerate(self.workloads)]

        # Hot-loop local bindings.  Conditional branches (the vast majority)
        # are driven directly through the predictor/BTB fused entry points,
        # skipping the execute_branch_fast call frame; the logic below is the
        # same statement-for-statement, so outcomes are identical.
        bpu = self.bpu
        execute = bpu.execute_branch_fast
        hw = self.HW_THREAD
        direction = bpu.direction
        # Predictors exposing ``exec_kernel`` hand the loop a per-thread
        # specialised kernel; it is re-fetched after every switch
        # notification (switches may rotate keys or drop bound state).
        # Kernels accept and ignore a trailing thread id, so both call
        # shapes below are the same.  The active execution backend owns
        # the resolution, so vectorized kernels slot in transparently.
        exec_kernel = backend.direction_kernel_fetch(direction)
        dir_execute = (exec_kernel(hw) if exec_kernel is not None
                       else direction.execute)
        # The packed BTB exposes the same kernel protocol for its fused
        # conditional probe; duck-typed replacement BTBs fall back to the
        # bound method (identical call shape).
        btb_kernel = backend.conditional_kernel_fetch(bpu.btb)
        btb_conditional = (btb_kernel(hw) if btb_kernel is not None
                           else bpu.btb.execute_conditional_fast)
        # Backend kernels may expose an advisory ``feed(buf, pos)`` hook
        # giving them lookahead over the upcoming record stream; it is
        # re-resolved whenever a kernel is re-fetched and invoked whenever
        # the stream changes (new buffer, or switch to another context).
        dir_feed = getattr(dir_execute, "feed", None)
        btb_feed = getattr(btb_conditional, "feed", None)
        miss_forces_not_taken = bpu._btb_miss_forces_not_taken
        notify_privilege = bpu.notify_privilege_switch
        notify_context = bpu.notify_context_switch
        timing = self._timing
        base_cpi = timing._base_cpi
        mispredict_penalty = float(timing._mispredict_penalty)
        btb_miss_penalty = float(timing._btb_miss_penalty)
        conditional = BranchType.CONDITIONAL
        kernel = Privilege.KERNEL
        user = Privilege.USER

        cycles = 0.0
        cycles_offset = 0.0
        privilege_switches = 0
        target_committed = 0
        warming = warmup_branches > 0
        budget = warmup_branches if warming else target_branches
        # Per-workload cycle clocks that drive its syscall schedule; unlike
        # the statistics they are never reset at the warm-up boundary.
        own_cycles = [0.0] * n_workloads

        # Per-context state hoisted into locals; written back to the lists
        # whenever the scheduler switches to another software context.
        current = scheduler.current
        buf = buffers[current]
        buf_len = len(buf)
        pos = positions[current]
        stat = stats[current]
        event = syscall_events[current]
        event_next = event._next
        timer_next = timer._next
        own = own_cycles[current]
        # Integer statistics of the *current* context accumulate in locals
        # and are folded into the ThreadStats object when the context (or
        # measurement phase) changes.  ``s_cycles`` is the context's
        # ``stat.cycles`` held in a local between fold points: it receives
        # the exact same per-record ``+=`` sequence from the same starting
        # value, so the float rounding is bit-identical to the scalar
        # engine's per-record attribute adds.
        s_instr = s_branches = s_cond = s_dirm = s_tgtm = 0
        s_lookups = s_hits = s_sys = s_switches = 0
        s_cycles = stat.cycles

        while True:
            if pos >= buf_len:
                buf = next(batch_iters[current])
                buf_len = len(buf)
                pos = 0
                if dir_feed is not None:
                    dir_feed(buf, 0)
                if btb_feed is not None:
                    btb_feed(buf, 0)
            pc, taken, target, branch_type, instructions, syscall_after = buf[pos]
            pos += 1

            if branch_type is conditional:
                # Inlined conditional-branch path of execute_branch_fast.
                # The kernels are per-thread (hw is baked in at fetch time),
                # so no thread argument is passed.
                predicted = dir_execute(pc, taken)
                hit, btb_target = btb_conditional(pc, target, taken)
                if predicted and not hit and miss_forces_not_taken:
                    predicted = False
                dirm = predicted != taken
                tgtm = (not dirm and taken
                        and (not hit or btb_target != target))
                if dirm or tgtm:
                    cost = instructions * base_cpi + mispredict_penalty
                elif not hit and taken:
                    cost = instructions * base_cpi + btb_miss_penalty
                else:
                    cost = instructions * base_cpi + 0.0
                cycles += cost
                own += cost
                s_cycles += cost
                s_instr += instructions
                s_branches += 1
                s_cond += 1
                if dirm:
                    s_dirm += 1
                if tgtm:
                    s_tgtm += 1
                s_lookups += 1
                if hit:
                    s_hits += 1
            else:
                dirm, tgtm, btb_accessed, btb_hit = execute(pc, taken, target,
                                                            branch_type, hw)
                if dirm or tgtm:
                    cost = instructions * base_cpi + mispredict_penalty
                elif btb_accessed and not btb_hit:
                    cost = instructions * base_cpi + btb_miss_penalty
                else:
                    cost = instructions * base_cpi + 0.0
                cycles += cost
                own += cost
                s_cycles += cost
                s_instr += instructions
                s_branches += 1
                if tgtm:
                    s_tgtm += 1
                if btb_accessed:
                    s_lookups += 1
                    if btb_hit:
                        s_hits += 1

            # Trace-embedded syscall marker (mirrors the scalar engine): the
            # privilege round-trip happens immediately after this record, and
            # the kernels are re-fetched because a switch may rotate keys.
            if syscall_after:
                notify_privilege(hw, kernel)
                notify_privilege(hw, user)
                privilege_switches += 2
                s_sys += 1
                cycles += kernel_cycles
                s_cycles += kernel_cycles
                own += kernel_cycles
                if exec_kernel is not None:
                    dir_execute = exec_kernel(hw)
                    dir_feed = getattr(dir_execute, "feed", None)
                    if dir_feed is not None:
                        dir_feed(buf, pos)
                if btb_kernel is not None:
                    btb_conditional = btb_kernel(hw)
                    btb_feed = getattr(btb_conditional, "feed", None)
                    if btb_feed is not None:
                        btb_feed(buf, pos)

            # System calls of the running workload (driven by its own cycles);
            # the schedule is only consulted when a call is actually due.
            if own >= event_next:
                n_events = event.pending(own)
                for _ in range(n_events):
                    notify_privilege(hw, kernel)
                    notify_privilege(hw, user)
                    privilege_switches += 2
                    s_sys += 1
                    cycles += kernel_cycles
                    s_cycles += kernel_cycles
                    own += kernel_cycles
                event_next = event._next
                if n_events:
                    if exec_kernel is not None:
                        dir_execute = exec_kernel(hw)
                        dir_feed = getattr(dir_execute, "feed", None)
                        if dir_feed is not None:
                            dir_feed(buf, pos)
                    if btb_kernel is not None:
                        btb_conditional = btb_kernel(hw)
                        btb_feed = getattr(btb_conditional, "feed", None)
                        if btb_feed is not None:
                            btb_feed(buf, pos)

            # Timer tick: round-robin to the next software context.  The
            # local context state is reloaded only after the commit check
            # below, which refers to the context that executed this record.
            switched = False
            if cycles >= timer_next:
                fires = timer.pending(cycles)
                timer_next = timer._next
                if fires:
                    scheduler.current = (current + fires) % n_workloads
                    scheduler.switches += fires
                    s_switches += 1
                    notify_context(hw)
                    if exec_kernel is not None:
                        dir_execute = exec_kernel(hw)
                        dir_feed = getattr(dir_execute, "feed", None)
                    if btb_kernel is not None:
                        btb_conditional = btb_kernel(hw)
                        btb_feed = getattr(btb_conditional, "feed", None)
                    buffers[current] = buf
                    positions[current] = pos
                    own_cycles[current] = own
                    switched = True

            if current == 0:
                target_committed += 1
                if target_committed >= budget:
                    if warming:
                        # Reset statistics and start the measured phase: the
                        # warm-up counts (including the pending locals) are
                        # discarded with the replaced ThreadStats objects.
                        warming = False
                        budget = target_branches
                        target_committed = 0
                        stats = [ThreadStats(name=label) for label in labels]
                        stat = stats[current]
                        s_instr = s_branches = s_cond = s_dirm = s_tgtm = 0
                        s_lookups = s_hits = s_sys = s_switches = 0
                        s_cycles = stat.cycles
                        cycles_offset = cycles
                        privilege_switches = 0
                        scheduler.switches = 0
                    else:
                        stat.cycles = s_cycles
                        stat.instructions += s_instr
                        stat.branches += s_branches
                        stat.conditional_branches += s_cond
                        stat.direction_mispredicts += s_dirm
                        stat.target_mispredicts += s_tgtm
                        stat.btb_lookups += s_lookups
                        stat.btb_hits += s_hits
                        stat.syscalls += s_sys
                        stat.context_switches += s_switches
                        break
            if switched:
                # Fold the outgoing context's counters, then load the
                # incoming context.
                stat.cycles = s_cycles
                stat.instructions += s_instr
                stat.branches += s_branches
                stat.conditional_branches += s_cond
                stat.direction_mispredicts += s_dirm
                stat.target_mispredicts += s_tgtm
                stat.btb_lookups += s_lookups
                stat.btb_hits += s_hits
                stat.syscalls += s_sys
                stat.context_switches += s_switches
                s_instr = s_branches = s_cond = s_dirm = s_tgtm = 0
                s_lookups = s_hits = s_sys = s_switches = 0
                current = scheduler.current
                buf = buffers[current]
                buf_len = len(buf)
                pos = positions[current]
                stat = stats[current]
                s_cycles = stat.cycles
                event = syscall_events[current]
                event_next = event._next
                own = own_cycles[current]
                if dir_feed is not None:
                    dir_feed(buf, pos)
                if btb_feed is not None:
                    btb_feed(buf, pos)
        own_cycles[current] = own

        measured_cycles = cycles if warmup_branches == 0 else cycles - cycles_offset
        return RunResult(
            config_name=config.name,
            mechanism=mechanism_name or getattr(self.bpu.isolation, "name", "unknown"),
            predictor=config.predictor,
            cycles=measured_cycles,
            instructions=sum(s.instructions for s in stats),
            threads={s.name: s for s in stats},
            context_switches=scheduler.switches,
            privilege_switches=privilege_switches,
            time_scale=self.time_scale,
        )
