"""Trace-driven CPU timing model: single-threaded and SMT cores with OS events."""

from .config import (
    CORE_PRESETS,
    LINUX_SWITCH_INTERVAL_CYCLES,
    CoreConfig,
    fpga_prototype,
    make_core_config,
    sunny_cove_smt,
)
from .core import SingleThreadCore, unique_labels
from .scheduler import PeriodicEvent, RoundRobinScheduler, SyscallModel
from .smt import SmtCore
from .stats import RunResult, ThreadStats
from .timing import BranchTimingModel

__all__ = [
    "CoreConfig",
    "CORE_PRESETS",
    "LINUX_SWITCH_INTERVAL_CYCLES",
    "fpga_prototype",
    "sunny_cove_smt",
    "make_core_config",
    "SingleThreadCore",
    "unique_labels",
    "SmtCore",
    "PeriodicEvent",
    "RoundRobinScheduler",
    "SyscallModel",
    "RunResult",
    "ThreadStats",
    "BranchTimingModel",
]
