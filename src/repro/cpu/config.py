"""Core configurations (Table 2).

Two machines are modelled, mirroring the paper's evaluation platforms:

* :func:`fpga_prototype` — the BOOM-like FPGA RISC-V prototype used for the
  single-threaded experiments (4-wide, 10-stage pipeline, 256×2 BTB, TAGE);
* :func:`sunny_cove_smt` — the gem5 model of a Sunny-Cove-like SMT core used
  for the SMT experiments (8-wide, 19-stage pipeline, 1024×4 BTB, selectable
  Gshare / Tournament / LTAGE / TAGE-SC-L direction predictor).

The timing model is first-order (see :mod:`repro.cpu.timing`): only the
parameters that the isolation mechanisms interact with — front-end width,
misprediction penalty, BTB geometry, predictor choice and the switch
intervals — are represented.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

__all__ = ["CoreConfig", "fpga_prototype", "sunny_cove_smt", "CORE_PRESETS",
           "make_core_config"]

#: Standard Linux timer period the paper assumes: 4 ms at 2 GHz = 8 M cycles.
LINUX_SWITCH_INTERVAL_CYCLES = 8_000_000


@dataclass
class CoreConfig:
    """Parameters of one simulated core.

    Attributes:
        name: configuration name.
        frequency_ghz: core frequency (only used to convert to wall-clock
            figures in reports).
        issue_width: sustained commit width of the out-of-order engine.
        pipeline_depth: front-end to execute depth in stages.
        mispredict_penalty: cycles lost on a redirect (≈ pipeline depth).
        btb_miss_penalty: front-end bubble when a taken branch misses the BTB
            but the direction was correct.
        base_cpi: cycles per committed instruction in the absence of branch
            penalties (captures every other bottleneck of the machine).
        smt_threads: number of hardware threads.
        btb_sets: BTB sets.
        btb_ways: BTB associativity.
        predictor: direction-predictor name.
        predictor_kwargs: extra predictor constructor arguments.
        context_switch_interval: timer-interrupt period in cycles.
        syscall_kernel_cycles: cycles spent inside the kernel per system call.
        btb_miss_forces_not_taken: front-end policy on BTB misses (the FPGA
            prototype falls through; the gem5 model redirects at decode).
    """

    name: str = "core"
    frequency_ghz: float = 2.0
    issue_width: int = 4
    pipeline_depth: int = 10
    mispredict_penalty: int = 11
    btb_miss_penalty: int = 3
    base_cpi: float = 0.65
    smt_threads: int = 1
    btb_sets: int = 256
    btb_ways: int = 2
    predictor: str = "tage"
    predictor_kwargs: Dict = field(default_factory=dict)
    context_switch_interval: int = LINUX_SWITCH_INTERVAL_CYCLES
    syscall_kernel_cycles: int = 400
    btb_miss_forces_not_taken: bool = True

    def with_predictor(self, predictor: str, **predictor_kwargs) -> "CoreConfig":
        """Copy of the configuration with a different direction predictor."""
        return replace(self, predictor=predictor,
                       predictor_kwargs=dict(predictor_kwargs))

    def with_switch_interval(self, cycles: int) -> "CoreConfig":
        """Copy of the configuration with a different timer period."""
        return replace(self, context_switch_interval=cycles)

    def scaled(self, time_scale: float) -> "CoreConfig":
        """Copy with switch/kernel intervals divided by ``time_scale``.

        One simulated cycle then stands for ``time_scale`` real cycles; see
        :mod:`repro.experiments.scaling`.
        """
        return replace(
            self,
            context_switch_interval=max(1, int(self.context_switch_interval / time_scale)),
            syscall_kernel_cycles=max(1, int(self.syscall_kernel_cycles / max(1.0, time_scale ** 0.5))))


def fpga_prototype(predictor: str = "tage", **predictor_kwargs) -> CoreConfig:
    """The single-threaded FPGA RISC-V prototype (Table 2, left column)."""
    return CoreConfig(
        name="fpga_prototype",
        frequency_ghz=2.0,
        issue_width=4,
        pipeline_depth=10,
        mispredict_penalty=11,
        btb_miss_penalty=3,
        base_cpi=0.65,
        smt_threads=1,
        btb_sets=256,
        btb_ways=2,
        predictor=predictor,
        predictor_kwargs=dict(predictor_kwargs),
        context_switch_interval=LINUX_SWITCH_INTERVAL_CYCLES,
        btb_miss_forces_not_taken=True,
    )


def sunny_cove_smt(predictor: str = "tage_sc_l", smt_threads: int = 2,
                   **predictor_kwargs) -> CoreConfig:
    """The gem5 Sunny-Cove-like SMT core (Table 2, right column)."""
    return CoreConfig(
        name=f"sunny_cove_smt{smt_threads}",
        frequency_ghz=2.5,
        issue_width=8,
        pipeline_depth=19,
        mispredict_penalty=17,
        btb_miss_penalty=4,
        base_cpi=0.45,
        smt_threads=smt_threads,
        btb_sets=1024,
        btb_ways=4,
        predictor=predictor,
        predictor_kwargs=dict(predictor_kwargs),
        context_switch_interval=int(LINUX_SWITCH_INTERVAL_CYCLES * 2.5 / 2.0),
        btb_miss_forces_not_taken=False,
    )


#: Named core presets.
CORE_PRESETS = {
    "fpga_prototype": fpga_prototype,
    "sunny_cove_smt": sunny_cove_smt,
}


def make_core_config(name: str, **kwargs) -> CoreConfig:
    """Construct a core configuration preset by name.

    Raises:
        KeyError: when ``name`` is not a known preset.
    """
    key = name.lower()
    if key not in CORE_PRESETS:
        raise KeyError(f"unknown core preset: {name!r}")
    return CORE_PRESETS[key](**kwargs)
