"""SMT core simulation (the gem5-based experiments).

In the paper's SMT methodology (Section 6.1), the benchmarks of a pair run
*concurrently*, one per hardware thread, on a Sunny-Cove-like core; the
predictors are shared between the hardware threads.  Each hardware thread
still receives OS timer ticks (which trigger the isolation action: a flush or
a key regeneration for that thread) and performs its own system calls.

The simulation interleaves the per-thread branch streams in cycle order: at
every step the hardware thread with the smallest local cycle count commits its
next branch, so the threads stay time-aligned and shared-structure
interference (the source of the SMT-specific costs in Figures 2, 3 and 10)
happens in a realistic order.  Per-thread base CPI is scaled by the number of
hardware threads to reflect the shared issue bandwidth.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..core.secure import BranchPredictionUnit
from ..engine import ExecutionBackend, active_backend, get_backend
from ..types import BranchType, Privilege
from ..workloads.generator import SyntheticWorkload
from .config import CoreConfig
from .core import TRACE_BATCH, record_batch_stream, unique_labels
from .scheduler import PeriodicEvent, SyscallModel
from .stats import RunResult, ThreadStats
from .timing import BranchTimingModel

__all__ = ["SmtCore"]


class SmtCore:
    """Trace-driven SMT core with per-hardware-thread OS events.

    Args:
        config: core configuration; ``config.smt_threads`` hardware threads.
        bpu: the shared branch prediction unit under test.
        workloads: one workload per hardware thread.
        time_scale: real cycles represented by one simulated cycle (the
            context-switch and syscall intervals are divided by it).
        backend: execution backend (registry name, instance, or ``None``
            for the ``REPRO_BACKEND`` selection); bit-identical to the
            ``python`` reference by contract.
    """

    def __init__(self, config: CoreConfig, bpu: BranchPredictionUnit,
                 workloads: Sequence[SyntheticWorkload], *,
                 time_scale: float = 100.0, se_mode: bool = True,
                 backend=None) -> None:
        if len(workloads) != config.smt_threads:
            raise ValueError(
                f"expected {config.smt_threads} workloads, got {len(workloads)}")
        self.config = config
        self.bpu = bpu
        self.workloads: List[SyntheticWorkload] = list(workloads)
        self.time_scale = time_scale
        if backend is None:
            backend = active_backend()
        elif not isinstance(backend, ExecutionBackend):
            backend = get_backend(backend)
        self.backend = backend
        #: System-call-emulation mode (the paper's gem5 SMT methodology): no
        #: privilege switches occur; only OS timer ticks drive the isolation
        #: mechanisms.  Set False to model a full-system SMT run.
        self.se_mode = se_mode
        # Each hardware thread sees 1/N of the core's sustained bandwidth.
        per_thread_config = replace(config, base_cpi=config.base_cpi * config.smt_threads)
        self._timing = BranchTimingModel(per_thread_config)

    def run(self, instructions: int = 400_000, *,
            warmup_instructions: int = 0,
            mechanism_name: Optional[str] = None,
            engine: str = "batched") -> RunResult:
        """Simulate until the combined committed-instruction budget is met.

        This mirrors the paper's SMT methodology: warm up, then "count the
        execution cycles of the next N instructions executed by either
        thread".  Hardware threads advance in cycle order, so a thread that
        suffers more mispredictions contributes fewer instructions by the
        time the budget is reached and the elapsed cycle count grows.

        Args:
            instructions: combined committed instructions in the measured
                phase.
            warmup_instructions: combined instructions executed before
                statistics are reset.
            mechanism_name: label recorded in the result.
            engine: ``"batched"`` (default) uses the chunked-trace fast
                engine; ``"scalar"`` keeps the original per-record reference
                loop.  Both produce bit-identical :class:`RunResult`
                statistics for the same seeds.

        Returns:
            A :class:`repro.cpu.stats.RunResult` whose ``cycles`` is the
            elapsed time of the measured phase.
        """
        if engine == "batched":
            return self._run_batched(instructions, warmup_instructions,
                                     mechanism_name)
        if engine != "scalar":
            raise ValueError(f"unknown engine {engine!r}")
        return self._run_scalar(instructions, warmup_instructions,
                                mechanism_name)

    def _run_scalar(self, instructions: int, warmup_instructions: int,
                    mechanism_name: Optional[str]) -> RunResult:
        """Reference per-record engine (the seed implementation)."""
        config = self.config
        n = config.smt_threads
        switch_interval = config.context_switch_interval / self.time_scale
        kernel_cycles = float(config.syscall_kernel_cycles)

        iterators = [wl.records(seed_offset=i) for i, wl in enumerate(self.workloads)]
        labels = unique_labels([wl.name for wl in self.workloads])
        stats = [ThreadStats(name=label) for label in labels]
        local_cycles = [0.0] * n
        # Stagger timer ticks across hardware threads so flushes interleave.
        timers = [PeriodicEvent(switch_interval, phase=i * switch_interval / max(n, 1))
                  for i in range(n)]
        syscalls = [SyscallModel(wl, self.time_scale, phase=i * 23.0)
                    for i, wl in enumerate(self.workloads)]

        context_switches = 0
        privilege_switches = 0
        committed_instructions = 0
        baseline_time = 0.0
        warming = warmup_instructions > 0
        budget = warmup_instructions if warming else instructions

        while True:
            if committed_instructions >= budget:
                if warming:
                    warming = False
                    budget = instructions
                    committed_instructions = 0
                    stats = [ThreadStats(name=label) for label in labels]
                    baseline_time = max(local_cycles)
                    context_switches = 0
                    privilege_switches = 0
                    continue
                break
            # Advance the hardware thread that is furthest behind in time.
            thread = min(range(n), key=lambda t: local_cycles[t])

            record = next(iterators[thread])
            outcome = self.bpu.execute_branch(record.pc, record.taken, record.target,
                                              record.branch_type, thread)
            cost = self._timing.record_cost(record.instructions, outcome)
            local_cycles[thread] += cost
            committed_instructions += record.instructions

            stat = stats[thread]
            stat.cycles += cost
            stat.instructions += record.instructions
            stat.branches += 1
            if record.branch_type is BranchType.CONDITIONAL:
                stat.conditional_branches += 1
                if outcome.direction_mispredicted:
                    stat.direction_mispredicts += 1
            if outcome.target_mispredicted:
                stat.target_mispredicts += 1
            if outcome.btb_accessed:
                stat.btb_lookups += 1
                if outcome.btb_hit:
                    stat.btb_hits += 1

            # Trace-embedded syscall marker: honored even in SE mode (the
            # marker is recorded program behavior, not the periodic OS model).
            if record.syscall_after:
                self.bpu.notify_privilege_switch(thread, Privilege.KERNEL)
                self.bpu.notify_privilege_switch(thread, Privilege.USER)
                privilege_switches += 2
                stat.syscalls += 1
                local_cycles[thread] += kernel_cycles
                stat.cycles += kernel_cycles

            # Per-thread system calls (absent in SE mode).
            n_syscalls = 0 if self.se_mode else syscalls[thread].due(local_cycles[thread])
            for _ in range(n_syscalls):
                self.bpu.notify_privilege_switch(thread, Privilege.KERNEL)
                self.bpu.notify_privilege_switch(thread, Privilege.USER)
                privilege_switches += 2
                stat.syscalls += 1
                local_cycles[thread] += kernel_cycles
                stat.cycles += kernel_cycles

            # Per-thread OS timer ticks.
            ticks = timers[thread].pending(local_cycles[thread])
            if ticks:
                context_switches += ticks
                stat.context_switches += ticks
                for _ in range(ticks):
                    self.bpu.notify_context_switch(thread)

        elapsed = max(local_cycles)
        if warmup_instructions > 0:
            elapsed -= baseline_time
        result = RunResult(
            config_name=config.name,
            mechanism=mechanism_name or getattr(self.bpu.isolation, "name", "unknown"),
            predictor=config.predictor,
            cycles=elapsed,
            instructions=sum(s.instructions for s in stats),
            threads={s.name: s for s in stats},
            context_switches=context_switches,
            privilege_switches=privilege_switches,
            time_scale=self.time_scale,
        )
        return result

    def _run_batched(self, instructions: int, warmup_instructions: int,
                     mechanism_name: Optional[str]) -> RunResult:
        """Chunked-trace fast engine (cycle-exact vs. :meth:`_run_scalar`).

        Same restructuring as
        :meth:`repro.cpu.core.SingleThreadCore._run_batched`: tuple batches
        instead of per-record generators, the BPU fast path, inline timing
        arithmetic and due-checked OS events.  Thread interleaving, float
        accumulation order and statistics are identical to the scalar loop.
        """
        config = self.config
        n = config.smt_threads
        switch_interval = config.context_switch_interval / self.time_scale
        kernel_cycles = float(config.syscall_kernel_cycles)

        backend = self.backend
        batch_iters = [backend.batch_stream(wl, TRACE_BATCH, seed_offset=i)
                       for i, wl in enumerate(self.workloads)]
        buffers: List[list] = [[] for _ in range(n)]
        positions = [0] * n
        labels = unique_labels([wl.name for wl in self.workloads])
        stats = [ThreadStats(name=label) for label in labels]
        local_cycles = [0.0] * n
        # Stagger timer ticks across hardware threads so flushes interleave.
        timers = [PeriodicEvent(switch_interval, phase=i * switch_interval / max(n, 1))
                  for i in range(n)]
        syscall_events = [SyscallModel(wl, self.time_scale, phase=i * 23.0).event
                          for i, wl in enumerate(self.workloads)]

        # Hot-loop local bindings.  Conditional branches (the vast majority)
        # are driven directly through the predictor/BTB fused entry points,
        # skipping the execute_branch_fast call frame; the logic below is the
        # same statement-for-statement, so outcomes are identical.
        bpu = self.bpu
        execute = bpu.execute_branch_fast
        direction = bpu.direction
        # Per-hardware-thread specialised kernels (see
        # ``SingleThreadCore._run_batched``); re-fetched per thread after its
        # switch notifications.
        exec_kernel = backend.direction_kernel_fetch(direction)
        if exec_kernel is not None:
            dir_kernels = [exec_kernel(t) for t in range(n)]
        else:
            dir_kernels = [direction.execute] * n
        # Per-hardware-thread packed-BTB probe kernels (same protocol as the
        # direction kernels); duck-typed BTBs fall back to the bound method.
        btb_kernel = backend.conditional_kernel_fetch(bpu.btb)
        if btb_kernel is not None:
            btb_kernels = [btb_kernel(t) for t in range(n)]
        else:
            btb_kernels = [bpu.btb.execute_conditional_fast] * n
        # Advisory lookahead hooks of backend kernels (see
        # ``SingleThreadCore._run_batched``), tracked per hardware thread.
        dir_feeds = [getattr(k, "feed", None) for k in dir_kernels]
        btb_feeds = [getattr(k, "feed", None) for k in btb_kernels]
        miss_forces_not_taken = bpu._btb_miss_forces_not_taken
        notify_privilege = bpu.notify_privilege_switch
        notify_context = bpu.notify_context_switch
        timing = self._timing
        base_cpi = timing._base_cpi
        mispredict_penalty = float(timing._mispredict_penalty)
        btb_miss_penalty = float(timing._btb_miss_penalty)
        conditional = BranchType.CONDITIONAL
        kernel = Privilege.KERNEL
        user = Privilege.USER
        se_mode = self.se_mode
        two_threads = n == 2

        context_switches = 0
        privilege_switches = 0
        committed_instructions = 0
        baseline_time = 0.0
        warming = warmup_instructions > 0
        budget = warmup_instructions if warming else instructions

        while True:
            if committed_instructions >= budget:
                if warming:
                    warming = False
                    budget = instructions
                    committed_instructions = 0
                    stats = [ThreadStats(name=label) for label in labels]
                    baseline_time = max(local_cycles)
                    context_switches = 0
                    privilege_switches = 0
                    continue
                break
            # Advance the hardware thread that is furthest behind in time.
            if two_threads:
                thread = 0 if local_cycles[0] <= local_cycles[1] else 1
            else:
                thread = min(range(n), key=local_cycles.__getitem__)

            buf = buffers[thread]
            pos = positions[thread]
            if pos >= len(buf):
                buf = buffers[thread] = next(batch_iters[thread])
                pos = 0
                feed = dir_feeds[thread]
                if feed is not None:
                    feed(buf, 0)
                feed = btb_feeds[thread]
                if feed is not None:
                    feed(buf, 0)
            pc, taken, target, branch_type, record_instructions, syscall_after = buf[pos]
            positions[thread] = pos + 1

            if branch_type is conditional:
                # Inlined conditional-branch path of execute_branch_fast.
                predicted = dir_kernels[thread](pc, taken, thread)
                hit, btb_target = btb_kernels[thread](pc, target, taken, thread)
                if predicted and not hit and miss_forces_not_taken:
                    predicted = False
                dirm = predicted != taken
                tgtm = (not dirm and taken
                        and (not hit or btb_target != target))
                if dirm or tgtm:
                    cost = record_instructions * base_cpi + mispredict_penalty
                elif not hit and taken:
                    cost = record_instructions * base_cpi + btb_miss_penalty
                else:
                    cost = record_instructions * base_cpi + 0.0
                local = local_cycles[thread] + cost
                local_cycles[thread] = local
                committed_instructions += record_instructions

                stat = stats[thread]
                stat.cycles += cost
                stat.instructions += record_instructions
                stat.branches += 1
                stat.conditional_branches += 1
                if dirm:
                    stat.direction_mispredicts += 1
                if tgtm:
                    stat.target_mispredicts += 1
                stat.btb_lookups += 1
                if hit:
                    stat.btb_hits += 1
            else:
                dirm, tgtm, btb_accessed, btb_hit = execute(pc, taken, target,
                                                            branch_type, thread)
                if dirm or tgtm:
                    cost = record_instructions * base_cpi + mispredict_penalty
                elif btb_accessed and not btb_hit:
                    cost = record_instructions * base_cpi + btb_miss_penalty
                else:
                    cost = record_instructions * base_cpi + 0.0
                local = local_cycles[thread] + cost
                local_cycles[thread] = local
                committed_instructions += record_instructions

                stat = stats[thread]
                stat.cycles += cost
                stat.instructions += record_instructions
                stat.branches += 1
                if tgtm:
                    stat.target_mispredicts += 1
                if btb_accessed:
                    stat.btb_lookups += 1
                    if btb_hit:
                        stat.btb_hits += 1

            # Trace-embedded syscall marker (mirrors the scalar engine; honored
            # even in SE mode — it is recorded program behavior).  Kernels are
            # re-fetched because the privilege switch may rotate keys.
            if syscall_after:
                notify_privilege(thread, kernel)
                notify_privilege(thread, user)
                privilege_switches += 2
                stat.syscalls += 1
                local += kernel_cycles
                stat.cycles += kernel_cycles
                local_cycles[thread] = local
                if exec_kernel is not None:
                    fn = dir_kernels[thread] = exec_kernel(thread)
                    feed = dir_feeds[thread] = getattr(fn, "feed", None)
                    if feed is not None:
                        feed(buf, positions[thread])
                if btb_kernel is not None:
                    fn = btb_kernels[thread] = btb_kernel(thread)
                    feed = btb_feeds[thread] = getattr(fn, "feed", None)
                    if feed is not None:
                        feed(buf, positions[thread])

            # Per-thread system calls (absent in SE mode).
            if not se_mode:
                event = syscall_events[thread]
                if local >= event._next:
                    n_events = event.pending(local)
                    for _ in range(n_events):
                        notify_privilege(thread, kernel)
                        notify_privilege(thread, user)
                        privilege_switches += 2
                        stat.syscalls += 1
                        local += kernel_cycles
                        stat.cycles += kernel_cycles
                    local_cycles[thread] = local
                    if n_events:
                        if exec_kernel is not None:
                            fn = dir_kernels[thread] = exec_kernel(thread)
                            feed = dir_feeds[thread] = getattr(fn, "feed", None)
                            if feed is not None:
                                feed(buf, positions[thread])
                        if btb_kernel is not None:
                            fn = btb_kernels[thread] = btb_kernel(thread)
                            feed = btb_feeds[thread] = getattr(fn, "feed", None)
                            if feed is not None:
                                feed(buf, positions[thread])

            # Per-thread OS timer ticks.
            timer = timers[thread]
            if local >= timer._next:
                ticks = timer.pending(local)
                if ticks:
                    context_switches += ticks
                    stat.context_switches += ticks
                    for _ in range(ticks):
                        notify_context(thread)
                    if exec_kernel is not None:
                        fn = dir_kernels[thread] = exec_kernel(thread)
                        feed = dir_feeds[thread] = getattr(fn, "feed", None)
                        if feed is not None:
                            feed(buf, positions[thread])
                    if btb_kernel is not None:
                        fn = btb_kernels[thread] = btb_kernel(thread)
                        feed = btb_feeds[thread] = getattr(fn, "feed", None)
                        if feed is not None:
                            feed(buf, positions[thread])

        elapsed = max(local_cycles)
        if warmup_instructions > 0:
            elapsed -= baseline_time
        return RunResult(
            config_name=config.name,
            mechanism=mechanism_name or getattr(self.bpu.isolation, "name", "unknown"),
            predictor=config.predictor,
            cycles=elapsed,
            instructions=sum(s.instructions for s in stats),
            threads={s.name: s for s in stats},
            context_switches=context_switches,
            privilege_switches=privilege_switches,
            time_scale=self.time_scale,
        )
