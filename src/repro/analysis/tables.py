"""Plain-text table rendering used by the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_csv"]


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Iterable[Sequence], *,
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column headers.
        rows: row cell values (converted with ``str``/float formatting).
        title: optional title printed above the table.

    Returns:
        The rendered multi-line string.
    """
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as comma-separated values (for piping into plotting tools)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_stringify(c) for c in row))
    return "\n".join(lines)
