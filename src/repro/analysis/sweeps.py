"""Generic parameter-sweep helpers.

The sensitivity studies (context-switch interval, misprediction penalty, BTB
geometry, key-refresh period) all follow the same pattern: evaluate a metric
over the Cartesian product of a few parameter axes and present the result as
a table or figure series.  This module factors that pattern out so each study
is a few lines of code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from .figures import FigureSeries
from .tables import render_table

__all__ = ["SweepPoint", "SweepResult", "sweep"]


@dataclass
class SweepPoint:
    """One evaluated point of a parameter sweep.

    Attributes:
        params: the parameter assignment for this point.
        value: the metric value returned by the sweep function.
    """

    params: Dict[str, Any]
    value: Any


@dataclass
class SweepResult:
    """All points of one sweep plus presentation helpers.

    Attributes:
        axes: parameter axes in sweep order (name → swept values).
        points: evaluated points, in Cartesian-product order.
        metric: name of the evaluated metric (used as the value column label).
    """

    axes: Dict[str, Sequence[Any]]
    points: List[SweepPoint] = field(default_factory=list)
    metric: str = "value"

    def values(self) -> List[Any]:
        """The metric values in evaluation order."""
        return [point.value for point in self.points]

    def best(self, *, minimise: bool = True) -> SweepPoint:
        """The point with the smallest (or largest) metric value."""
        if not self.points:
            raise ValueError("the sweep has no points")
        selector = min if minimise else max
        return selector(self.points, key=lambda point: point.value)

    def filtered(self, **fixed: Any) -> List[SweepPoint]:
        """Points whose parameters match all the given values."""
        return [point for point in self.points
                if all(point.params.get(key) == value for key, value in fixed.items())]

    def to_rows(self) -> List[List[Any]]:
        """Rows of (one column per axis, then the metric value)."""
        names = list(self.axes)
        return [[point.params[name] for name in names] + [point.value]
                for point in self.points]

    def render(self, title: str = "") -> str:
        """Render the sweep as an aligned table."""
        headers = list(self.axes) + [self.metric]
        return render_table(headers, self.to_rows(), title=title)

    def to_figure(self, category_axis: str, series_axis: str, *,
                  name: str = "sweep", description: str = "",
                  unit: str = "fraction") -> FigureSeries:
        """Pivot a two-axis sweep into a figure series.

        Args:
            category_axis: axis used as the x-axis categories.
            series_axis: axis used as the series (one bar group per value).
            name: figure name.
            description: figure description.
            unit: value unit forwarded to the figure.

        Raises:
            KeyError: when an axis name is unknown.
            ValueError: when a (category, series) combination is missing.
        """
        categories = [str(value) for value in self.axes[category_axis]]
        figure = FigureSeries(name=name, description=description,
                              categories=categories, unit=unit)
        for series_value in self.axes[series_axis]:
            values = []
            for category_value in self.axes[category_axis]:
                matches = self.filtered(**{category_axis: category_value,
                                           series_axis: series_value})
                if not matches:
                    raise ValueError(
                        f"missing sweep point for {category_axis}={category_value!r}, "
                        f"{series_axis}={series_value!r}")
                values.append(float(matches[0].value))
            figure.add_series(str(series_value), values)
        return figure


def sweep(axes: Mapping[str, Iterable[Any]],
          evaluate: Callable[..., Any], *, metric: str = "value",
          **fixed: Any) -> SweepResult:
    """Evaluate a function over the Cartesian product of parameter axes.

    Args:
        axes: mapping from parameter name to the values to sweep (insertion
            order defines the nesting order; the last axis varies fastest).
        evaluate: called once per combination with the swept parameters plus
            any ``fixed`` keyword arguments; its return value is the metric.
        metric: label for the metric column in rendered output.
        **fixed: extra keyword arguments passed unchanged to every call.

    Returns:
        A :class:`SweepResult` with one :class:`SweepPoint` per combination.
    """
    materialised: Dict[str, Sequence[Any]] = {name: list(values)
                                              for name, values in axes.items()}
    if not materialised:
        raise ValueError("at least one sweep axis is required")
    result = SweepResult(axes=materialised, metric=metric)
    names = list(materialised)
    for combination in itertools.product(*(materialised[name] for name in names)):
        params = dict(zip(names, combination))
        value = evaluate(**params, **fixed)
        result.points.append(SweepPoint(params=params, value=value))
    return result
