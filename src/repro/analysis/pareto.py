"""Security vs. overhead vs. hardware-cost Pareto analysis.

The paper's argument is comparative: complete flush defends everything but
is expensive, precise flush is cheap but leaves SMT channels open, and
Noisy-XOR-BP buys both at a small hardware cost.  This module makes that
trade-off explicit by joining three independent measurement layers into one
table per isolation mechanism:

* **security** — mutual-information leakage of the PHT direction channel and
  the BTB occupancy channel (:mod:`repro.security.leakage`), with seeded
  bootstrap CIs from :func:`repro.analysis.significance.leakage_mi_ci`;
* **overhead** — measured performance overhead, pulled from whichever
  reproduced figure covers the mechanism (Figure 10's cross-predictor SMT
  sweep preferred, single-figure fallbacks otherwise);
* **hardware cost** — the analytic Table 5 estimator
  (:mod:`repro.hwcost.estimator`) evaluated on the FPGA-prototype
  geometries.

:func:`pareto_frontier` then marks the non-dominated mechanisms (minimising
every axis).  All inputs are deterministic — seeded leakage trials, stored
figure results, closed-form cost model — so the frontier is reproducible
bit-for-bit from the same result store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .significance import leakage_mi_ci

__all__ = [
    "MechanismProfile",
    "DEFAULT_MECHANISMS",
    "OVERHEAD_SOURCES",
    "mechanism_overhead",
    "hw_cost_overheads",
    "mechanism_profiles",
    "pareto_frontier",
    "pareto_table",
]

#: Mechanisms profiled by default: ``(preset, display label)`` in paper
#: order.  The baseline anchors the overhead axis at zero.
DEFAULT_MECHANISMS = (
    ("baseline", "Baseline"),
    ("complete_flush", "Complete Flush"),
    ("precise_flush", "Precise Flush"),
    ("noisy_xor_bp", "Noisy-XOR-BP"),
)

#: Where each mechanism's measured overhead may come from: ``{preset:
#: [(experiment key, mechanism label), ...]}`` in preference order.  A label
#: matches a series named exactly ``label``, ``label-...`` (Figures 7–9
#: append the switch interval) or ``...-label`` (Figure 10 prepends the
#: predictor); all matching series are averaged.
OVERHEAD_SOURCES: Dict[str, List[Tuple[str, str]]] = {
    "complete_flush": [("figure10", "CF"), ("figure3", "Complete Flush"),
                       ("figure2", "Complete Flush")],
    "precise_flush": [("figure10", "PF"), ("figure3", "Precise Flush")],
    "noisy_xor_bp": [("figure10", "Noisy-XOR-BP"),
                     ("figure9", "Noisy-XOR-BP")],
}

#: FPGA-prototype geometries used for the hardware-cost axis (the Table 5
#: middle rows): a 2-way 256-entry-per-way BTB and a six-table 2K TAGE PHT.
_HW_BTB_ENTRIES = 256
_HW_PHT_ENTRIES = 2048


@dataclass
class MechanismProfile:
    """One mechanism's position on the security/overhead/hw-cost axes.

    Attributes:
        mechanism: protection preset name.
        label: display label.
        leakage_bits: total mutual information (bits/trial) summed over the
            PHT direction and BTB occupancy channels.
        leakage_ci: bootstrap ``(low, high)`` bounds on ``leakage_bits``.
        overhead: measured performance overhead (fraction); 0 for baseline.
        overhead_source: experiment key + series the overhead came from, or
            ``"(definition)"`` / ``"(unavailable)"``.
        hw_area_overhead: analytic relative area overhead (fraction).
        hw_timing_overhead: analytic relative critical-path overhead.
        on_frontier: whether the mechanism is Pareto-optimal.
    """

    mechanism: str
    label: str
    leakage_bits: float
    leakage_ci: Tuple[float, float]
    overhead: Optional[float]
    overhead_source: str
    hw_area_overhead: float
    hw_timing_overhead: float
    on_frontier: bool = False


def _series_matching(figure, mechanism_label: str) -> List[str]:
    """Series named ``label``, ``label-...`` or ``...-label`` (see above)."""
    return [label for label in figure.series
            if label == mechanism_label
            or label.startswith(mechanism_label + "-")
            or label.endswith("-" + mechanism_label)]


def mechanism_overhead(results: Mapping[str, object], preset: str
                       ) -> Tuple[Optional[float], str]:
    """Find a mechanism's measured overhead among the available results.

    Walks :data:`OVERHEAD_SOURCES` in preference order; the overhead is the
    mean of the per-case series averages of every matching series in the
    first experiment that has any.

    Args:
        results: ``{experiment key: ExperimentResult}``.
        preset: protection preset name.

    Returns:
        ``(overhead fraction, source description)``; ``(None,
        "(unavailable)")`` when no covering figure was run.
    """
    if preset == "baseline":
        return 0.0, "(definition)"
    for key, prefix in OVERHEAD_SOURCES.get(preset, []):
        result = results.get(key)
        figure = getattr(result, "figure", None)
        if figure is None:
            continue
        labels = _series_matching(figure, prefix)
        if not labels:
            continue
        averages = [figure.average(label) for label in labels]
        overhead = math.fsum(averages) / len(averages)
        return overhead, f"{key}: {prefix} ({len(labels)} series)"
    return None, "(unavailable)"


def hw_cost_overheads(preset: str) -> Tuple[float, float]:
    """Analytic (area, timing) overhead fractions for one mechanism.

    Noisy-XOR variants are costed with the Table 5 estimator on the
    FPGA-prototype geometries (added area/delay over both protected
    structures combined); flush mechanisms reuse existing flush/clear paths
    and are charged zero added hardware, matching the paper's qualitative
    claim.
    """
    from ..hwcost.estimator import btb_cost, tage_pht_cost

    protects_btb = preset in ("xor_btb", "noisy_xor_btb", "xor_bp",
                              "noisy_xor_bp")
    protects_pht = preset in ("xor_pht", "noisy_xor_pht", "xor_bp",
                              "noisy_xor_bp")
    if not (protects_btb or protects_pht):
        return 0.0, 0.0
    base_area = added_area = 0.0
    base_delay = added_delay = 0.0
    estimates = []
    if protects_btb:
        estimates.append(btb_cost(_HW_BTB_ENTRIES))
    if protects_pht:
        estimates.append(tage_pht_cost(_HW_PHT_ENTRIES))
    for estimate in estimates:
        base_area += estimate.base_area_um2
        added_area += estimate.added_area_um2
        base_delay += estimate.base_delay_ps
        added_delay += estimate.added_delay_ps
    return added_area / base_area, added_delay / base_delay


def mechanism_profiles(results: Mapping[str, object], *,
                       mechanisms: Sequence[Tuple[str, str]] = DEFAULT_MECHANISMS,
                       trials: int = 200, smt: bool = True,
                       seed: int = 0xD1CE, n_boot: int = 500
                       ) -> List[MechanismProfile]:
    """Profile each mechanism on the security/overhead/hw-cost axes.

    Args:
        results: ``{experiment key: ExperimentResult}`` from a reproduction
            run (supplies the overhead axis).
        mechanisms: ``(preset, label)`` pairs to profile.
        trials: leakage trials per channel (seeded, deterministic).
        smt: measure the concurrent-attacker scenario (the hard case —
            flushing on context switch does not help here, which is what
            separates the mechanisms).
        seed: leakage RNG seed; bootstrap seeds derive from it per channel.
        n_boot: bootstrap resamples per leakage CI.

    Returns:
        Profiles in ``mechanisms`` order with ``on_frontier`` marked.
    """
    from ..security.leakage import leakage_report

    report = leakage_report([preset for preset, _ in mechanisms],
                            trials=trials, smt=smt, seed=seed)
    profiles: List[MechanismProfile] = []
    for index, (preset, label) in enumerate(mechanisms):
        channels = report[preset]
        leakage_bits = math.fsum(estimate.mutual_information_bits
                                 for estimate in channels.values())
        ci_low = ci_high = 0.0
        for channel_index, channel in enumerate(sorted(channels)):
            low, high = leakage_mi_ci(
                channels[channel], n_boot=n_boot,
                seed=seed + 1000 * index + channel_index)
            ci_low += low
            ci_high += high
        overhead, source = mechanism_overhead(results, preset)
        area, timing = hw_cost_overheads(preset)
        profiles.append(MechanismProfile(
            mechanism=preset, label=label, leakage_bits=leakage_bits,
            leakage_ci=(ci_low, ci_high), overhead=overhead,
            overhead_source=source, hw_area_overhead=area,
            hw_timing_overhead=timing))
    for position in pareto_frontier(
            [(p.leakage_bits,
              p.overhead if p.overhead is not None else math.inf,
              p.hw_area_overhead) for p in profiles]):
        profiles[position].on_frontier = True
    return profiles


def pareto_frontier(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, minimising every axis.

    A point is dominated when another point is no worse on every axis and
    strictly better on at least one.  Ties (identical points) are all kept.
    The scan is a deterministic O(n²) pass in input order — mechanism counts
    are single digits.
    """
    kept: List[int] = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i == j:
                continue
            if (all(o <= c for o, c in zip(other, candidate))
                    and any(o < c for o, c in zip(other, candidate))):
                dominated = True
                break
        if not dominated:
            kept.append(i)
    return kept


def pareto_table(profiles: Sequence[MechanismProfile]
                 ) -> Tuple[List[str], List[List[str]]]:
    """Render mechanism profiles as (headers, rows) for text/HTML tables."""
    headers = ["mechanism", "leakage (bits/trial)", "leakage 95% CI",
               "perf overhead", "overhead source", "hw area", "hw timing",
               "Pareto-optimal"]
    rows: List[List[str]] = []
    for profile in profiles:
        overhead = ("n/a" if profile.overhead is None
                    else f"{100 * profile.overhead:+.2f}%")
        rows.append([
            profile.label,
            f"{profile.leakage_bits:.4f}",
            f"[{profile.leakage_ci[0]:.4f}, {profile.leakage_ci[1]:.4f}]",
            overhead,
            profile.overhead_source,
            f"{100 * profile.hw_area_overhead:.2f}%",
            f"{100 * profile.hw_timing_overhead:.2f}%",
            "yes" if profile.on_frontier else "no",
        ])
    return headers, rows
