"""Serialisation of experiment results.

Every experiment driver returns an
:class:`repro.experiments.base.ExperimentResult`; this module converts those
results (and their attached :class:`repro.analysis.figures.FigureSeries`) to
plain dictionaries, JSON files and CSV files so that the reproduced tables
and figures can be archived, diffed between runs, or plotted with external
tools.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from .figures import FigureSeries

__all__ = [
    "figure_to_dict",
    "figure_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result_json",
    "load_result_json",
    "save_results_json",
    "save_figure_csv",
]


def figure_to_dict(figure: FigureSeries) -> Dict[str, Any]:
    """Convert a figure series into a JSON-friendly dictionary.

    The ``errors`` key is emitted only when the figure carries error bars, so
    single-trajectory (``repetitions=1``) output stays byte-identical to the
    historical format.
    """
    payload = {
        "name": figure.name,
        "description": figure.description,
        "categories": list(figure.categories),
        "series": {label: list(values) for label, values in figure.series.items()},
        "unit": figure.unit,
    }
    if figure.errors:
        payload["errors"] = {label: list(values)
                             for label, values in figure.errors.items()}
    return payload


def figure_from_dict(data: Dict[str, Any]) -> FigureSeries:
    """Rebuild a figure series from :func:`figure_to_dict` output."""
    figure = FigureSeries(name=data["name"], description=data["description"],
                          categories=list(data["categories"]),
                          unit=data.get("unit", "fraction"))
    errors = data.get("errors", {})
    for label, values in data.get("series", {}).items():
        figure.add_series(label, values, errors=errors.get(label))
    return figure


def result_to_dict(result) -> Dict[str, Any]:
    """Convert an :class:`ExperimentResult` into a JSON-friendly dictionary.

    The ``replicates`` key (per-repetition figures kept for the significance
    layer) is emitted only when present, so single-trajectory output stays
    byte-identical to the historical format.
    """
    payload = {
        "name": result.name,
        "description": result.description,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "figure": figure_to_dict(result.figure) if result.figure is not None else None,
        "paper_claim": result.paper_claim,
        "notes": result.notes,
    }
    if getattr(result, "replicates", None):
        payload["replicates"] = [figure_to_dict(figure)
                                 for figure in result.replicates]
    return payload


def result_from_dict(data: Dict[str, Any]):
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    # Imported here to avoid a package cycle (experiments import analysis).
    from ..experiments.base import ExperimentResult

    figure = figure_from_dict(data["figure"]) if data.get("figure") else None
    replicates = [figure_from_dict(entry)
                  for entry in data.get("replicates", [])]
    return ExperimentResult(name=data["name"], description=data["description"],
                            headers=list(data.get("headers", [])),
                            rows=[list(row) for row in data.get("rows", [])],
                            figure=figure,
                            paper_claim=data.get("paper_claim", ""),
                            notes=data.get("notes", ""),
                            replicates=replicates)


def save_result_json(result, path: str) -> str:
    """Write one experiment result to a JSON file; returns the path."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_result_json(path: str):
    """Read an experiment result previously written by :func:`save_result_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return result_from_dict(json.load(handle))


def save_results_json(results: Iterable, path: str) -> str:
    """Write several experiment results to a single JSON file."""
    _ensure_parent(path)
    payload: List[Dict[str, Any]] = [result_to_dict(result) for result in results]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def save_figure_csv(result, path: str) -> Optional[str]:
    """Write a result's figure series to a CSV file (no-op without a figure)."""
    if result.figure is None:
        return None
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.figure.to_csv())
        if not result.figure.to_csv().endswith("\n"):
            handle.write("\n")
    return path


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
