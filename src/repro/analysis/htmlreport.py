"""Self-contained HTML reproduction report (inline CSS + inline SVG).

``repro report --html`` renders every reproduced figure and table, the
mechanism significance matrices, the security/overhead/hw-cost Pareto table,
the paper-vs-measured expectations and the run's provenance into **one**
HTML file with zero external fetches and zero JavaScript — pure stdlib, in
the spirit of :mod:`repro.service`.  Charts are grouped bar SVGs generated
from :class:`repro.analysis.figures.FigureSeries`, with 95%-CI whiskers when
the figure carries repetition error bars.

Rendering is a pure function of its inputs — no timestamps, no environment
reads, stable iteration orders — so a report rebuilt from the same result
store is byte-identical (pinned by the golden-file test in
``tests/analysis/test_htmlreport.py``).

Chart styling follows a validated categorical palette (8 slots, CVD-checked
in light and dark mode); figures with more series than palette slots are
faceted into small multiples (Figure 10's twelve ``predictor-mechanism``
series become one panel per mechanism), and every chart is paired with a
value table so no reading depends on colour alone.
"""

from __future__ import annotations

import html
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .figures import FigureSeries, format_value
from .report import PAPER_EXPECTATIONS, summarise_overhead_figure
from .significance import SignificanceMatrix, significance_matrix, suffix_groups

__all__ = [
    "PALETTE_LIGHT",
    "PALETTE_DARK",
    "render_figure_svg",
    "figure_section_html",
    "render_html_report",
    "build_html_report",
]

#: Validated categorical palette (light mode) — 8 slots in fixed order; the
#: ordering is the colour-vision-deficiency safety mechanism, do not cycle
#: or reorder.  Dark mode uses the same hues re-stepped for the dark surface.
PALETTE_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948")
PALETTE_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767")

_CHART_WIDTH = 760
_CHART_HEIGHT = 280
_MARGIN_LEFT = 58
_MARGIN_RIGHT = 12
_MARGIN_TOP = 16
_MARGIN_BOTTOM = 30
_MAX_BAR_PX = 24.0
_BAR_GAP_PX = 2.0

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --surface-2: #f0efec; --grid: #e4e3df;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #8a8984;
  --good: #008300; --bad: #b3261e;
""" + "".join(f"  --s{i + 1}: {hex};\n" for i, hex in enumerate(PALETTE_LIGHT)) + """}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --surface-2: #242423; --grid: #343430;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #8a8984;
    --good: #4caf50; --bad: #e66767;
""" + "".join(f"    --s{i + 1}: {hex};\n" for i, hex in enumerate(PALETTE_DARK)) + """  }
}
html { background: var(--surface); }
body { margin: 0 auto; max-width: 900px; padding: 24px 16px 64px;
       color: var(--ink); background: var(--surface);
       font: 15px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 26px; margin: 8px 0 2px; }
h2 { font-size: 20px; margin: 40px 0 8px; border-bottom: 1px solid var(--grid);
     padding-bottom: 4px; }
h3 { font-size: 16px; margin: 24px 0 6px; }
p, dd { color: var(--ink-2); }
.subtitle { color: var(--ink-2); margin-top: 0; }
dl.provenance { display: grid; grid-template-columns: max-content 1fr;
                gap: 2px 16px; margin: 8px 0;
                background: var(--surface-2); border-radius: 8px;
                padding: 12px 16px; }
dl.provenance dt { color: var(--ink-3); }
dl.provenance dd { margin: 0; color: var(--ink);
                   font-family: ui-monospace, monospace; font-size: 13px;
                   overflow-wrap: anywhere; }
table { border-collapse: collapse; margin: 10px 0; width: 100%;
        font-size: 13.5px; }
th { text-align: left; color: var(--ink-2); font-weight: 600;
     border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
     font-variant-numeric: tabular-nums; }
tr.frontier td { font-weight: 600; }
.sig-yes { color: var(--good); font-weight: 600; }
.sig-no { color: var(--ink-3); }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px; margin: 6px 0;
          font-size: 13px; color: var(--ink-2); }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.legend .swatch { width: 12px; height: 12px; border-radius: 3px;
                  display: inline-block; }
figure { margin: 12px 0; }
figure figcaption { font-size: 13px; color: var(--ink-3); margin-top: 2px; }
svg { display: block; max-width: 100%; height: auto; }
.notes { font-size: 13px; color: var(--ink-3); }
details > summary { cursor: pointer; color: var(--ink-2); font-size: 13px; }
footer { margin-top: 48px; border-top: 1px solid var(--grid);
         padding-top: 12px; font-size: 13px; color: var(--ink-3); }
"""


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _num(value: float) -> str:
    """Stable short coordinate formatting for SVG attributes."""
    formatted = f"{value:.2f}"
    return formatted.rstrip("0").rstrip(".") if "." in formatted else formatted


def _nice_ticks(low: float, high: float, target: int = 5) -> List[float]:
    """Round tick positions covering [low, high] (both included loosely)."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(1, target)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    step = magnitude * 10.0
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        if magnitude * multiple >= raw_step:
            step = magnitude * multiple
            break
    first = math.floor(low / step)
    last = math.ceil(high / step)
    return [round(i * step, 12) for i in range(int(first), int(last) + 1)]


def _tick_label(value: float, unit: str) -> str:
    if unit == "fraction":
        return f"{100 * value:g}%"
    return f"{value:g}"


def _bar_path(x: float, width: float, y_value: float, y_base: float,
              radius: float = 4.0) -> str:
    """A bar with a 4px-rounded data end and a square baseline end.

    Handles bars growing up (value above baseline) and down (negative
    values); the rounded corners always sit at the data end.
    """
    radius = min(radius, width / 2.0, abs(y_value - y_base))
    if y_value <= y_base:  # upward bar
        top = y_value
        return (f"M{_num(x)},{_num(y_base)} "
                f"L{_num(x)},{_num(top + radius)} "
                f"Q{_num(x)},{_num(top)} {_num(x + radius)},{_num(top)} "
                f"L{_num(x + width - radius)},{_num(top)} "
                f"Q{_num(x + width)},{_num(top)} "
                f"{_num(x + width)},{_num(top + radius)} "
                f"L{_num(x + width)},{_num(y_base)} Z")
    bottom = y_value
    return (f"M{_num(x)},{_num(y_base)} "
            f"L{_num(x)},{_num(bottom - radius)} "
            f"Q{_num(x)},{_num(bottom)} {_num(x + radius)},{_num(bottom)} "
            f"L{_num(x + width - radius)},{_num(bottom)} "
            f"Q{_num(x + width)},{_num(bottom)} "
            f"{_num(x + width)},{_num(bottom - radius)} "
            f"L{_num(x + width)},{_num(y_base)} Z")


def render_figure_svg(figure: FigureSeries, *,
                      labels: Optional[Sequence[str]] = None,
                      display_names: Optional[Mapping[str, str]] = None,
                      color_of: Optional[Mapping[str, int]] = None,
                      width: int = _CHART_WIDTH,
                      height: int = _CHART_HEIGHT) -> str:
    """Render one grouped-bar SVG panel from a figure's series.

    Args:
        figure: the data (categories × series, optional error bars).
        labels: subset/order of series to draw (all by default).
        display_names: per-label display name (used by faceted charts where
            the panel title carries the shared suffix).
        color_of: per-label palette slot index; defaults to position.
        width: total SVG width in px.
        height: total SVG height in px.

    Returns:
        An ``<svg>`` fragment (no external references, CSS-variable fills).
    """
    labels = list(labels if labels is not None else figure.series)
    display_names = display_names or {}
    if color_of is None:
        color_of = {label: index for index, label in enumerate(labels)}
    categories = list(figure.categories)
    values = {label: [float(v) for v in figure.series[label]]
              for label in labels}
    errors = {label: [float(e) for e in figure.errors[label]]
              if label in figure.errors else [0.0] * len(categories)
              for label in labels}

    low = min(0.0, min(min(v - e for v, e in zip(values[label], errors[label]))
                       for label in labels))
    high = max(0.0, max(max(v + e for v, e in zip(values[label], errors[label]))
                        for label in labels))
    ticks = _nice_ticks(low, high)
    low, high = min(ticks[0], low), max(ticks[-1], high)

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def y_of(value: float) -> float:
        return _MARGIN_TOP + plot_h * (high - value) / (high - low)

    band_w = plot_w / max(1, len(categories))
    bar_w = min(_MAX_BAR_PX,
                (band_w * 0.82 - _BAR_GAP_PX * (len(labels) - 1)) / len(labels))
    group_w = bar_w * len(labels) + _BAR_GAP_PX * (len(labels) - 1)

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} '
        f'{height}" width="{width}" height="{height}" role="img" '
        f'aria-label="{_esc(figure.name)}">')
    # Gridlines + y tick labels (recessive hairlines).
    for tick in ticks:
        y = y_of(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" x2="{width - _MARGIN_RIGHT}" '
            f'y1="{_num(y)}" y2="{_num(y)}" stroke="var(--grid)" '
            'stroke-width="1"/>')
        parts.append(
            f'<text x="{_MARGIN_LEFT - 6}" y="{_num(y + 3.5)}" '
            'text-anchor="end" font-size="11" fill="var(--ink-3)">'
            f'{_esc(_tick_label(tick, figure.unit))}</text>')
    # Baseline (zero) emphasised one step over the grid.
    zero_y = y_of(0.0)
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" x2="{width - _MARGIN_RIGHT}" '
        f'y1="{_num(zero_y)}" y2="{_num(zero_y)}" stroke="var(--ink-3)" '
        'stroke-width="1"/>')
    # Bars with CI whiskers.
    for cat_index, category in enumerate(categories):
        group_x = (_MARGIN_LEFT + band_w * cat_index
                   + (band_w - group_w) / 2.0)
        for pos, label in enumerate(labels):
            value = values[label][cat_index]
            error = errors[label][cat_index]
            x = group_x + pos * (bar_w + _BAR_GAP_PX)
            slot = color_of[label] % len(PALETTE_LIGHT) + 1
            shown = display_names.get(label, label)
            tooltip = (f"{category} · {shown}: "
                       f"{format_value(value, figure.unit, error=error if error else None)}")
            parts.append('<g>')
            parts.append(
                f'<path d="{_bar_path(x, bar_w, y_of(value), zero_y)}" '
                f'style="fill:var(--s{slot})"/>')
            if error:
                cx = x + bar_w / 2.0
                y_lo, y_hi = y_of(value - error), y_of(value + error)
                cap = min(6.0, bar_w * 0.4)
                parts.append(
                    f'<line x1="{_num(cx)}" x2="{_num(cx)}" '
                    f'y1="{_num(y_hi)}" y2="{_num(y_lo)}" '
                    'stroke="var(--ink-2)" stroke-width="1.5"/>')
                for y_cap in (y_hi, y_lo):
                    parts.append(
                        f'<line x1="{_num(cx - cap)}" x2="{_num(cx + cap)}" '
                        f'y1="{_num(y_cap)}" y2="{_num(y_cap)}" '
                        'stroke="var(--ink-2)" stroke-width="1.5"/>')
            parts.append(f'<title>{_esc(tooltip)}</title>')
            parts.append('</g>')
        parts.append(
            f'<text x="{_num(_MARGIN_LEFT + band_w * (cat_index + 0.5))}" '
            f'y="{height - _MARGIN_BOTTOM + 16}" text-anchor="middle" '
            f'font-size="11" fill="var(--ink-2)">{_esc(category)}</text>')
    parts.append('</svg>')
    return "".join(parts)


def _legend_html(entries: Sequence[Tuple[str, int]]) -> str:
    """Legend keys: (display name, palette slot index starting at 0)."""
    keys = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:var(--s{slot % len(PALETTE_LIGHT) + 1})"></span>'
        f'{_esc(name)}</span>'
        for name, slot in entries)
    return f'<div class="legend">{keys}</div>'


def _figure_charts_html(figure: FigureSeries) -> str:
    """Chart(s) + legend for one figure; facets when series exceed slots.

    A ``prefix-suffix`` labelling (Figure 10, the interval sweeps) with more
    series than palette slots becomes one panel per suffix with the prefixes
    as the coloured — and colour-stable — series; anything else over the
    slot budget is chunked into panels of at most eight series.
    """
    labels = list(figure.series)
    slots = len(PALETTE_LIGHT)
    if len(labels) <= slots:
        svg = render_figure_svg(figure)
        chart = f"<figure>{svg}</figure>"
        if len(labels) >= 2:
            chart += _legend_html([(label, index)
                                   for index, label in enumerate(labels)])
        return chart
    groups = suffix_groups(labels)
    parts: List[str] = []
    if groups is not None and all(len(members) <= slots
                                  for members in groups.values()):
        prefixes = list(dict.fromkeys(
            label.rpartition("-")[0] for label in labels))
        color_index = {prefix: index for index, prefix in enumerate(prefixes)}
        for suffix, members in groups.items():
            display = {label: label.rpartition("-")[0] for label in members}
            color_of = {label: color_index[display[label]]
                        for label in members}
            svg = render_figure_svg(figure, labels=members,
                                    display_names=display, color_of=color_of,
                                    height=220)
            parts.append(f"<figure>{svg}<figcaption>{_esc(suffix)}"
                         "</figcaption></figure>")
        parts.append(_legend_html([(prefix, color_index[prefix])
                                   for prefix in prefixes]))
        return "".join(parts)
    for start in range(0, len(labels), slots):
        chunk = labels[start:start + slots]
        color_of = {label: index for index, label in enumerate(chunk)}
        svg = render_figure_svg(figure, labels=chunk, color_of=color_of,
                                height=220)
        parts.append(f"<figure>{svg}</figure>")
        parts.append(_legend_html([(label, index)
                                   for index, label in enumerate(chunk)]))
    return "".join(parts)


def _table_html(headers: Sequence[str], rows: Sequence[Sequence],
                row_classes: Optional[Sequence[str]] = None) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body: List[str] = []
    for index, row in enumerate(rows):
        cls = f' class="{row_classes[index]}"' if row_classes and row_classes[index] else ""
        cells = "".join(f"<td>{_esc(cell)}</td>" for cell in row)
        body.append(f"<tr{cls}>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _figure_values_table(figure: FigureSeries) -> str:
    """The chart's table view (every chart is also readable without colour)."""
    headers = ["case"] + list(figure.series)
    rows: List[List[str]] = []
    for index, category in enumerate(figure.categories):
        row = [category]
        for label in figure.series:
            error = (figure.errors[label][index]
                     if label in figure.errors else None)
            row.append(format_value(figure.series[label][index], figure.unit,
                                    error=error))
        rows.append(row)
    average_row = ["average"]
    for label in figure.series:
        average_row.append(format_value(figure.average(label), figure.unit))
    rows.append(average_row)
    return (f"<details><summary>Value table · {_esc(figure.name)}</summary>"
            f"{_table_html(headers, rows)}</details>")


def _experiment_section(key: str, result) -> str:
    parts = [f'<h3 id="{_esc(key)}">{_esc(result.name)}: '
             f'{_esc(result.description)}</h3>']
    if result.paper_claim:
        parts.append(f'<p class="notes">Paper: {_esc(result.paper_claim)}</p>')
    if result.figure is not None:
        parts.append(_figure_charts_html(result.figure))
        parts.append(_figure_values_table(result.figure))
    if result.rows:
        parts.append(_table_html(result.headers, result.rows))
    elif result.figure is None:
        parts.append('<p class="notes">(empty result: no figure and no '
                     'rows)</p>')
    if result.notes:
        parts.append(f'<p class="notes">Notes: {_esc(result.notes)}</p>')
    return "".join(parts)


def _expectations_table(results: Mapping[str, object]) -> str:
    headers = ["Artefact", "Paper reports", "Measured here"]
    rows: List[List[str]] = []
    for key, expectation in PAPER_EXPECTATIONS.items():
        result = results.get(key)
        if result is None:
            measured = "(not run)"
        elif getattr(result, "figure", None) is not None:
            measured = summarise_overhead_figure(result)
        elif getattr(result, "rows", None):
            measured = f"{len(result.rows)} rows reproduced"
        else:
            measured = "(empty result)"
        rows.append([expectation.artefact, expectation.claim, measured])
    return _table_html(headers, rows)


def _significance_section(matrices: Mapping[str, SignificanceMatrix]) -> str:
    if not matrices:
        return ("<p class=\"notes\">No repeated figures to test — rerun with "
                "<code>--repetitions N</code> (N ≥ 2) for per-seed paired "
                "tests.</p>")
    parts: List[str] = []
    for key, matrix in matrices.items():
        pairing = ("per-seed" if matrix.repetitions > 1
                   else "per-case (single seed)")
        parts.append(
            f"<h3>{_esc(matrix.name)}</h3>"
            f'<p class="notes">{matrix.observations} paired {pairing} '
            f"observations per condition over {matrix.repetitions} "
            "repetition(s); p-values are Holm-adjusted across the "
            "matrix.</p>")
        rows = matrix.rows()
        classes = ["frontier" if row[-1] == "yes" else "" for row in rows]
        for row in rows:
            row[-1] = row[-1]
        parts.append(_table_html(matrix.headers(), rows, classes))
    return "".join(parts)


def render_html_report(results: Mapping[str, object],
                       provenance: Mapping[str, str], *,
                       matrices: Optional[Mapping[str, SignificanceMatrix]] = None,
                       pareto: Optional[Tuple[Sequence[str], Sequence[Sequence[str]],
                                              Sequence[bool]]] = None,
                       title: str = "Secure branch predictor — reproduction report"
                       ) -> str:
    """Assemble the report HTML from pre-computed pieces (pure function).

    Args:
        results: ``{experiment key: ExperimentResult}`` in display order.
        provenance: ordered ``{field: value}`` block (engine version,
            manifest hash, store stats line, ...).
        matrices: significance matrices keyed by experiment.
        pareto: ``(headers, rows, frontier flags)`` from
            :func:`repro.analysis.pareto.pareto_table`.
        title: page title.

    Returns:
        The complete HTML document as a string.
    """
    parts: List[str] = []
    parts.append("<!DOCTYPE html>")
    parts.append('<html lang="en"><head><meta charset="utf-8">')
    parts.append('<meta name="viewport" content="width=device-width, '
                 'initial-scale=1">')
    parts.append(f"<title>{_esc(title)}</title>")
    parts.append(f"<style>{_CSS}</style></head><body>")
    parts.append(f"<h1>{_esc(title)}</h1>")
    parts.append('<p class="subtitle">A Lightweight Isolation Mechanism for '
                 'Secure Branch Predictors (DAC 2021) — measured here, with '
                 '95% CIs, paired significance tests and Pareto analysis. '
                 'See <code>docs/report.md</code> for how to read this '
                 'report.</p>')

    parts.append("<h2>Provenance</h2>")
    items = "".join(f"<dt>{_esc(field)}</dt><dd>{_esc(value)}</dd>"
                    for field, value in provenance.items())
    parts.append(f'<dl class="provenance">{items}</dl>')

    parts.append("<h2>Paper vs. measured</h2>")
    parts.append(_expectations_table(results))

    parts.append("<h2>Experiments</h2>")
    for key, result in results.items():
        parts.append(_experiment_section(key, result))

    parts.append("<h2>Significance</h2>")
    parts.append('<p class="notes">Paired tests between mechanism conditions '
                 'on the same (seed, benchmark) observations: Student '
                 't when the paired differences pass a normality screen, '
                 'Wilcoxon signed-rank otherwise. "yes" means the '
                 'Holm-adjusted p-value is below α=0.05.</p>')
    parts.append(_significance_section(matrices or {}))

    if pareto is not None:
        headers, rows, frontier = pareto
        parts.append("<h2>Security / overhead / hardware-cost Pareto</h2>")
        parts.append('<p class="notes">Leakage is the summed mutual '
                     'information of the PHT-direction and BTB-occupancy '
                     'channels under a concurrent (SMT) attacker, with '
                     'seeded bootstrap CIs; bold rows are Pareto-optimal '
                     '(no mechanism is at least as good on every axis and '
                     'better on one).</p>')
        classes = ["frontier" if flag else "" for flag in frontier]
        parts.append(_table_html(headers, rows, classes))

    parts.append("<footer>Self-contained report: inline CSS + SVG, no "
                 "external fetches, no scripts. Every number is "
                 "deterministic given the manifest, seeds and result store "
                 "named in the provenance block.</footer>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def build_html_report(results: Mapping[str, object],
                      provenance: Mapping[str, str], *,
                      include_pareto: bool = True,
                      leakage_trials: int = 200,
                      bootstrap_resamples: int = 500,
                      seed: int = 0xD1CE) -> str:
    """Compute significance matrices (+ optionally Pareto) and render.

    The convenience entry point used by the CLI and the service: takes the
    assembled experiment results and the provenance block, derives every
    analysis artefact deterministically, and returns the final HTML.

    Args:
        results: ``{experiment key: ExperimentResult}`` in display order.
        provenance: ordered provenance fields for the header block.
        include_pareto: run the (seeded) leakage measurements backing the
            Pareto table; disable for fast paths that only need figures.
        leakage_trials: prime–probe trials per leakage channel.
        bootstrap_resamples: resamples per leakage bootstrap CI.
        seed: base RNG seed for leakage and bootstrap.

    Returns:
        The complete HTML document as a string.
    """
    matrices: Dict[str, SignificanceMatrix] = {}
    for key, result in results.items():
        matrix = significance_matrix(result)
        if matrix is not None:
            matrices[key] = matrix
    pareto_block = None
    if include_pareto:
        from .pareto import mechanism_profiles, pareto_table

        profiles = mechanism_profiles(results, trials=leakage_trials,
                                      n_boot=bootstrap_resamples, seed=seed)
        headers, rows = pareto_table(profiles)
        pareto_block = (headers, rows,
                        [profile.on_frontier for profile in profiles])
    return render_html_report(results, provenance, matrices=matrices,
                              pareto=pareto_block)
