"""Metrics helpers: overheads, means, MPKI."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["relative_overhead", "arithmetic_mean", "geometric_mean",
           "percent", "mpki", "normalise"]


def relative_overhead(value: float, baseline: float) -> float:
    """Relative slowdown of ``value`` versus ``baseline`` (positive = slower)."""
    if baseline == 0:
        return 0.0
    return value / baseline - 1.0


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent(fraction: float, digits: int = 2) -> str:
    """Format a fraction as a signed percentage string."""
    return f"{100.0 * fraction:+.{digits}f}%"


def mpki(mispredictions: int, instructions: int) -> float:
    """Mispredictions per thousand instructions."""
    if instructions == 0:
        return 0.0
    return 1000.0 * mispredictions / instructions


def normalise(values: Sequence[float], reference: float) -> list:
    """Divide every value by a reference (1.0 when the reference is zero)."""
    if reference == 0:
        return [1.0 for _ in values]
    return [v / reference for v in values]
