"""Reporting helpers: metrics, tables, figures, sweeps, export and reports."""

from .export import (
    figure_from_dict,
    figure_to_dict,
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_figure_csv,
    save_result_json,
    save_results_json,
)
from .figures import FigureSeries
from .metrics import (
    arithmetic_mean,
    geometric_mean,
    mpki,
    normalise,
    percent,
    relative_overhead,
)
from .stats import (
    PointStats,
    fold_experiment_results,
    fold_figures,
    summarize,
    t_critical_95,
)
from .report import (
    PAPER_EXPECTATIONS,
    PaperExpectation,
    ReproductionReport,
    summarise_overhead_figure,
)
from .sweeps import SweepPoint, SweepResult, sweep
from .tables import render_csv, render_table

__all__ = [
    "FigureSeries",
    "figure_to_dict",
    "figure_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result_json",
    "load_result_json",
    "save_results_json",
    "save_figure_csv",
    "PointStats",
    "summarize",
    "t_critical_95",
    "fold_figures",
    "fold_experiment_results",
    "PaperExpectation",
    "PAPER_EXPECTATIONS",
    "ReproductionReport",
    "summarise_overhead_figure",
    "SweepPoint",
    "SweepResult",
    "sweep",
    "arithmetic_mean",
    "geometric_mean",
    "mpki",
    "normalise",
    "percent",
    "relative_overhead",
    "render_csv",
    "render_table",
]
