"""Reporting helpers: metrics, tables, figures, sweeps, export and reports."""

from .export import (
    figure_from_dict,
    figure_to_dict,
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_figure_csv,
    save_result_json,
    save_results_json,
)
from .figures import FigureSeries
from .metrics import (
    arithmetic_mean,
    geometric_mean,
    mpki,
    normalise,
    percent,
    relative_overhead,
)
from .stats import (
    DegreesOfFreedomRangeError,
    PointStats,
    fold_experiment_results,
    fold_figures,
    summarize,
    t_critical_95,
)
from .significance import (
    PairwiseComparison,
    SignificanceMatrix,
    TestResult,
    bootstrap_ci,
    compare_paired,
    leakage_mi_ci,
    paired_t,
    significance_matrix,
    wilcoxon_signed_rank,
)
from .pareto import (
    MechanismProfile,
    mechanism_profiles,
    pareto_frontier,
    pareto_table,
)
from .htmlreport import build_html_report, render_html_report
from .report import (
    PAPER_EXPECTATIONS,
    PaperExpectation,
    ReproductionReport,
    summarise_overhead_figure,
)
from .sweeps import SweepPoint, SweepResult, sweep
from .tables import render_csv, render_table

__all__ = [
    "FigureSeries",
    "figure_to_dict",
    "figure_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result_json",
    "load_result_json",
    "save_results_json",
    "save_figure_csv",
    "PointStats",
    "DegreesOfFreedomRangeError",
    "summarize",
    "t_critical_95",
    "fold_figures",
    "fold_experiment_results",
    "TestResult",
    "PairwiseComparison",
    "SignificanceMatrix",
    "paired_t",
    "wilcoxon_signed_rank",
    "compare_paired",
    "bootstrap_ci",
    "leakage_mi_ci",
    "significance_matrix",
    "MechanismProfile",
    "mechanism_profiles",
    "pareto_frontier",
    "pareto_table",
    "build_html_report",
    "render_html_report",
    "PaperExpectation",
    "PAPER_EXPECTATIONS",
    "ReproductionReport",
    "summarise_overhead_figure",
    "SweepPoint",
    "SweepResult",
    "sweep",
    "arithmetic_mean",
    "geometric_mean",
    "mpki",
    "normalise",
    "percent",
    "relative_overhead",
    "render_csv",
    "render_table",
]
