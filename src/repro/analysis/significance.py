"""Paired significance tests and bootstrap CIs over repetition replicates.

PR 5 folds ``--repetitions N`` runs into mean ± 95% CI.  This module answers
the next question — *is mechanism A significantly different from mechanism
B?* — with classical paired tests over the per-seed observations that
:func:`repro.analysis.stats.fold_experiment_results` preserves on
``ExperimentResult.replicates``:

* :func:`paired_t` — paired Student t-test on per-seed overheads, with the
  two-sided p-value computed from the regularised incomplete beta function
  (pure stdlib, no scipy);
* :func:`wilcoxon_signed_rank` — the distribution-free fallback used when
  the paired differences fail a Jarque–Bera normality screen (leakage-style
  metrics are bounded at zero and visibly non-normal);
* :func:`compare_paired` — the policy that picks between the two;
* :func:`bootstrap_ci` / :func:`leakage_mi_ci` — seeded percentile bootstrap
  confidence intervals for statistics without a usable parametric CI, most
  importantly the mutual-information estimates from
  :mod:`repro.security.leakage`;
* :func:`significance_matrix` — all-pairs mechanism comparison for one
  folded experiment result, the table the HTML report renders.

Everything here is deterministic: the tests are closed-form functions of the
repetition values, and every bootstrap draws from a ``random.Random`` seeded
by the caller, so re-running a report from the same store reproduces every
p-value and CI bit-for-bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .figures import FigureSeries

__all__ = [
    "TestResult",
    "student_t_sf",
    "t_p_value_two_sided",
    "normal_sf",
    "paired_t",
    "wilcoxon_signed_rank",
    "jarque_bera",
    "looks_normal",
    "compare_paired",
    "holm_adjust",
    "bootstrap_ci",
    "leakage_mi_ci",
    "PairwiseComparison",
    "SignificanceMatrix",
    "suffix_groups",
    "significance_matrix",
]

#: Default significance level used by the report tables.
ALPHA = 0.05

#: Minimum paired sample size for the Jarque–Bera screen to be meaningful;
#: below it the paired t-test is used unconditionally (documented behaviour:
#: with so few observations no normality test has power anyway).
_NORMALITY_MIN_N = 8

#: 95th percentile of the chi-squared distribution with 2 degrees of freedom
#: (the Jarque–Bera statistic's asymptotic null distribution).
_JB_CRITICAL_95 = 5.991


# ---------------------------------------------------------------------------
# Distribution functions (stdlib-only special functions)
# ---------------------------------------------------------------------------

def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz's method)."""
    max_iterations = 300
    epsilon = 3.0e-14
    tiny = 1.0e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            return h
    raise ArithmeticError(f"betacf failed to converge for a={a}, b={b}, x={x}")


def _betainc_reg(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log(1.0 - x))
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: int) -> float:
    """One-sided survival function P(T > t) of Student's t with ``df`` dof."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    p = 0.5 * _betainc_reg(df / 2.0, 0.5, df / (df + t * t))
    return p if t >= 0.0 else 1.0 - p


def t_p_value_two_sided(t: float, df: int) -> float:
    """Two-sided p-value of a t statistic with ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _betainc_reg(df / 2.0, 0.5, df / (df + t * t))


def normal_sf(z: float) -> float:
    """One-sided survival function P(Z > z) of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


# ---------------------------------------------------------------------------
# Paired tests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TestResult:
    """Outcome of one paired hypothesis test.

    Attributes:
        method: ``"paired-t"`` or ``"wilcoxon"``.
        statistic: the test statistic (t, or the Wilcoxon z approximation).
        p_value: two-sided p-value.
        n: number of informative pairs the statistic was computed from.
    """

    method: str
    statistic: float
    p_value: float
    n: int

    def significant(self, alpha: float = ALPHA) -> bool:
        """Whether the null hypothesis is rejected at level ``alpha``."""
        return self.p_value < alpha


def _paired_diffs(xs: Sequence[float], ys: Sequence[float]) -> List[float]:
    if len(xs) != len(ys):
        raise ValueError(
            f"paired samples must have equal length, got {len(xs)} and {len(ys)}")
    if len(xs) < 2:
        raise ValueError(f"need at least 2 pairs, got {len(xs)}")
    return [float(x) - float(y) for x, y in zip(xs, ys)]


def paired_t(xs: Sequence[float], ys: Sequence[float]) -> TestResult:
    """Two-sided paired Student t-test on two equal-length samples.

    Degenerate inputs are handled explicitly: if every pairwise difference
    is identical the sample variance is zero, and the test reports p=1.0
    for a zero shift (no evidence of a difference) or p=0.0 for a non-zero
    constant shift (the samples differ deterministically).
    """
    diffs = _paired_diffs(xs, ys)
    n = len(diffs)
    mean = math.fsum(diffs) / n
    variance = math.fsum((d - mean) ** 2 for d in diffs) / (n - 1)
    if variance == 0.0:
        if mean == 0.0:
            return TestResult("paired-t", 0.0, 1.0, n)
        return TestResult("paired-t", math.copysign(math.inf, mean), 0.0, n)
    t = mean / math.sqrt(variance / n)
    return TestResult("paired-t", t, t_p_value_two_sided(t, n - 1), n)


def _average_ranks(values: Sequence[float]) -> List[float]:
    """Ranks (1-based) with ties receiving the average of their positions."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tail = position
        while (tail + 1 < len(order)
               and values[order[tail + 1]] == values[order[position]]):
            tail += 1
        average = (position + tail) / 2.0 + 1.0
        for k in range(position, tail + 1):
            ranks[order[k]] = average
        position = tail + 1
    return ranks


def wilcoxon_signed_rank(xs: Sequence[float], ys: Sequence[float]) -> TestResult:
    """Two-sided Wilcoxon signed-rank test (normal approximation).

    Zero differences are dropped (Wilcoxon's original treatment); ties among
    the absolute differences receive average ranks with the standard tie
    correction to the null variance, and the z statistic uses a 0.5
    continuity correction.  The normal approximation is documented as
    approximate for very small samples — which is why
    :func:`compare_paired` only falls back to it when the sample is large
    enough for the normality screen to have rejected the t-test.
    """
    diffs = [d for d in _paired_diffs(xs, ys) if d != 0.0]
    n = len(diffs)
    if n == 0:
        return TestResult("wilcoxon", 0.0, 1.0, 0)
    ranks = _average_ranks([abs(d) for d in diffs])
    w_plus = math.fsum(rank for rank, d in zip(ranks, diffs) if d > 0.0)
    mean = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction: subtract sum(t^3 - t)/48 over tie groups.
    tie_counts: Dict[float, int] = {}
    for d in diffs:
        tie_counts[abs(d)] = tie_counts.get(abs(d), 0) + 1
    variance -= math.fsum(t ** 3 - t for t in tie_counts.values()) / 48.0
    if variance <= 0.0:
        return TestResult("wilcoxon", 0.0, 1.0, n)
    numerator = w_plus - mean
    correction = 0.5 if numerator > 0 else (-0.5 if numerator < 0 else 0.0)
    z = (numerator - correction) / math.sqrt(variance)
    return TestResult("wilcoxon", z, 2.0 * normal_sf(abs(z)), n)


def jarque_bera(values: Sequence[float]) -> float:
    """Jarque–Bera normality statistic (asymptotically chi-squared, 2 dof)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = math.fsum(values) / n
    m2 = math.fsum((v - mean) ** 2 for v in values) / n
    if m2 == 0.0:
        return 0.0
    m3 = math.fsum((v - mean) ** 3 for v in values) / n
    m4 = math.fsum((v - mean) ** 4 for v in values) / n
    skewness = m3 / m2 ** 1.5
    excess_kurtosis = m4 / m2 ** 2 - 3.0
    return n / 6.0 * (skewness ** 2 + excess_kurtosis ** 2 / 4.0)


def looks_normal(values: Sequence[float]) -> bool:
    """Normality screen for the paired differences.

    Samples smaller than 8 always pass (no normality test has power there,
    and the paired t is the conventional default); larger samples pass when
    the Jarque–Bera statistic stays below its chi-squared 95% critical value.
    """
    if len(values) < _NORMALITY_MIN_N:
        return True
    return jarque_bera(values) <= _JB_CRITICAL_95


def compare_paired(xs: Sequence[float], ys: Sequence[float]) -> TestResult:
    """Paired comparison: t-test when differences look normal, else Wilcoxon."""
    diffs = _paired_diffs(xs, ys)
    if looks_normal(diffs):
        return paired_t(xs, ys)
    return wilcoxon_signed_rank(xs, ys)


def holm_adjust(p_values: Sequence[float]) -> List[float]:
    """Holm–Bonferroni step-down adjustment for multiple comparisons.

    Returns adjusted p-values in the input order; monotonicity is enforced
    so an adjusted value never undercuts a more significant one.
    """
    m = len(p_values)
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running_max = 0.0
    for rank, index in enumerate(order):
        value = min(1.0, (m - rank) * p_values[index])
        running_max = max(running_max, value)
        adjusted[index] = running_max
    return adjusted


# ---------------------------------------------------------------------------
# Bootstrap confidence intervals
# ---------------------------------------------------------------------------

def bootstrap_ci(values: Sequence[float], *, confidence: float = 0.95,
                 n_boot: int = 2000, seed: int = 0xB007,
                 statistic=None) -> Tuple[float, float]:
    """Seeded percentile-bootstrap CI for a statistic of one sample.

    Args:
        values: the observed sample.
        confidence: two-sided confidence level.
        n_boot: number of bootstrap resamples.
        seed: RNG seed; the same seed reproduces the interval exactly.
        statistic: callable reducing a list of floats to one float; the
            sample mean by default.

    Returns:
        ``(low, high)`` percentile bounds.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if statistic is None:
        statistic = lambda sample: math.fsum(sample) / len(sample)
    rng = random.Random(seed)
    n = len(values)
    estimates = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(n_boot))
    return (_percentile(estimates, (1.0 - confidence) / 2.0),
            _percentile(estimates, 1.0 - (1.0 - confidence) / 2.0))


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending-sorted sample."""
    if not sorted_values:
        raise ValueError("empty sample")
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def leakage_mi_ci(estimate, *, confidence: float = 0.95, n_boot: int = 1000,
                  seed: int = 0xB007) -> Tuple[float, float]:
    """Bootstrap CI for a leakage estimate's mutual information.

    Resamples the 2×2 (secret × observation) joint count table
    multinomially — each resample draws ``trials`` cells with the observed
    cell probabilities — and takes percentile bounds of the plug-in MI.
    Mutual information is bounded below by zero and heavily skewed near it,
    which is exactly why the parametric t interval is wrong here and the
    paper-grade summary uses this bootstrap instead.

    Args:
        estimate: a :class:`repro.security.leakage.LeakageEstimate` (or any
            object with ``joint_counts`` and ``trials``).
        confidence: two-sided confidence level.
        n_boot: number of bootstrap resamples.
        seed: RNG seed (deterministic interval for a given estimate).

    Returns:
        ``(low, high)`` bounds in bits per trial.
    """
    from ..security.leakage import mutual_information

    counts = [count for row in estimate.joint_counts for count in row]
    total = sum(counts)
    if total == 0:
        return (0.0, 0.0)
    cells = [(s, o) for s in range(len(estimate.joint_counts))
             for o in range(len(estimate.joint_counts[0]))]
    cumulative = []
    running = 0
    for count in counts:
        running += count
        cumulative.append(running / total)
    rng = random.Random(seed)
    estimates = []
    for _ in range(n_boot):
        resampled = [[0] * len(estimate.joint_counts[0])
                     for _ in range(len(estimate.joint_counts))]
        for _ in range(total):
            draw = rng.random()
            for cell_index, bound in enumerate(cumulative):
                if draw < bound:
                    s, o = cells[cell_index]
                    resampled[s][o] += 1
                    break
            else:
                s, o = cells[-1]
                resampled[s][o] += 1
        estimates.append(mutual_information(resampled))
    estimates.sort()
    return (_percentile(estimates, (1.0 - confidence) / 2.0),
            _percentile(estimates, 1.0 - (1.0 - confidence) / 2.0))


# ---------------------------------------------------------------------------
# Mechanism-pair significance matrices over experiment replicates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PairwiseComparison:
    """One cell of a significance matrix: condition ``a`` versus ``b``."""

    a: str
    b: str
    mean_a: float
    mean_b: float
    mean_diff: float
    test: TestResult
    adjusted_p: float = 1.0

    def significant(self, alpha: float = ALPHA) -> bool:
        """Whether the Holm-adjusted p-value rejects at level ``alpha``."""
        return self.adjusted_p < alpha


@dataclass
class SignificanceMatrix:
    """All-pairs comparison of an experiment's mechanism conditions.

    Attributes:
        name: the source figure's name.
        conditions: condition labels, in figure order.
        observations: number of paired observations per condition
            (repetitions × categories × grouped series).
        repetitions: how many per-seed replicates fed the pairing (1 means
            the pairing is across benchmark cases only).
        cells: upper-triangle comparisons keyed ``(a, b)`` in condition
            order; p-values are Holm-adjusted across the whole matrix.
    """

    name: str
    conditions: List[str]
    observations: int
    repetitions: int
    cells: Dict[Tuple[str, str], PairwiseComparison] = field(default_factory=dict)

    def comparison(self, a: str, b: str) -> PairwiseComparison:
        """The comparison between two conditions (order-insensitive)."""
        if (a, b) in self.cells:
            return self.cells[(a, b)]
        return self.cells[(b, a)]

    def rows(self) -> List[List[str]]:
        """Tabular form: one row per pair, for text/HTML rendering."""
        table = []
        for (a, b), cell in self.cells.items():
            marker = "yes" if cell.significant() else "no"
            table.append([
                f"{a} vs {b}",
                f"{cell.mean_diff:+.4g}",
                cell.test.method,
                f"{cell.test.p_value:.4g}",
                f"{cell.adjusted_p:.4g}",
                marker,
            ])
        return table

    @staticmethod
    def headers() -> List[str]:
        """Column headers matching :meth:`rows`."""
        return ["pair", "Δ mean", "test", "p", "p (Holm)",
                f"significant (α={ALPHA:g})"]


def suffix_groups(labels: Sequence[str]) -> Optional[Dict[str, List[str]]]:
    """Group ``{prefix}-{suffix}`` series labels by their mechanism suffix.

    Figure 10 names its twelve series ``gshare-CF``, ``ltage-PF``, … — the
    mechanism suffix is the condition under test and the predictor prefix is
    a blocking factor.  This helper recovers that structure: it returns
    ``{suffix: [labels...]}`` when *every* label splits as ``prefix-suffix``
    and every prefix carries the same suffix set (so the pairing across
    groups is aligned), and ``None`` for any other labelling scheme.
    """
    split: List[Tuple[str, str]] = []
    for label in labels:
        prefix, separator, suffix = label.rpartition("-")
        if not separator or not prefix or not suffix:
            return None
        split.append((prefix, suffix))
    prefixes = list(dict.fromkeys(prefix for prefix, _ in split))
    suffixes = list(dict.fromkeys(suffix for _, suffix in split))
    if len(prefixes) < 2 or len(suffixes) < 2:
        return None
    seen = {(prefix, suffix) for prefix, suffix in split}
    if seen != {(p, s) for p in prefixes for s in suffixes}:
        return None
    groups = {suffix: [f"{prefix}-{suffix}" for prefix in prefixes]
              for suffix in suffixes}
    return groups


def _condition_observations(figures: Sequence[FigureSeries],
                            members: Sequence[str]) -> List[float]:
    """Flatten one condition's values in (repetition, member, category) order."""
    observations: List[float] = []
    for figure in figures:
        for label in members:
            observations.extend(float(v) for v in figure.series[label])
    return observations


def significance_matrix(result, *,
                        groups: Optional[Mapping[str, Sequence[str]]] = None
                        ) -> Optional[SignificanceMatrix]:
    """Build the all-pairs mechanism significance matrix for one result.

    The paired observations come from ``result.replicates`` (the per-seed
    figures preserved by the repetition fold); each pair aligns the same
    (repetition, series, benchmark category) coordinate across two
    conditions, which is what makes the paired tests valid.  With no
    replicates (a ``repetitions=1`` run) the folded figure itself supplies a
    single replicate, pairing across benchmark cases only.

    Args:
        result: an :class:`repro.experiments.base.ExperimentResult`.
        groups: optional ``{condition: [series labels]}`` mapping; by default
            each series label is its own condition, except that
            ``prefix-suffix`` labellings like Figure 10's are auto-grouped by
            mechanism suffix (see :func:`suffix_groups`).

    Returns:
        The matrix, or ``None`` when the result has no figure or fewer than
        two conditions to compare.
    """
    if result.figure is None:
        return None
    figures: Sequence[FigureSeries] = result.replicates or [result.figure]
    labels = list(result.figure.series)
    if groups is None:
        groups = suffix_groups(labels) or {label: [label] for label in labels}
    conditions = list(groups)
    if len(conditions) < 2:
        return None
    samples = {condition: _condition_observations(figures, groups[condition])
               for condition in conditions}
    sizes = {len(sample) for sample in samples.values()}
    if len(sizes) != 1 or min(sizes) < 2:
        return None
    matrix = SignificanceMatrix(name=result.figure.name,
                                conditions=conditions,
                                observations=sizes.pop(),
                                repetitions=len(figures))
    pairs = [(a, b) for index, a in enumerate(conditions)
             for b in conditions[index + 1:]]
    raw: List[PairwiseComparison] = []
    for a, b in pairs:
        xs, ys = samples[a], samples[b]
        test = compare_paired(xs, ys)
        raw.append(PairwiseComparison(
            a=a, b=b,
            mean_a=math.fsum(xs) / len(xs),
            mean_b=math.fsum(ys) / len(ys),
            mean_diff=math.fsum(x - y for x, y in zip(xs, ys)) / len(xs),
            test=test))
    adjusted = holm_adjust([cell.test.p_value for cell in raw])
    for cell, adjusted_p in zip(raw, adjusted):
        matrix.cells[(cell.a, cell.b)] = PairwiseComparison(
            a=cell.a, b=cell.b, mean_a=cell.mean_a, mean_b=cell.mean_b,
            mean_diff=cell.mean_diff, test=cell.test, adjusted_p=adjusted_p)
    return matrix
