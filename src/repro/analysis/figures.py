"""Figure data series: the bar-chart data behind the paper's figures.

Figures are reproduced as *data* (per-case series plus averages) rather than
as rendered images; :meth:`FigureSeries.render` produces an ASCII bar chart
good enough to eyeball the shape, and :meth:`FigureSeries.to_csv` exports the
series for external plotting.  Repetition-averaged figures additionally carry
one error bar (95% CI half-width) per point; see :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .metrics import arithmetic_mean, geometric_mean
from .tables import render_csv, render_table

__all__ = ["FigureSeries", "format_value"]


def format_value(value: float, unit: str, *, signed: bool = True,
                 error: Optional[float] = None) -> str:
    """The one display rule for figure measures, shared with the
    repetition-summary tables: percentages for ``fraction`` units, the
    table float style otherwise, ``±error`` appended when given."""
    if unit == "fraction":
        lead = f"{100 * value:+.2f}" if signed else f"{100 * value:.2f}"
        if error is None:
            return f"{lead}%"
        return f"{lead}±{100 * error:.2f}%"
    if error is None:
        return f"{value:.4g}"
    return f"{value:.4g}±{error:.4g}"


@dataclass
class FigureSeries:
    """Grouped bar-chart data (categories × series).

    Attributes:
        name: figure identifier (e.g. ``"Figure 7"``).
        description: what the figure shows.
        categories: x-axis category labels (e.g. ``case1`` ... ``case12``).
        series: mapping from series label (e.g. ``XOR-BTB-8M``) to one value
            per category.
        unit: unit of the values (``"fraction"`` for normalised overheads).
        errors: optional per-series error bars (95% CI half-widths), one per
            category; populated by repetition-averaged figures and empty for
            single-trajectory runs.
    """

    name: str
    description: str
    categories: List[str]
    series: Dict[str, List[float]] = field(default_factory=dict)
    unit: str = "fraction"
    errors: Dict[str, List[float]] = field(default_factory=dict)

    def add_series(self, label: str, values: Sequence[float],
                   errors: Optional[Sequence[float]] = None) -> None:
        """Add one series; must have one value (and error, if given) per
        category."""
        values = list(values)
        if len(values) != len(self.categories):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(self.categories)} categories")
        self.series[label] = values
        if errors is not None:
            errors = list(errors)
            if len(errors) != len(self.categories):
                raise ValueError(
                    f"series {label!r} has {len(errors)} error bars for "
                    f"{len(self.categories)} categories")
            self.errors[label] = errors
        else:
            # Replacing a series without errors must not leave the old
            # series' error bars attached to the new values.
            self.errors.pop(label, None)

    def average(self, label: str) -> float:
        """Arithmetic mean of one series across categories."""
        return arithmetic_mean(self.series[label])

    def averages(self) -> Dict[str, float]:
        """Mean of every series."""
        return {label: self.average(label) for label in self.series}

    def geomean(self, label: str) -> float:
        """Geometric mean of one series across categories (SPEC-style).

        For ``fraction`` series (normalised overheads, which may be zero or
        negative) the geomean is taken over the ratios ``1 + overhead`` and
        converted back, matching how SPEC harnesses summarise normalised
        runtimes; other units take the geomean of the raw values.
        """
        values = self.series[label]
        if self.unit == "fraction":
            return geometric_mean([1.0 + value for value in values]) - 1.0
        return geometric_mean(values)

    def geomeans(self) -> Dict[str, float]:
        """Geometric mean of every series."""
        return {label: self.geomean(label) for label in self.series}

    # -- rendering ---------------------------------------------------------------
    def to_rows(self) -> List[List]:
        """Rows of (category, value per series), with a final average row."""
        rows: List[List] = []
        labels = list(self.series)
        for i, category in enumerate(self.categories):
            rows.append([category] + [self.series[label][i] for label in labels])
        rows.append(["average"] + [self.average(label) for label in labels])
        return rows

    def _cell(self, value: float, error: Optional[float]):
        if self.unit != "fraction" and error is None:
            return value  # render_table applies its own float formatting
        return format_value(value, self.unit, error=error)

    def render(self) -> str:
        """Render the figure data as an aligned table (``±`` when error bars
        are present).

        The ``average`` row carries no error bar: a mean of per-category CI
        half-widths is not a confidence interval of the average (the
        repetition-summary table computes the real one from the per-seed
        series averages).
        """
        labels = list(self.series)
        headers = ["case"] + labels
        rows: List[List] = []
        for i, category in enumerate(self.categories):
            rows.append([category] + [
                self._cell(self.series[label][i],
                           self.errors[label][i] if label in self.errors
                           else None)
                for label in labels])
        rows.append(["average"] + [self._cell(self.average(label), None)
                                   for label in labels])
        return render_table(headers, rows,
                            title=f"{self.name}: {self.description}")

    def to_csv(self) -> str:
        """Export the figure data as CSV (one extra ``<label> ci95`` column
        per series that carries error bars; blank on the ``average`` row —
        see :meth:`render`)."""
        labels = list(self.series)
        if not self.errors:
            headers = ["case"] + labels
            return render_csv(headers, self.to_rows())
        headers = ["case"]
        for label in labels:
            headers.append(label)
            if label in self.errors:
                headers.append(f"{label} ci95")
        rows: List[List] = []
        for i, category in enumerate(self.categories):
            row: List = [category]
            for label in labels:
                row.append(self.series[label][i])
                if label in self.errors:
                    row.append(self.errors[label][i])
            rows.append(row)
        average: List = ["average"]
        for label in labels:
            average.append(self.average(label))
            if label in self.errors:
                average.append("")
        rows.append(average)
        return render_csv(headers, rows)
