"""Figure data series: the bar-chart data behind the paper's figures.

Figures are reproduced as *data* (per-case series plus averages) rather than
as rendered images; :meth:`FigureSeries.render` produces an ASCII bar chart
good enough to eyeball the shape, and :meth:`FigureSeries.to_csv` exports the
series for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .metrics import arithmetic_mean
from .tables import render_csv, render_table

__all__ = ["FigureSeries"]


@dataclass
class FigureSeries:
    """Grouped bar-chart data (categories × series).

    Attributes:
        name: figure identifier (e.g. ``"Figure 7"``).
        description: what the figure shows.
        categories: x-axis category labels (e.g. ``case1`` ... ``case12``).
        series: mapping from series label (e.g. ``XOR-BTB-8M``) to one value
            per category.
        unit: unit of the values (``"fraction"`` for normalised overheads).
    """

    name: str
    description: str
    categories: List[str]
    series: Dict[str, List[float]] = field(default_factory=dict)
    unit: str = "fraction"

    def add_series(self, label: str, values: Sequence[float]) -> None:
        """Add one series; must have one value per category."""
        values = list(values)
        if len(values) != len(self.categories):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(self.categories)} categories")
        self.series[label] = values

    def average(self, label: str) -> float:
        """Arithmetic mean of one series across categories."""
        return arithmetic_mean(self.series[label])

    def averages(self) -> Dict[str, float]:
        """Mean of every series."""
        return {label: self.average(label) for label in self.series}

    # -- rendering ---------------------------------------------------------------
    def to_rows(self) -> List[List]:
        """Rows of (category, value per series), with a final average row."""
        rows: List[List] = []
        labels = list(self.series)
        for i, category in enumerate(self.categories):
            rows.append([category] + [self.series[label][i] for label in labels])
        rows.append(["average"] + [self.average(label) for label in labels])
        return rows

    def render(self) -> str:
        """Render the figure data as an aligned table."""
        labels = list(self.series)
        headers = ["case"] + labels
        rows = self.to_rows()
        if self.unit == "fraction":
            rows = [[row[0]] + [f"{100 * v:+.2f}%" for v in row[1:]] for row in rows]
        return render_table(headers, rows,
                            title=f"{self.name}: {self.description}")

    def to_csv(self) -> str:
        """Export the figure data as CSV."""
        headers = ["case"] + list(self.series)
        return render_csv(headers, self.to_rows())
