"""Paper-versus-measured reproduction reporting.

EXPERIMENTS.md records, for every table and figure in the paper, what the
paper reports and what this reproduction measures.  This module provides the
machinery behind that file: a registry of the paper's headline expectations
(:data:`PAPER_EXPECTATIONS`), a summariser that extracts the matching
headline numbers from an :class:`repro.experiments.base.ExperimentResult`,
and a Markdown report builder used by the command-line interface
(``python -m repro report``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .metrics import percent

__all__ = [
    "PaperExpectation",
    "PAPER_EXPECTATIONS",
    "summarise_overhead_figure",
    "ReproductionReport",
]


@dataclass(frozen=True)
class PaperExpectation:
    """One paper artefact and the headline claim the reproduction must match.

    Attributes:
        experiment: experiment key as used in
            :data:`repro.experiments.EXPERIMENTS` (``"figure7"``, ``"table5"``).
        artefact: how the paper labels it (``"Figure 7"``).
        claim: the paper's headline numbers, quoted or paraphrased.
        shape: the qualitative shape the reproduction must reproduce (who
            wins, what grows, where the maximum falls).
    """

    experiment: str
    artefact: str
    claim: str
    shape: str


#: The paper's headline expectations, one per evaluated table/figure.
PAPER_EXPECTATIONS: Dict[str, PaperExpectation] = {
    "figure1": PaperExpectation(
        "figure1", "Figure 1",
        "Flushing the predictor every 4M/8M/12M cycles costs < 1% on average "
        "on a single-threaded core.",
        "Average overhead below ~1%; overhead shrinks as the flush interval grows."),
    "figure2": PaperExpectation(
        "figure2", "Figure 2",
        "Complete Flush costs markedly more on SMT cores; SMT-4 worse than SMT-2.",
        "SMT-2 overhead well above the single-thread level; SMT-4 above SMT-2."),
    "figure3": PaperExpectation(
        "figure3", "Figure 3",
        "Precise Flush reduces but does not eliminate the SMT-2 flush cost.",
        "Precise Flush average below Complete Flush average, both elevated."),
    "table1": PaperExpectation(
        "table1", "Table 1",
        "Noisy-XOR-BTB/PHT defend or mitigate every attack class the flush "
        "mechanisms leave open on SMT cores.",
        "Empirical verdicts match the paper's Defend/Mitigate/No-Protection cells."),
    "table2": PaperExpectation(
        "table2", "Table 2",
        "FPGA prototype and gem5 SMT core configurations.",
        "Configuration constants replicated."),
    "table3": PaperExpectation(
        "table3", "Table 3",
        "12 single-threaded pairs and 12 SMT-2 pairs from SPEC CPU2006.",
        "Pairings replicated."),
    "poc_attacks": PaperExpectation(
        "poc_attacks", "Section 5.5 PoC",
        "Training accuracy 96.5% (BTB) / 97.2% (PHT) on the baseline drops "
        "below 1% with XOR-based isolation.",
        "Baseline success rate > 90%, protected success rate < a few %."),
    "figure7": PaperExpectation(
        "figure7", "Figure 7",
        "XOR-BTB average overhead < 0.2%; worst case (case6) ≈ 1%; index "
        "encoding adds nothing; case2 can speed up.",
        "Tiny averages; case6 among the worst cases; Noisy ≈ XOR."),
    "figure8": PaperExpectation(
        "figure8", "Figure 8",
        "XOR-PHT average overhead < 1.1%, decreasing with longer switch "
        "intervals; case1 highest.",
        "Average around a percent; case1 the worst case."),
    "figure9": PaperExpectation(
        "figure9", "Figure 9",
        "Combined XOR-BP average overhead < 1.3%; maximum ≈ 2.5% (case1); "
        "impact roughly additive, dominated by the PHT part.",
        "Average of a percent or so; case1 the worst case."),
    "table4": PaperExpectation(
        "table4", "Table 4",
        "Privilege switches per million cycles (1.6–7.0) far exceed the "
        "context-switch rate (0.08).",
        "Per-case rates in the units-per-million range, case2 highest, well "
        "above the context-switch rate."),
    "figure10": PaperExpectation(
        "figure10", "Figure 10",
        "On SMT-2, Noisy-XOR-BP loses 26–37% less performance than Complete "
        "Flush; more accurate predictors pay more (2.3% → 4.9%).",
        "Noisy-XOR-BP average below CF and PF for every predictor; overhead "
        "grows from Gshare to TAGE-SC-L; baseline MPKI ordering preserved."),
    "table5": PaperExpectation(
        "table5", "Table 5",
        "Noisy-XOR-BP area overhead ≤ 0.24% and timing overhead ≤ ~2% across "
        "BTB and TAGE PHT sizes.",
        "Sub-percent area overhead shrinking with table size; timing overhead "
        "of a couple of percent at most."),
}


def summarise_overhead_figure(result) -> str:
    """One-line summary of an overhead figure: per-series averages."""
    if result.figure is None:
        return "(no figure data)"
    parts = [f"{label} avg {percent(value)}"
             for label, value in result.figure.averages().items()]
    return "; ".join(parts)


@dataclass
class ReportEntry:
    """One experiment's entry in the reproduction report."""

    expectation: PaperExpectation
    measured: str
    matches: Optional[bool] = None
    notes: str = ""


@dataclass
class ReproductionReport:
    """Collects per-experiment measured summaries and renders Markdown.

    Typical use::

        report = ReproductionReport()
        result = EXPERIMENTS["figure7"]()
        report.add("figure7", summarise_overhead_figure(result))
        print(report.to_markdown())
    """

    title: str = "Reproduction results"
    entries: List[ReportEntry] = field(default_factory=list)

    def add(self, experiment: str, measured: str, *,
            matches: Optional[bool] = None, notes: str = "") -> ReportEntry:
        """Add one experiment's measured summary.

        Args:
            experiment: experiment key (must exist in
                :data:`PAPER_EXPECTATIONS`).
            measured: one-line summary of what this reproduction measured.
            matches: whether the measured shape matches the paper (optional).
            notes: extra caveats for this entry.

        Raises:
            KeyError: for an unknown experiment key.
        """
        expectation = PAPER_EXPECTATIONS[experiment]
        entry = ReportEntry(expectation=expectation, measured=measured,
                            matches=matches, notes=notes)
        self.entries.append(entry)
        return entry

    def add_result(self, experiment: str, result, *,
                   summariser: Optional[Callable] = None,
                   matches: Optional[bool] = None, notes: str = "") -> ReportEntry:
        """Add an experiment result, summarising it automatically.

        Figure-style results are summarised by series averages; table-style
        results by their row count, unless a custom ``summariser`` is given.
        """
        if summariser is not None:
            measured = summariser(result)
        elif result.figure is not None:
            measured = summarise_overhead_figure(result)
        else:
            measured = f"{len(result.rows)} rows reproduced"
        return self.add(experiment, measured, matches=matches, notes=notes)

    def coverage(self, all_experiments: Optional[Sequence[str]] = None) -> float:
        """Fraction of the paper's artefacts covered by this report."""
        expected = set(all_experiments if all_experiments is not None
                       else PAPER_EXPECTATIONS)
        if not expected:
            return 1.0
        covered = {entry.expectation.experiment for entry in self.entries}
        return len(covered & expected) / len(expected)

    def to_markdown(self) -> str:
        """Render the report as a Markdown document."""
        lines = [f"# {self.title}", ""]
        lines.append("| Artefact | Paper reports | Measured here | Shape holds |")
        lines.append("|---|---|---|---|")
        for entry in self.entries:
            match = {None: "—", True: "yes", False: "**no**"}[entry.matches]
            lines.append(
                f"| {entry.expectation.artefact} | {entry.expectation.claim} "
                f"| {entry.measured} | {match} |")
        notes = [entry for entry in self.entries if entry.notes]
        if notes:
            lines.append("")
            lines.append("## Notes")
            lines.append("")
            for entry in notes:
                lines.append(f"* **{entry.expectation.artefact}**: {entry.notes}")
        lines.append("")
        return "\n".join(lines)

    def save(self, path: str) -> str:
        """Write the Markdown report to a file; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_markdown())
        return path
