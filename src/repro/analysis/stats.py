"""Repetition statistics: folding repeated measurements into mean ± CI.

The paper's figures are single-trajectory point estimates.  A repetition run
simulates every case N times under shifted seeds (``seed_offset`` 0..N-1)
and this module folds the N per-seed results into statistically defensible
series: per-point mean, sample standard deviation and two-sided 95%
confidence half-width (Student t, exact critical values up to 30 degrees of
freedom).

The fold is a pure, order-sensitive function of the repetition-indexed
inputs: repetition r is always produced by ``seed_offset + r``, so two runs
that executed the same repetitions — serially, sharded, or replayed from a
result store in any artifact order — fold to bit-identical output.  Folding
a single result returns it unchanged, which is what keeps ``repetitions=1``
pipelines byte-for-byte compatible with the committed golden traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .figures import FigureSeries, format_value

__all__ = [
    "T_CRITICAL_95",
    "T_CRITICAL_95_ANCHORS",
    "T_CRITICAL_95_MAX_DF",
    "DegreesOfFreedomRangeError",
    "t_critical_95",
    "PointStats",
    "summarize",
    "fold_figures",
    "fold_experiment_results",
]

#: Two-sided 95% Student-t critical values for 1..30 degrees of freedom.
T_CRITICAL_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)

#: Tabulated anchors used for interpolation above 30 degrees of freedom.
T_CRITICAL_95_ANCHORS = ((30, 2.042), (40, 2.021), (60, 2.000), (120, 1.980))

#: Largest degrees of freedom :func:`t_critical_95` can evaluate.
T_CRITICAL_95_MAX_DF = T_CRITICAL_95_ANCHORS[-1][0]


class DegreesOfFreedomRangeError(ValueError):
    """Raised when ``df`` falls outside the tabulated t-critical range."""


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom.

    Exact (tabulated) up to 30 degrees of freedom — repetition counts in
    this repo are single digits, so the small-sample regime is the one that
    matters.  Between 30 and 120 the value is interpolated linearly in
    ``1/df`` between the standard textbook anchors (df 30, 40, 60, 120),
    which keeps the approximation error below 0.001 across that range.

    Beyond 120 degrees of freedom there is no tabulated value and this
    function refuses to guess: it raises
    :class:`DegreesOfFreedomRangeError` rather than silently clamping to
    the normal-approximation 1.96 (the historical behaviour, which hid
    out-of-range repetition counts).
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df <= len(T_CRITICAL_95):
        return T_CRITICAL_95[df - 1]
    for (lo_df, lo_t), (hi_df, hi_t) in zip(T_CRITICAL_95_ANCHORS,
                                            T_CRITICAL_95_ANCHORS[1:]):
        if df <= hi_df:
            # Linear interpolation in 1/df between the bracketing anchors.
            fraction = (1.0 / df - 1.0 / lo_df) / (1.0 / hi_df - 1.0 / lo_df)
            return lo_t + fraction * (hi_t - lo_t)
    raise DegreesOfFreedomRangeError(
        f"t_critical_95 is tabulated up to df={T_CRITICAL_95_MAX_DF}; "
        f"got df={df}.  Use a normal approximation explicitly if that many "
        "repetitions is intentional.")


@dataclass(frozen=True)
class PointStats:
    """Summary of one measured quantity over N repetitions.

    Attributes:
        mean: arithmetic mean over repetitions.
        std: sample standard deviation (ddof=1); ``0.0`` for a single sample.
        ci95: half-width of the two-sided 95% confidence interval of the
            mean (Student t); ``0.0`` for a single sample.
        n: number of repetitions summarised.
    """

    mean: float
    std: float
    ci95: float
    n: int


def summarize(values: Sequence[float]) -> PointStats:
    """Fold one quantity's repetition values into :class:`PointStats`.

    The accumulation order is the caller's sequence order (repetition index),
    so the float result is reproducible for a given repetition family.
    """
    values = [float(value) for value in values]
    n = len(values)
    if n == 0:
        raise ValueError("cannot summarise zero repetitions")
    mean = math.fsum(values) / n
    if n == 1:
        return PointStats(mean=values[0], std=0.0, ci95=0.0, n=1)
    variance = math.fsum((value - mean) ** 2 for value in values) / (n - 1)
    std = math.sqrt(variance)
    ci95 = t_critical_95(n - 1) * std / math.sqrt(n)
    return PointStats(mean=mean, std=std, ci95=ci95, n=n)


def _check_foldable(figures: Sequence[FigureSeries]) -> None:
    base = figures[0]
    for index, figure in enumerate(figures[1:], start=1):
        if figure.categories != base.categories:
            raise ValueError(
                f"repetition {index} of {base.name!r} has categories "
                f"{figure.categories} but repetition 0 has {base.categories}")
        if list(figure.series) != list(base.series):
            raise ValueError(
                f"repetition {index} of {base.name!r} has series "
                f"{list(figure.series)} but repetition 0 has "
                f"{list(base.series)}")


def fold_figures(figures: Sequence[FigureSeries]) -> FigureSeries:
    """Fold N per-repetition figures into one mean figure with error bars.

    Every input must share categories and series labels (they are the same
    driver's output under shifted seeds).  Each point of the folded figure is
    the repetition mean; its error bar is the 95% CI half-width.  A single
    input is returned unchanged (no error bars), preserving bit-identity for
    ``repetitions=1`` runs.
    """
    figures = list(figures)
    if not figures:
        raise ValueError("cannot fold zero figures")
    if len(figures) == 1:
        return figures[0]
    _check_foldable(figures)
    base = figures[0]
    folded = FigureSeries(name=base.name, description=base.description,
                          categories=list(base.categories), unit=base.unit)
    for label in base.series:
        means: List[float] = []
        errors: List[float] = []
        for position in range(len(base.categories)):
            stats = summarize([figure.series[label][position]
                               for figure in figures])
            means.append(stats.mean)
            errors.append(stats.ci95)
        folded.add_series(label, means, errors=errors)
    return folded


def fold_experiment_results(results: Sequence) -> "ExperimentResult":
    """Fold N per-repetition experiment results into one aggregated result.

    For figure experiments the folded figure carries mean series with 95%-CI
    error bars, and the tabular rows become a per-series summary (mean, std,
    CI of the series average across repetitions); the per-repetition figures
    themselves are preserved on ``result.replicates`` (repetition order) so
    the significance layer can run paired per-seed tests.  Figure-less
    experiments keep repetition 0's table, annotated.  Folding one result
    returns it unchanged — the ``repetitions=1`` bit-identity guarantee.
    """
    from ..experiments.base import ExperimentResult

    results = list(results)
    if not results:
        raise ValueError("cannot fold zero experiment results")
    if len(results) == 1:
        return results[0]
    base = results[0]
    n = len(results)
    note = (f"Repetition statistics over {n} seeds (seed offsets 0..{n - 1}): "
            "values are repetition means, ± is the 95% CI half-width "
            "(Student t).")

    figures = [result.figure for result in results]
    figure: Optional[FigureSeries]
    replicates: List[FigureSeries] = []
    if all(fig is not None for fig in figures):
        figure = fold_figures(figures)
        replicates = list(figures)
        headers = ["series", "mean", "std", "95% CI"]
        rows = []
        for label in figure.series:
            stats = summarize([fig.average(label) for fig in figures])
            rows.append([
                label,
                format_value(stats.mean, figure.unit),
                format_value(stats.std, figure.unit, signed=False),
                f"±{format_value(stats.ci95, figure.unit, signed=False)}",
            ])
    else:
        figure = base.figure
        headers = list(base.headers)
        rows = [list(row) for row in base.rows]
        note += " Tabular values are from seed offset 0."

    notes = f"{base.notes} {note}".strip() if base.notes else note
    return ExperimentResult(name=base.name, description=base.description,
                            headers=headers, rows=rows, figure=figure,
                            paper_claim=base.paper_claim, notes=notes,
                            replicates=replicates)
