"""Named configurations of predictors × isolation mechanisms.

The paper's experiments are described by configuration names such as
``XOR-BP-8M``, ``Gshare-CF`` or ``TAGE_SC_L-Noisy-XOR-BP``.  This module
provides the factory that turns such names into fully wired
:class:`repro.core.secure.BranchPredictionUnit` instances:

* a *protection preset* chooses which structures are protected (BTB only,
  PHT only, or both) and with which mechanism (flush-based or XOR-based);
* a *predictor name* chooses the direction predictor (Gshare, Tournament,
  LTAGE, TAGE-SC-L, ...);
* geometry keyword arguments size the BTB and the predictor.

Both protected structures share a single :class:`repro.core.keys.KeyManager`,
mirroring the paper's single per-thread hardware random number whose portions
serve as content and index keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..predictors import make_direction_predictor
from ..predictors.btb import BranchTargetBuffer
from ..predictors.ras import ReturnAddressStack
from .encoding import make_encoder
from .isolation import (
    BaselineIsolation,
    CompleteFlushIsolation,
    IsolationMechanism,
    NoisyXorIsolation,
    PreciseFlushIsolation,
    XorContentIsolation,
)
from .keys import KeyManager
from .secure import BranchPredictionUnit

__all__ = [
    "ProtectionConfig",
    "PROTECTION_PRESETS",
    "MECHANISMS",
    "make_isolation",
    "make_bpu",
    "preset_names",
]

#: Isolation mechanism constructors by short name.
MECHANISMS = {
    "baseline": BaselineIsolation,
    "complete_flush": CompleteFlushIsolation,
    "precise_flush": PreciseFlushIsolation,
    "xor": XorContentIsolation,
    "noisy_xor": NoisyXorIsolation,
}


def make_isolation(name: str, key_manager: Optional[KeyManager] = None,
                   **kwargs) -> IsolationMechanism:
    """Construct an isolation mechanism by short name.

    Args:
        name: one of ``baseline``, ``complete_flush``, ``precise_flush``,
            ``xor``, ``noisy_xor``.
        key_manager: shared key manager; created when omitted.
        **kwargs: forwarded to the mechanism constructor.

    Raises:
        KeyError: when ``name`` is not a known mechanism.
    """
    key = name.lower().replace("-", "_")
    if key not in MECHANISMS:
        raise KeyError(f"unknown isolation mechanism: {name!r}")
    return MECHANISMS[key](key_manager, **kwargs)


@dataclass
class ProtectionConfig:
    """Which structures are protected and how.

    Attributes:
        name: preset name.
        btb_mechanism: mechanism applied to the BTB.
        pht_mechanism: mechanism applied to the direction predictor tables.
        pht_word_bits: physical word width of the packed PHT.  ``32`` models
            Enhanced-XOR-PHT (word-basis encoding), ``2`` models the simple
            per-counter XOR-PHT whose obfuscation the paper calls
            insufficient.
        encoder: content encoder name (``xor``, ``shift_xor``, ``sbox``).
        row_diversified: mix the physical row into the content key so nearby
            entries use different key bits (Section 5.5's countermeasure to
            the reference-branch corner case).  The naive 2-bit XOR-PHT the
            paper calls insufficient disables this.
        rotate_on_privilege_switch: regenerate keys on privilege switches.
        flush_on_privilege_switch: flush-based mechanisms also flush on
            privilege switches.
    """

    name: str = "baseline"
    btb_mechanism: str = "baseline"
    pht_mechanism: str = "baseline"
    pht_word_bits: int = 32
    encoder: str = "xor"
    row_diversified: bool = True
    rotate_on_privilege_switch: bool = True
    flush_on_privilege_switch: bool = False


#: Protection presets corresponding to the configurations named in the paper.
PROTECTION_PRESETS: Dict[str, ProtectionConfig] = {
    "baseline": ProtectionConfig("baseline"),
    "complete_flush": ProtectionConfig("complete_flush", "complete_flush",
                                       "complete_flush"),
    "precise_flush": ProtectionConfig("precise_flush", "precise_flush",
                                      "precise_flush"),
    "xor_btb": ProtectionConfig("xor_btb", btb_mechanism="xor"),
    "noisy_xor_btb": ProtectionConfig("noisy_xor_btb", btb_mechanism="noisy_xor"),
    "xor_pht": ProtectionConfig("xor_pht", pht_mechanism="xor"),
    "xor_pht_simple": ProtectionConfig("xor_pht_simple", pht_mechanism="xor",
                                       pht_word_bits=2, row_diversified=False),
    "noisy_xor_pht": ProtectionConfig("noisy_xor_pht", pht_mechanism="noisy_xor"),
    "xor_bp": ProtectionConfig("xor_bp", btb_mechanism="xor", pht_mechanism="xor"),
    "noisy_xor_bp": ProtectionConfig("noisy_xor_bp", btb_mechanism="noisy_xor",
                                     pht_mechanism="noisy_xor"),
}

#: Aliases used in the paper's figure labels.
_PRESET_ALIASES = {
    "cf": "complete_flush",
    "pf": "precise_flush",
    "xor-bp": "xor_bp",
    "noisy-xor-bp": "noisy_xor_bp",
    "xor-btb": "xor_btb",
    "noisy-xor-btb": "noisy_xor_btb",
    "xor-pht": "xor_pht",
    "noisy-xor-pht": "noisy_xor_pht",
}


def preset_names() -> list:
    """Names of all protection presets."""
    return sorted(PROTECTION_PRESETS)


def resolve_preset(preset: str) -> ProtectionConfig:
    """Resolve a preset name or alias to its :class:`ProtectionConfig`."""
    key = preset.lower()
    key = _PRESET_ALIASES.get(key, key).replace("-", "_")
    if key not in PROTECTION_PRESETS:
        raise KeyError(f"unknown protection preset: {preset!r}")
    return PROTECTION_PRESETS[key]


def _build_mechanism(name: str, config: ProtectionConfig,
                     key_manager: KeyManager) -> IsolationMechanism:
    if name in ("xor", "noisy_xor"):
        return make_isolation(name, key_manager,
                              encoder=make_encoder(config.encoder),
                              row_diversified=config.row_diversified)
    if name in ("complete_flush", "precise_flush"):
        return make_isolation(
            name, key_manager,
            flush_on_privilege_switch=config.flush_on_privilege_switch)
    return make_isolation(name, key_manager)


def make_bpu(predictor: str = "gshare", preset: str = "baseline", *,
             seed: int = 0xC0FFEE,
             btb_sets: int = 256, btb_ways: int = 2,
             btb_tag_bits: int = 16, btb_target_bits: int = 32,
             ras_depth: int = 16,
             btb_miss_forces_not_taken: bool = True,
             predictor_kwargs: Optional[dict] = None,
             config_overrides: Optional[dict] = None) -> BranchPredictionUnit:
    """Build a fully wired branch prediction unit.

    Args:
        predictor: direction predictor name (``gshare``, ``tournament``,
            ``ltage``, ``tage_sc_l``, ...).
        preset: protection preset name (see :data:`PROTECTION_PRESETS`).
        seed: seed of the modelled hardware key generator.
        btb_sets: BTB sets (the FPGA prototype uses 256 sets × 2 ways).
        btb_ways: BTB associativity.
        btb_tag_bits: BTB partial-tag width.
        btb_target_bits: BTB stored-target width.
        ras_depth: return-address-stack depth per hardware thread.
        btb_miss_forces_not_taken: front-end fall-through policy on BTB miss.
        predictor_kwargs: extra keyword arguments for the predictor
            constructor (table sizes, history lengths, ...).
        config_overrides: field overrides applied to the resolved
            :class:`ProtectionConfig` (used by ablation studies, e.g.
            ``{"encoder": "sbox"}`` or
            ``{"rotate_on_privilege_switch": False}``).

    Returns:
        A :class:`repro.core.secure.BranchPredictionUnit`.
    """
    config = resolve_preset(preset)
    if config_overrides:
        from dataclasses import replace as _replace
        config = _replace(config, **config_overrides)
    key_manager = KeyManager(
        seed=seed, rotate_on_privilege_switch=config.rotate_on_privilege_switch)
    btb_isolation = _build_mechanism(config.btb_mechanism, config, key_manager)
    pht_isolation = _build_mechanism(config.pht_mechanism, config, key_manager)

    kwargs = dict(predictor_kwargs or {})
    kwargs.setdefault("word_bits", config.pht_word_bits)
    if predictor in ("bimodal",):
        kwargs.pop("word_bits", None)
        kwargs["word_bits"] = config.pht_word_bits
    direction = make_direction_predictor(predictor, isolation=pht_isolation, **kwargs)
    btb = BranchTargetBuffer(btb_sets, btb_ways, tag_bits=btb_tag_bits,
                             target_bits=btb_target_bits, isolation=btb_isolation)
    ras = ReturnAddressStack(ras_depth)
    bpu = BranchPredictionUnit(direction, btb, ras, isolation=btb_isolation,
                               btb_miss_forces_not_taken=btb_miss_forces_not_taken)
    # The BPU forwards switch notifications to a single isolation object; use
    # a small dispatcher when the BTB and PHT mechanisms are distinct objects.
    bpu.isolation = _IsolationGroup([btb_isolation, pht_isolation], key_manager,
                                    config)
    return bpu


@dataclass
class _IsolationGroup:
    """Fan-out of switch notifications to several isolation mechanisms.

    The group presents the same notification interface as a single mechanism
    so that :class:`repro.core.secure.BranchPredictionUnit` and the CPU model
    stay agnostic of how many mechanisms are active.
    """

    mechanisms: list
    key_manager: KeyManager
    config: ProtectionConfig = field(default_factory=ProtectionConfig)

    @property
    def name(self) -> str:
        """Preset name of the grouped configuration."""
        return self.config.name

    def on_context_switch(self, thread_id: int) -> None:
        seen = set()
        for mechanism in self.mechanisms:
            if id(mechanism) in seen:
                continue
            seen.add(id(mechanism))
            mechanism.on_context_switch(thread_id)

    def on_privilege_switch(self, thread_id: int, privilege: int) -> None:
        seen = set()
        for mechanism in self.mechanisms:
            if id(mechanism) in seen:
                continue
            seen.add(id(mechanism))
            mechanism.on_privilege_switch(thread_id, privilege)
