"""Reversible content encoders.

The paper uses XOR as the canonical encoding but notes (Section 5.4) that
"the only requirement for the encoding operation is that they are easily
reversible ... Adding shifting and/or scrambling in the process, or using
small lookup tables are all possible options."  This module provides three
such encoders with a common interface so that the isolation mechanisms and
the ablation benchmarks can swap them freely:

* :class:`XorEncoder` — plain XOR with the (width-stretched) key;
* :class:`ShiftXorEncoder` — key-dependent rotation followed by XOR;
* :class:`SboxEncoder` — XOR followed by a fixed 4-bit bijective S-box applied
  to every nibble (a tiny lookup-table scramble).

All encoders are bijective for every key and width, which the property-based
tests verify exhaustively.
"""

from __future__ import annotations

import abc

__all__ = ["ContentEncoder", "XorEncoder", "ShiftXorEncoder", "SboxEncoder",
           "stretch_key", "ENCODERS", "make_encoder"]


def stretch_key(key: int, width_bits: int) -> int:
    """Repeat key bits to cover an arbitrary field width.

    The hardware draws one wide random number per thread; fields wider than
    the key (e.g. a packed 32-bit PHT word encoded with a 16-bit key) reuse
    key bits cyclically, and narrower fields truncate.
    """
    if width_bits <= 0:
        return 0
    if key == 0:
        return 0
    key_bits = max(key.bit_length(), 1)
    out = key
    bits = key_bits
    while bits < width_bits:
        out = (out << key_bits) | key
        bits += key_bits
    return out & ((1 << width_bits) - 1)


class ContentEncoder(abc.ABC):
    """A reversible, keyed transformation of a fixed-width field."""

    #: Machine-readable encoder name.
    name: str = "encoder"

    @abc.abstractmethod
    def encode(self, value: int, width_bits: int, key: int) -> int:
        """Encode ``value`` (must be invertible by :meth:`decode`)."""

    @abc.abstractmethod
    def decode(self, value: int, width_bits: int, key: int) -> int:
        """Invert :meth:`encode` under the same key and width."""

    # -- hardware-cost hooks ---------------------------------------------------
    def xor_gates(self, width_bits: int) -> int:
        """Number of 2-input XOR gates on the data path (cost model hook)."""
        return width_bits

    def extra_levels(self) -> int:
        """Additional logic levels beyond a single XOR stage."""
        return 0


class XorEncoder(ContentEncoder):
    """Plain XOR with the key (the paper's canonical encoding)."""

    name = "xor"

    def encode(self, value: int, width_bits: int, key: int) -> int:
        mask = (1 << width_bits) - 1
        return (value ^ stretch_key(key, width_bits)) & mask

    def decode(self, value: int, width_bits: int, key: int) -> int:
        # XOR is an involution.
        return self.encode(value, width_bits, key)


class ShiftXorEncoder(ContentEncoder):
    """Key-dependent rotation followed by XOR.

    The rotation amount is taken from the top bits of the key, so the mapping
    between bit positions and key bits is no longer fixed — this addresses the
    Scenario-4 corner case where a fixed narrow XOR lets an attacker find a
    *reference branch* encoded with the same key bits.
    """

    name = "shift_xor"

    def _rotation(self, width_bits: int, key: int) -> int:
        if width_bits <= 1:
            return 0
        return (key >> 7) % width_bits

    def encode(self, value: int, width_bits: int, key: int) -> int:
        mask = (1 << width_bits) - 1
        rot = self._rotation(width_bits, key)
        value &= mask
        rotated = ((value << rot) | (value >> (width_bits - rot))) & mask if rot else value
        return (rotated ^ stretch_key(key, width_bits)) & mask

    def decode(self, value: int, width_bits: int, key: int) -> int:
        mask = (1 << width_bits) - 1
        rot = self._rotation(width_bits, key)
        value = (value ^ stretch_key(key, width_bits)) & mask
        if not rot:
            return value
        return ((value >> rot) | (value << (width_bits - rot))) & mask

    def extra_levels(self) -> int:
        return 1  # the barrel-rotate stage


# A fixed bijective 4-bit S-box (the PRESENT cipher S-box) and its inverse.
_SBOX = [0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
         0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2]
_SBOX_INV = [0] * 16
for _i, _v in enumerate(_SBOX):
    _SBOX_INV[_v] = _i


class SboxEncoder(ContentEncoder):
    """XOR followed by a nibble-wise bijective S-box.

    Models the paper's "small lookup tables" option: after the keyed XOR,
    every 4-bit nibble passes through a fixed bijective substitution, breaking
    the linearity of plain XOR at the cost of one LUT level.
    """

    name = "sbox"

    def encode(self, value: int, width_bits: int, key: int) -> int:
        mask = (1 << width_bits) - 1
        mixed = (value ^ stretch_key(key, width_bits)) & mask
        return self._substitute(mixed, width_bits, _SBOX)

    def decode(self, value: int, width_bits: int, key: int) -> int:
        mask = (1 << width_bits) - 1
        unsubstituted = self._substitute(value & mask, width_bits, _SBOX_INV)
        return (unsubstituted ^ stretch_key(key, width_bits)) & mask

    @staticmethod
    def _substitute(value: int, width_bits: int, sbox: list) -> int:
        out = 0
        shift = 0
        while shift < width_bits:
            nibble_width = min(4, width_bits - shift)
            nibble = (value >> shift) & ((1 << nibble_width) - 1)
            if nibble_width == 4:
                nibble = sbox[nibble]
            out |= nibble << shift
            shift += 4
        return out & ((1 << width_bits) - 1)

    def extra_levels(self) -> int:
        return 1  # the S-box LUT stage


#: Registry of available encoders (used by the ablation benchmarks).
ENCODERS = {
    "xor": XorEncoder,
    "shift_xor": ShiftXorEncoder,
    "sbox": SboxEncoder,
}


def make_encoder(name: str) -> ContentEncoder:
    """Construct an encoder by name.

    Raises:
        KeyError: when ``name`` is not a known encoder.
    """
    key = name.lower().replace("-", "_")
    if key not in ENCODERS:
        raise KeyError(f"unknown encoder: {name!r}")
    return ENCODERS[key]()
