"""Isolation mechanisms for branch-predictor tables.

This module implements the paper's proposal and the baselines it is compared
against, all as :class:`repro.predictors.table.TableIsolation` policies that
attach to predictor storage:

* :class:`BaselineIsolation` — no isolation (the *Baseline* configuration);
* :class:`CompleteFlushIsolation` — flush every registered structure on a
  context switch (*Complete Flush*, Section 4.1);
* :class:`PreciseFlushIsolation` — tag entries with the owning hardware
  thread and flush only that thread's entries on its context switch
  (*Precise Flush*);
* :class:`XorContentIsolation` — **XOR-BP**: encode table contents with a
  thread-private content key (Section 5.1, 5.2);
* :class:`NoisyXorIsolation` — **Noisy-XOR-BP**: XOR-BP plus index
  randomisation with a second thread-private key (Section 5.3).

The *Enhanced-XOR-PHT* variant of Section 5.2 is not a separate policy: it is
obtained by applying :class:`XorContentIsolation` to a
:class:`repro.predictors.table.PackedCounterTable` whose physical word packs
many 2-bit counters (``word_bits=32``), whereas the *simple* XOR-PHT applies
the same policy at 2-bit granularity (``word_bits=2``).  The registry in
:mod:`repro.core.registry` exposes both spellings.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors.table import TableIsolation
from ..types import Privilege
from .encoding import ContentEncoder, XorEncoder
from .keys import KeyManager

__all__ = [
    "IsolationMechanism",
    "BaselineIsolation",
    "CompleteFlushIsolation",
    "PreciseFlushIsolation",
    "XorContentIsolation",
    "NoisyXorIsolation",
]


def _table_salt(table: object) -> int:
    """Deterministic per-table salt derived from the table's name."""
    name = getattr(table, "name", None) or table.__class__.__name__
    salt = 0
    for ch in str(name):
        salt = (salt * 131 + ord(ch)) & 0xFFFFFFFF
    return salt


class IsolationMechanism(TableIsolation):
    """Base class for all isolation policies.

    Attributes:
        name: machine-readable mechanism name (used by the registry and by
            experiment labels such as ``Gshare-CF`` or ``XOR-BP-8M``).
        protects_content: True when table contents are encoded.
        protects_index: True when table indices are randomised.
        flush_based: True when the mechanism flushes state on switches.
    """

    name = "isolation"
    protects_content = False
    protects_index = False
    flush_based = False

    def __init__(self, key_manager: Optional[KeyManager] = None) -> None:
        self.key_manager = key_manager if key_manager is not None else KeyManager()
        self._flushables: List[object] = []

    # -- registration ----------------------------------------------------------
    def register_flushable(self, flushable: object) -> None:
        if flushable not in self._flushables:
            self._flushables.append(flushable)

    @property
    def flushables(self) -> List[object]:
        """Structures registered for flush notifications."""
        return list(self._flushables)

    # -- flush helpers ---------------------------------------------------------
    def _flush_all(self) -> None:
        for flushable in self._flushables:
            flushable.flush()

    def _flush_thread(self, thread_id: int) -> None:
        for flushable in self._flushables:
            flush_thread = getattr(flushable, "flush_thread", None)
            if flush_thread is not None:
                flush_thread(thread_id)
            else:
                flushable.flush()

    # -- switch notifications (default: keep keys fresh) -----------------------
    def on_context_switch(self, thread_id: int) -> None:
        self.key_manager.on_context_switch(thread_id)

    def on_privilege_switch(self, thread_id: int, privilege: int) -> None:
        self.key_manager.on_privilege_switch(thread_id, Privilege(privilege))


class BaselineIsolation(IsolationMechanism):
    """No isolation: the unmodified shared predictor (the paper's Baseline)."""

    name = "baseline"

    def on_context_switch(self, thread_id: int) -> None:
        # Baseline hardware does nothing on a switch; we still count it so
        # that workload statistics (Table 4) are mechanism-independent.
        self.key_manager.context_switches += 1

    def on_privilege_switch(self, thread_id: int, privilege: int) -> None:
        state = self.key_manager.state(thread_id)
        if state.privilege != Privilege(privilege):
            state.privilege = Privilege(privilege)
            self.key_manager.privilege_switches += 1


class CompleteFlushIsolation(IsolationMechanism):
    """Flush every predictor structure when any hardware thread switches context.

    Args:
        key_manager: shared key/state bookkeeping (keys are unused here).
        flush_on_privilege_switch: also flush on privilege transitions.  The
            paper's Complete Flush evaluation (Figures 1–3, 10) flushes on
            context switches only, which is the default.
    """

    name = "complete_flush"
    flush_based = True

    def __init__(self, key_manager: Optional[KeyManager] = None, *,
                 flush_on_privilege_switch: bool = False) -> None:
        super().__init__(key_manager)
        self._flush_on_privilege = flush_on_privilege_switch
        self.flush_count = 0

    def on_context_switch(self, thread_id: int) -> None:
        self.key_manager.context_switches += 1
        self.flush_count += 1
        self._flush_all()

    def on_privilege_switch(self, thread_id: int, privilege: int) -> None:
        state = self.key_manager.state(thread_id)
        if state.privilege != Privilege(privilege):
            state.privilege = Privilege(privilege)
            self.key_manager.privilege_switches += 1
            if self._flush_on_privilege:
                self.flush_count += 1
                self._flush_all()


class PreciseFlushIsolation(IsolationMechanism):
    """Flush only the switching thread's entries (thread-ID tagged flush).

    Requires every table to track the owner of each entry (``tracks_owner``),
    which is exactly the extra storage and complexity cost the paper calls out
    in Observation 3.
    """

    name = "precise_flush"
    flush_based = True
    tracks_owner = True

    def __init__(self, key_manager: Optional[KeyManager] = None, *,
                 flush_on_privilege_switch: bool = False) -> None:
        super().__init__(key_manager)
        self._flush_on_privilege = flush_on_privilege_switch
        self.flush_count = 0

    def on_context_switch(self, thread_id: int) -> None:
        self.key_manager.context_switches += 1
        self.flush_count += 1
        self._flush_thread(thread_id)

    def on_privilege_switch(self, thread_id: int, privilege: int) -> None:
        state = self.key_manager.state(thread_id)
        if state.privilege != Privilege(privilege):
            state.privilege = Privilege(privilege)
            self.key_manager.privilege_switches += 1
            if self._flush_on_privilege:
                self.flush_count += 1
                self._flush_thread(thread_id)


class XorContentIsolation(IsolationMechanism):
    """XOR-BP: content encoding with a thread-private key.

    Every value is encoded before being written to a table and decoded after
    being read, using the content key of the accessing hardware thread.  The
    key is regenerated on context and privilege switches (via the shared
    :class:`repro.core.keys.KeyManager`), so residual state written under an
    old key — or state written by a different hardware thread — decodes to
    noise.

    When the encoder is plain XOR, storage structures fuse the per-(thread,
    table) masks directly into their accesses (the monomorphic fused-XOR fast
    path of :mod:`repro.predictors.table`): they register a mask cache with
    :meth:`register_fast_mask_cache`, which this mechanism invalidates on
    every key regeneration so mask re-randomisation happens at switch time
    rather than in the per-branch loop.

    Args:
        key_manager: per-thread key registers.
        encoder: reversible encoder; defaults to plain XOR.
        per_table_keys: derive a distinct key per table from the master random
            number (Figure 6 caption) instead of using one shared content key.
        row_diversified: additionally mix the physical row index into the key
            so nearby entries use different key bits (the Section 5.5
            countermeasure to the reference-branch corner case).
    """

    name = "xor_bp"
    protects_content = True

    def __init__(self, key_manager: Optional[KeyManager] = None, *,
                 encoder: Optional[ContentEncoder] = None,
                 per_table_keys: bool = True,
                 row_diversified: bool = True) -> None:
        super().__init__(key_manager)
        self.encoder = encoder if encoder is not None else XorEncoder()
        self._per_table_keys = per_table_keys
        self._row_diversified = row_diversified
        # Plain XOR with an already-width-matched key needs no encoder call;
        # this fast path matters because encode/decode runs on every table
        # access of every predictor.
        self._plain_xor = type(self.encoder) is XorEncoder
        #: Storage may fuse precomputed XOR masks inline only when the
        #: encoder really is plain XOR (non-XOR ablation encoders such as
        #: sbox / shift_xor keep the generic dispatch path).
        self.supports_fused_xor = self._plain_xor
        # Derived keys are deterministic for a (thread, table, width) triple
        # until the thread's key is regenerated, so they are cached and the
        # cache is invalidated per thread on every switch notification.
        self._key_cache: dict = {}
        # Fused-XOR mask caches of registered storage structures, keyed by
        # owner id: owner -> (cache dict, per-thread rebuild callable).
        self._mask_caches: dict = {}

    # -- fused-XOR mask protocol ----------------------------------------------
    def register_fast_mask_cache(self, owner: object, cache: dict,
                                 rebuild) -> None:
        """Register a storage structure's per-thread fused-mask cache.

        ``cache`` maps hardware-thread ids to precomputed mask bundles and
        ``rebuild(thread_id)`` recomputes (and re-installs) one thread's
        bundle.  Registered caches are invalidated per thread whenever that
        thread's key material is regenerated.
        """
        self._mask_caches[id(owner)] = (cache, rebuild)

    def refresh_fast_masks(self, thread_id: int) -> None:
        """Eagerly rebuild every registered mask cache for one thread.

        Invalidated caches normally rebuild lazily on their first access
        after a switch (one rebuild per switch, nothing in the per-branch
        loop); this helper exists for drivers that want the rebuild cost at
        a controlled point instead.
        """
        for _, rebuild in self._mask_caches.values():
            rebuild(thread_id)

    def fused_content_key(self, thread_id: int, width_bits: int,
                          table: object) -> int:
        """Content-key mask fused into storage reads/writes of ``table``."""
        return self._base_key(thread_id, width_bits, table)

    def fused_index_key(self, thread_id: int, index_bits: int,
                        table: object) -> int:
        """Index-key mask (zero: plain XOR-BP does not randomise indices)."""
        return 0

    def _invalidate_keys(self, thread_id: int) -> None:
        stale = [k for k in self._key_cache if k[0] == thread_id]
        for k in stale:
            del self._key_cache[k]
        for cache, _ in self._mask_caches.values():
            cache.pop(thread_id, None)

    def on_context_switch(self, thread_id: int) -> None:
        super().on_context_switch(thread_id)
        self._invalidate_keys(thread_id)

    def on_privilege_switch(self, thread_id: int, privilege: int) -> None:
        super().on_privilege_switch(thread_id, privilege)
        self._invalidate_keys(thread_id)

    def _base_key(self, thread_id: int, width_bits: int, table: object,
                  purpose: int = 0) -> int:
        """Per-(thread, table, width, purpose) key, cached until a switch."""
        cache_key = (thread_id, id(table), width_bits, purpose)
        key = self._key_cache.get(cache_key)
        if key is None:
            salt = (_table_salt(table) if self._per_table_keys else 0) ^ purpose
            if self._per_table_keys:
                key = self.key_manager.derived_key(thread_id, salt, width_bits)
            elif purpose:
                key = self.key_manager.index_key(thread_id, width_bits)
            else:
                key = self.key_manager.content_key(thread_id, width_bits)
            self._key_cache[cache_key] = key
        return key

    def _content_key(self, thread_id: int, width_bits: int, table: object,
                     row: int) -> int:
        key = self._base_key(thread_id, width_bits, table)
        if self._row_diversified:
            # Cheap per-row diffusion: nearby rows use different key bits, the
            # Section 5.5 countermeasure to the reference-branch corner case.
            key ^= (row * 0x45D9F3B) & ((1 << width_bits) - 1)
        return key

    def encode(self, value: int, width_bits: int, thread_id: int, table: object,
               row: int) -> int:
        key = self._content_key(thread_id, width_bits, table, row)
        if self._plain_xor:
            return (value ^ key) & ((1 << width_bits) - 1)
        return self.encoder.encode(value, width_bits, key)

    def decode(self, value: int, width_bits: int, thread_id: int, table: object,
               row: int) -> int:
        key = self._content_key(thread_id, width_bits, table, row)
        if self._plain_xor:
            return (value ^ key) & ((1 << width_bits) - 1)
        return self.encoder.decode(value, width_bits, key)


class NoisyXorIsolation(XorContentIsolation):
    """Noisy-XOR-BP: XOR-BP plus thread-private index randomisation.

    In addition to content encoding, the table index is XORed with a second
    thread-private key before the lookup (Figure 4, green path).  This breaks
    the fixed correspondence between a branch address and its table entry, so
    an attacker can neither *locate* a victim's entry nor interpret which
    entry contended with its own.
    """

    name = "noisy_xor_bp"
    protects_index = True

    def map_index(self, index: int, index_bits: int, thread_id: int,
                  table: object) -> int:
        if index_bits <= 0:
            return index
        key = self._base_key(thread_id, index_bits, table, purpose=0x5A5A5A5A)
        return (index ^ key) & ((1 << index_bits) - 1)

    def fused_index_key(self, thread_id: int, index_bits: int,
                        table: object) -> int:
        """Index-key mask fused into storage accesses (same key as
        :meth:`map_index`, so the fast path is bit-identical to it)."""
        if index_bits <= 0:
            return 0
        return self._base_key(thread_id, index_bits, table,
                              purpose=0x5A5A5A5A) & ((1 << index_bits) - 1)
