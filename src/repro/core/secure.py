"""Secure branch-prediction unit (BPU).

This module bundles a direction predictor, a BTB and a RAS — all built on the
same isolation policy and key manager — into one front-end unit with the
switch-notification protocol the paper requires:

* ``notify_context_switch(thread_id)`` — the OS scheduled a new software
  context onto a hardware thread: flush-based mechanisms flush, XOR-based
  mechanisms regenerate that thread's keys;
* ``notify_privilege_switch(thread_id, privilege)`` — a system call,
  exception or hypervisor transition: XOR-based mechanisms regenerate keys
  (Section 5.4); flush-based mechanisms optionally flush.

The unit also implements the per-branch prediction/update flow used by the
CPU timing model, including the BTB update rule (update only on taken
branches) that contention-based attacks exploit and the fall-through policy
on BTB misses that explains the paper's case2 anomaly (Section 6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..predictors.base import DirectionPredictor
from ..predictors.btb import BranchTargetBuffer
from ..predictors.ras import ReturnAddressStack
from ..types import BranchType, Privilege
from .isolation import IsolationMechanism

__all__ = ["BranchOutcome", "BranchPredictionUnit"]


@dataclass(slots=True)
class BranchOutcome:
    """Per-branch prediction outcome consumed by the CPU timing model.

    Attributes:
        branch_type: the executed branch's type.
        taken: resolved direction (always True for unconditional branches).
        predicted_taken: direction the front end followed.
        direction_mispredicted: the followed direction was wrong.
        target_mispredicted: the branch was (correctly) predicted taken but
            the predicted target was wrong or unavailable.
        btb_accessed: the BTB was probed for this branch.
        btb_hit: the BTB probe hit.
    """

    branch_type: BranchType
    taken: bool
    predicted_taken: bool
    direction_mispredicted: bool = False
    target_mispredicted: bool = False
    btb_accessed: bool = False
    btb_hit: bool = False

    @property
    def mispredicted(self) -> bool:
        """True when the front end must be redirected at execute/commit."""
        return self.direction_mispredicted or self.target_mispredicted


class BranchPredictionUnit:
    """Front-end branch prediction unit with pluggable isolation.

    Args:
        direction_predictor: the conditional-branch predictor.
        btb: the branch target buffer.
        ras: the (thread-private) return address stack.
        isolation: the isolation mechanism shared by all structures.
        btb_miss_forces_not_taken: when True (the FPGA prototype's policy),
            a conditional branch whose target misses in the BTB is treated as
            not-taken regardless of the PHT, because the front end has no
            target to redirect to.  This reproduces the paper's observation
            that flushing the BTB can occasionally *improve* performance by
            overriding bad direction predictions (case2).
    """

    def __init__(self, direction_predictor: DirectionPredictor,
                 btb: BranchTargetBuffer,
                 ras: Optional[ReturnAddressStack] = None, *,
                 isolation: Optional[IsolationMechanism] = None,
                 btb_miss_forces_not_taken: bool = True) -> None:
        self.direction = direction_predictor
        self.btb = btb
        self.ras = ras if ras is not None else ReturnAddressStack()
        self.isolation = isolation
        self._btb_miss_forces_not_taken = btb_miss_forces_not_taken
        self.context_switches = 0
        self.privilege_switches = 0

    # -- switch notification protocol -----------------------------------------
    def notify_context_switch(self, thread_id: int) -> None:
        """The OS switched the software context on a hardware thread.

        Key-rotating mechanisms invalidate the thread's fused-XOR masks (and
        the specialised kernels bound to them) here; the caches rebuild once
        on the next access, so mask re-randomisation is a switch-time cost,
        never a per-branch one.
        """
        self.context_switches += 1
        if self.isolation is not None:
            self.isolation.on_context_switch(thread_id)

    def notify_privilege_switch(self, thread_id: int,
                                privilege: Privilege) -> None:
        """The software on a hardware thread changed privilege level.

        Key-rotating mechanisms regenerate the thread's key material here,
        invalidating its fused-XOR mask caches; rebuilding is lazy (first
        access after the switch), which also keeps the enter/exit
        notification pair of one system call to a single rebuild.
        """
        self.privilege_switches += 1
        if self.isolation is not None:
            self.isolation.on_privilege_switch(thread_id, privilege)

    # -- per-branch prediction flow --------------------------------------------
    def execute_branch(self, pc: int, taken: bool, target: int,
                       branch_type: BranchType = BranchType.CONDITIONAL,
                       thread_id: int = 0) -> BranchOutcome:
        """Predict, resolve and train one committed branch.

        Args:
            pc: branch instruction address.
            taken: resolved direction (unconditional branches pass True).
            target: resolved target address of the taken branch.
            branch_type: kind of branch.
            thread_id: hardware thread executing the branch.

        Returns:
            A :class:`BranchOutcome` describing what the front end got wrong.
        """
        if branch_type is BranchType.CONDITIONAL:
            return self._execute_conditional(pc, taken, target, thread_id)
        if branch_type is BranchType.RETURN:
            return self._execute_return(pc, target, thread_id)
        return self._execute_unconditional(pc, target, branch_type, thread_id)

    def execute_branch_fast(self, pc: int, taken: bool, target: int,
                            branch_type: BranchType = BranchType.CONDITIONAL,
                            thread_id: int = 0) -> tuple:
        """Allocation-light :meth:`execute_branch` for the batched engine.

        Performs the exact same prediction/training flow (same table accesses,
        same statistics) but returns a plain tuple
        ``(direction_mispredicted, target_mispredicted, btb_accessed,
        btb_hit)`` instead of building a :class:`BranchOutcome`, and drives
        the predictors through their fused ``execute``/``lookup_fast``
        entry points.
        """
        if branch_type is BranchType.CONDITIONAL:
            # The direction predictor and the BTB are disjoint structures, so
            # fusing the direction lookup+train before the BTB access leaves
            # the state evolution identical to the scalar interleaving.
            predicted_taken = self.direction.execute(pc, taken, thread_id)
            hit, btb_target = self.btb.execute_conditional_fast(pc, target,
                                                                taken, thread_id)
            if predicted_taken and not hit and self._btb_miss_forces_not_taken:
                predicted_taken = False
            direction_mispredicted = predicted_taken != taken
            target_mispredicted = (not direction_mispredicted and taken
                                   and (not hit or btb_target != target))
            return direction_mispredicted, target_mispredicted, True, hit
        if branch_type is BranchType.RETURN:
            return False, self.ras.pop(thread_id) != target, False, False
        # Fused probe + unconditional install on the packed BTB arrays
        # (identical to the lookup_fast / update pair it replaces).
        hit, btb_target = self.btb.execute_indirect_fast(pc, target,
                                                         branch_type, thread_id)
        target_mispredicted = not hit or btb_target != target
        if branch_type is BranchType.CALL:
            self.ras.push(pc + 4, thread_id)
        return False, target_mispredicted, True, hit

    def _execute_conditional(self, pc: int, taken: bool, target: int,
                             thread_id: int) -> BranchOutcome:
        prediction = self.direction.lookup(pc, thread_id)
        btb_result = self.btb.lookup(pc, thread_id)
        predicted_taken = prediction.taken
        if predicted_taken and not btb_result.hit and self._btb_miss_forces_not_taken:
            # No target available: the front end falls through.
            predicted_taken = False

        direction_mispredicted = predicted_taken != taken
        target_mispredicted = False
        if not direction_mispredicted and taken:
            predicted_target = btb_result.target if btb_result.hit else None
            target_mispredicted = predicted_target != target

        self.direction.stats(thread_id).record(prediction.taken == taken)
        self.direction.update(pc, taken, prediction, thread_id)
        if taken:
            # The BTB is updated only for taken branches (the SBPA lever).
            self.btb.update(pc, target, thread_id, BranchType.CONDITIONAL)

        return BranchOutcome(branch_type=BranchType.CONDITIONAL, taken=taken,
                             predicted_taken=predicted_taken,
                             direction_mispredicted=direction_mispredicted,
                             target_mispredicted=target_mispredicted,
                             btb_accessed=True, btb_hit=btb_result.hit)

    def _execute_unconditional(self, pc: int, target: int,
                               branch_type: BranchType,
                               thread_id: int) -> BranchOutcome:
        btb_result = self.btb.lookup(pc, thread_id)
        predicted_target = btb_result.target if btb_result.hit else None
        target_mispredicted = predicted_target != target
        self.btb.update(pc, target, thread_id, branch_type)
        if branch_type is BranchType.CALL:
            self.ras.push(pc + 4, thread_id)
        return BranchOutcome(branch_type=branch_type, taken=True,
                             predicted_taken=True,
                             target_mispredicted=target_mispredicted,
                             btb_accessed=True, btb_hit=btb_result.hit)

    def _execute_return(self, pc: int, target: int,
                        thread_id: int) -> BranchOutcome:
        predicted_target = self.ras.pop(thread_id)
        target_mispredicted = predicted_target != target
        return BranchOutcome(branch_type=BranchType.RETURN, taken=True,
                             predicted_taken=True,
                             target_mispredicted=target_mispredicted,
                             btb_accessed=False, btb_hit=False)

    # -- maintenance ------------------------------------------------------------
    def force_generic_dispatch(self) -> None:
        """Route every storage access through the generic isolation dispatch.

        Diagnostic hook shared by the parity/fuzz suites and the throughput
        benchmark: turns off the passthrough and fused-XOR storage fast
        paths on every direction table and the BTB, and drops all cached
        specialised kernels so they rebuild on their generic arm.  Results
        must be bit-identical either way — only throughput changes — which
        is exactly what the differential tests assert.  Any new kernel
        cache added to a structure must be invalidated here.
        """
        for table in self.direction.tables():
            table._fast = False
            table._xor_fast = False
        self.btb._fast = False
        self.btb._xor_fast = False
        invalidate_btb = getattr(self.btb, "invalidate_kernels", None)
        if invalidate_btb is not None:
            invalidate_btb()
        invalidate = getattr(self.direction, "invalidate_kernel_masks", None)
        if invalidate is not None:
            invalidate()

    def flush(self) -> None:
        """Flush every structure (used by tests and manual experiments)."""
        self.direction.flush()
        self.btb.flush()
        self.ras.flush()

    def reset_stats(self) -> None:
        """Clear accumulated statistics on all structures."""
        self.direction.reset_stats()
        self.btb.reset_stats()
        self.context_switches = 0
        self.privilege_switches = 0
